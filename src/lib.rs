//! Umbrella crate for the FliX reproduction workspace.
//!
//! The actual functionality lives in the member crates; this crate hosts
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). Re-exports are provided so examples read naturally.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use apex;
pub use flix;
pub use graphcore;
pub use hopi;
pub use pagestore;
pub use ppo;
pub use workloads;
pub use xmlgraph;
