//! Concurrency correctness for the `flixserve` subsystem: whatever the
//! worker count, every served answer must equal the single-threaded
//! oracle exactly — including deadline-cut answers, which must be proper
//! prefixes of the oracle's distance-ordered result — and a drain must
//! finish admitted work while refusing new work with typed errors.

use flix::{Flix, FlixConfig, QueryOptions, ShardedFlix};
use flixobs::Deadline;
use flixserve::{FlixServer, Request, ServeConfig, ServeError};
use std::sync::Arc;
use workloads::{
    descendant_queries, generate_dblp, generate_mixed, generate_web, DblpConfig, MixedConfig,
    WebConfig,
};
use xmlgraph::CollectionGraph;

fn mixed_corpus() -> Arc<CollectionGraph> {
    let cfg = MixedConfig {
        trees: workloads::TreeConfig {
            documents: 30,
            elements_per_doc: 40,
            ..workloads::TreeConfig::default()
        },
        web: workloads::WebConfig {
            documents: 20,
            elements_per_doc: 35,
            ..workloads::WebConfig::default()
        },
        bridge_links: 6,
        seed: 23,
    };
    Arc::new(generate_mixed(&cfg).seal())
}

/// A larger cyclic corpus whose exact-order queries take real time, so a
/// single worker can be reliably kept busy while submissions race it.
fn web_corpus() -> Arc<CollectionGraph> {
    let cfg = WebConfig {
        documents: 40,
        elements_per_doc: 80,
        ..WebConfig::default()
    };
    Arc::new(generate_web(&cfg).seal())
}

/// A randomized mix of descendants and ancestors requests under the three
/// standard option shapes, paired with the single-threaded oracle answer.
fn oracle_mix(flix: &Flix, cg: &CollectionGraph) -> Vec<(Request, Vec<flix::QueryResult>)> {
    let mut mix = Vec::new();
    for (i, q) in descendant_queries(cg, 30, 7).into_iter().enumerate() {
        let opts = match i % 3 {
            0 => QueryOptions::default(),
            1 => QueryOptions::top_k(5),
            _ => QueryOptions::exact(),
        };
        if i % 2 == 0 {
            let oracle = flix.find_descendants(q.start, q.target_tag, &opts);
            mix.push((Request::descendants(q.start, q.target_tag, opts), oracle));
        } else {
            let oracle = flix.find_ancestors(q.start, q.target_tag, &opts);
            mix.push((Request::ancestors(q.start, q.target_tag, opts), oracle));
        }
    }
    mix
}

#[test]
fn concurrent_answers_match_the_single_threaded_oracle() {
    let cg = mixed_corpus();
    for config in [
        FlixConfig::Naive,
        FlixConfig::Hybrid {
            partition_size: 300,
        },
    ] {
        let flix = Arc::new(Flix::build(cg.clone(), config));
        let mix = oracle_mix(&flix, &cg);
        for workers in [1usize, 4] {
            let server = FlixServer::start(
                flix.clone(),
                ServeConfig {
                    workers,
                    ..ServeConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for c in 0..4 {
                    let server = &server;
                    let mix = &mix;
                    scope.spawn(move || {
                        for (request, oracle) in mix.iter().skip(c).step_by(4) {
                            let response = server.query(*request).unwrap();
                            assert!(!response.timed_out, "{config}: no deadline was set");
                            assert_eq!(
                                *response.results, *oracle,
                                "{config}: {workers} workers, start {}",
                                request.start
                            );
                        }
                    });
                }
            });
            server.shutdown();
        }
    }
}

#[test]
fn deadline_cut_answers_are_prefixes_of_the_oracle() {
    let cg = web_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::MaximalPpo));
    let server = FlixServer::start(flix.clone(), ServeConfig::default());
    let queries = descendant_queries(&cg, 10, 11);
    for opts in [QueryOptions::default(), QueryOptions::exact()] {
        for q in &queries {
            let oracle = flix.find_descendants(q.start, q.target_tag, &opts);
            for budget in [0u64, 50, 500, 10_000_000] {
                let req = Request::descendants(
                    q.start,
                    q.target_tag,
                    opts.with_deadline(Deadline::within_micros(budget)),
                );
                let response = server.query(req).unwrap();
                assert!(
                    oracle.starts_with(&response.results),
                    "start {}: a deadline-cut answer must be a distance-ordered \
                     prefix of the full answer (budget {budget}µs)",
                    q.start
                );
                if budget == 0 {
                    assert!(response.timed_out);
                    assert!(response.results.is_empty());
                }
                if budget == 10_000_000 {
                    assert!(!response.timed_out, "ten seconds is plenty");
                    assert_eq!(*response.results, oracle);
                }
            }
        }
    }
    server.shutdown();
}

#[test]
fn drain_finishes_admitted_work_and_refuses_new() {
    let cg = mixed_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let mix = oracle_mix(&flix, &cg);
    let server = FlixServer::start(
        flix,
        ServeConfig {
            workers: 2,
            single_flight: false,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = mix
        .iter()
        .take(16)
        .map(|(request, _)| server.submit(*request).unwrap())
        .collect();
    server.shutdown();
    // Every admitted request completed, with the right answer.
    for (ticket, (_, oracle)) in tickets.into_iter().zip(&mix) {
        let response = ticket.wait().expect("admitted work survives a drain");
        assert_eq!(*response.results, **oracle);
    }
    // New work is refused with the typed drain error, not Overloaded.
    let (request, _) = &mix[0];
    assert_eq!(
        server.submit(*request).unwrap_err(),
        ServeError::ShuttingDown
    );
    // Metrics stay readable after the drain for a final scrape.
    let stats = server.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.in_flight, 0);
    // A second shutdown is a no-op.
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_errors() {
    let cg = web_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let server = FlixServer::start(
        flix,
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_in_flight: 1,
            single_flight: false,
            ..ServeConfig::default()
        },
    );
    let q = descendant_queries(&cg, 1, 3)[0];
    let heavy = Request::descendants(q.start, q.target_tag, QueryOptions::exact());
    let blocker = server.submit(heavy).unwrap();
    let mut sheds = 0;
    let mut tickets = vec![blocker];
    for _ in 0..8 {
        match server.submit(heavy) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { in_flight, .. }) => {
                assert!(in_flight >= 1, "rejection reports the pressure it saw");
                sheds += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(sheds >= 1, "a full server must shed rather than buffer");
    for ticket in tickets {
        ticket.wait().expect("admitted work still completes");
    }
    assert_eq!(server.stats().shed, sheds);
    server.shutdown();
}

#[test]
fn identical_in_flight_queries_collapse() {
    let cg = web_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let server = FlixServer::start(
        flix.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let queries = descendant_queries(&cg, 2, 5);
    // Occupy the single worker with a queue of mutually-distinct requests
    // (different `max_results`, so they cannot collapse with each other)
    // so the identical burst that follows is provably in flight together:
    // its leader cannot complete before every follower has attached.
    let blockers: Vec<_> = (0..16)
        .map(|i| {
            server.submit(Request::descendants(
                queries[0].start,
                queries[0].target_tag,
                QueryOptions::top_k(i + 1),
            ))
        })
        .collect();
    let shared = Request::descendants(
        queries[1].start,
        queries[1].target_tag,
        QueryOptions::exact(),
    );
    let oracle = flix.find_descendants(
        queries[1].start,
        queries[1].target_tag,
        &QueryOptions::exact(),
    );
    let tickets: Vec<_> = (0..4).map(|_| server.submit(shared).unwrap()).collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("collapsed queries all get the answer"))
        .collect();
    for response in &responses {
        assert_eq!(*response.results, oracle);
    }
    assert!(
        responses.iter().filter(|r| r.collapsed).count() >= 3,
        "followers ride the leader's evaluation"
    );
    assert!(server.stats().collapsed >= 3);
    for blocker in blockers {
        blocker.unwrap().wait().unwrap();
    }
    server.shutdown();
}

/// A small DBLP-like citation corpus (mostly-isolated documents with a
/// skewed citation minority) for the sharding property tests.
fn dblp_corpus() -> Arc<CollectionGraph> {
    let cfg = DblpConfig {
        documents: 120,
        seed: 7,
        ..DblpConfig::default()
    };
    Arc::new(generate_dblp(&cfg).seal())
}

/// The sharding property (ISSUE 7): at every shard count, a server over a
/// [`ShardedFlix`] returns byte-for-byte the unsharded oracle's results —
/// single-shard queries served shard-locally and multi-shard queries
/// through the cross-shard fan-out alike. Runs over both a DBLP-like
/// citation corpus and a random cyclic web, under the three standard
/// option shapes including `exact()`.
#[test]
fn sharded_serving_matches_the_unsharded_oracle_at_every_shard_count() {
    for (name, cg) in [("dblp", dblp_corpus()), ("web", web_corpus())] {
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        let mix = oracle_mix(&flix, &cg);
        for shards in [1usize, 2, 7] {
            let sharded = Arc::new(ShardedFlix::new(flix.clone(), shards));
            let server = FlixServer::start(
                sharded,
                ServeConfig {
                    workers: 4,
                    single_flight: false,
                    ..ServeConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for c in 0..4 {
                    let server = &server;
                    let mix = &mix;
                    scope.spawn(move || {
                        for (request, oracle) in mix.iter().skip(c).step_by(4) {
                            let response = server.query(*request).unwrap();
                            assert!(!response.timed_out, "{name}: no deadline was set");
                            assert_eq!(
                                *response.results, *oracle,
                                "{name}: {shards} shards, start {}",
                                request.start
                            );
                        }
                    });
                }
            });
            server.shutdown();
        }
    }
}

/// Deadline-cut sharded answers are proper prefixes of the unsharded
/// oracle's distance-ordered result — the truncation point may differ
/// from the unsharded server's (an escaped query restarts its clock-
/// burdened evaluation on the fan-out view) but never the order.
#[test]
fn sharded_deadline_cuts_are_prefixes_of_the_unsharded_oracle() {
    let cg = dblp_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let queries = descendant_queries(&cg, 8, 11);
    for shards in [2usize, 7] {
        let sharded = Arc::new(ShardedFlix::new(flix.clone(), shards));
        let server = FlixServer::start(sharded, ServeConfig::default());
        for opts in [QueryOptions::default(), QueryOptions::exact()] {
            for q in &queries {
                let oracle = flix.find_descendants(q.start, q.target_tag, &opts);
                for budget in [0u64, 50, 10_000_000] {
                    let req = Request::descendants(
                        q.start,
                        q.target_tag,
                        opts.with_deadline(Deadline::within_micros(budget)),
                    );
                    let response = server.query(req).unwrap();
                    assert!(
                        oracle.starts_with(&response.results),
                        "{shards} shards, start {}: deadline-cut answer must be a \
                         prefix of the unsharded oracle (budget {budget}µs)",
                        q.start
                    );
                    if budget == 0 {
                        assert!(response.timed_out);
                        assert!(response.results.is_empty());
                    }
                    if budget == 10_000_000 {
                        assert!(!response.timed_out, "ten seconds is plenty");
                        assert_eq!(*response.results, oracle);
                    }
                }
            }
        }
        server.shutdown();
    }
}
