//! Concurrency correctness for the `flixserve` subsystem: whatever the
//! worker count, every served answer must equal the single-threaded
//! oracle exactly — including deadline-cut answers, which must be proper
//! prefixes of the oracle's distance-ordered result — and a drain must
//! finish admitted work while refusing new work with typed errors.

use flix::{Flix, FlixConfig, QueryOptions, ShardedFlix};
use flixobs::Deadline;
use flixserve::{FlixServer, Request, ServeConfig, ServeError};
use std::sync::Arc;
use workloads::{
    descendant_queries, generate_dblp, generate_mixed, generate_web, DblpConfig, MixedConfig,
    WebConfig,
};
use xmlgraph::CollectionGraph;

fn mixed_corpus() -> Arc<CollectionGraph> {
    let cfg = MixedConfig {
        trees: workloads::TreeConfig {
            documents: 30,
            elements_per_doc: 40,
            ..workloads::TreeConfig::default()
        },
        web: workloads::WebConfig {
            documents: 20,
            elements_per_doc: 35,
            ..workloads::WebConfig::default()
        },
        bridge_links: 6,
        seed: 23,
    };
    Arc::new(generate_mixed(&cfg).seal())
}

/// A larger cyclic corpus whose exact-order queries take real time, so a
/// single worker can be reliably kept busy while submissions race it.
fn web_corpus() -> Arc<CollectionGraph> {
    let cfg = WebConfig {
        documents: 40,
        elements_per_doc: 80,
        ..WebConfig::default()
    };
    Arc::new(generate_web(&cfg).seal())
}

/// A randomized mix of descendants and ancestors requests under the three
/// standard option shapes, paired with the single-threaded oracle answer.
fn oracle_mix(flix: &Flix, cg: &CollectionGraph) -> Vec<(Request, Vec<flix::QueryResult>)> {
    let mut mix = Vec::new();
    for (i, q) in descendant_queries(cg, 30, 7).into_iter().enumerate() {
        let opts = match i % 3 {
            0 => QueryOptions::default(),
            1 => QueryOptions::top_k(5),
            _ => QueryOptions::exact(),
        };
        if i % 2 == 0 {
            let oracle = flix.find_descendants(q.start, q.target_tag, &opts);
            mix.push((Request::descendants(q.start, q.target_tag, opts), oracle));
        } else {
            let oracle = flix.find_ancestors(q.start, q.target_tag, &opts);
            mix.push((Request::ancestors(q.start, q.target_tag, opts), oracle));
        }
    }
    mix
}

#[test]
fn concurrent_answers_match_the_single_threaded_oracle() {
    let cg = mixed_corpus();
    for config in [
        FlixConfig::Naive,
        FlixConfig::Hybrid {
            partition_size: 300,
        },
    ] {
        let flix = Arc::new(Flix::build(cg.clone(), config));
        let mix = oracle_mix(&flix, &cg);
        for workers in [1usize, 4] {
            let server = FlixServer::start(
                flix.clone(),
                ServeConfig {
                    workers,
                    ..ServeConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for c in 0..4 {
                    let server = &server;
                    let mix = &mix;
                    scope.spawn(move || {
                        for (request, oracle) in mix.iter().skip(c).step_by(4) {
                            let response = server.query(*request).unwrap();
                            assert!(!response.timed_out, "{config}: no deadline was set");
                            assert_eq!(
                                *response.results, *oracle,
                                "{config}: {workers} workers, start {}",
                                request.start
                            );
                        }
                    });
                }
            });
            server.shutdown();
        }
    }
}

#[test]
fn deadline_cut_answers_are_prefixes_of_the_oracle() {
    let cg = web_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::MaximalPpo));
    let server = FlixServer::start(flix.clone(), ServeConfig::default());
    let queries = descendant_queries(&cg, 10, 11);
    for opts in [QueryOptions::default(), QueryOptions::exact()] {
        for q in &queries {
            let oracle = flix.find_descendants(q.start, q.target_tag, &opts);
            for budget in [0u64, 50, 500, 10_000_000] {
                let req = Request::descendants(
                    q.start,
                    q.target_tag,
                    opts.with_deadline(Deadline::within_micros(budget)),
                );
                let response = server.query(req).unwrap();
                assert!(
                    oracle.starts_with(&response.results),
                    "start {}: a deadline-cut answer must be a distance-ordered \
                     prefix of the full answer (budget {budget}µs)",
                    q.start
                );
                if budget == 0 {
                    assert!(response.timed_out);
                    assert!(response.results.is_empty());
                }
                if budget == 10_000_000 {
                    assert!(!response.timed_out, "ten seconds is plenty");
                    assert_eq!(*response.results, oracle);
                }
            }
        }
    }
    server.shutdown();
}

#[test]
fn drain_finishes_admitted_work_and_refuses_new() {
    let cg = mixed_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let mix = oracle_mix(&flix, &cg);
    let server = FlixServer::start(
        flix,
        ServeConfig {
            workers: 2,
            single_flight: false,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = mix
        .iter()
        .take(16)
        .map(|(request, _)| server.submit(*request).unwrap())
        .collect();
    server.shutdown();
    // Every admitted request completed, with the right answer.
    for (ticket, (_, oracle)) in tickets.into_iter().zip(&mix) {
        let response = ticket.wait().expect("admitted work survives a drain");
        assert_eq!(*response.results, **oracle);
    }
    // New work is refused with the typed drain error, not Overloaded.
    let (request, _) = &mix[0];
    assert_eq!(
        server.submit(*request).unwrap_err(),
        ServeError::ShuttingDown
    );
    // Metrics stay readable after the drain for a final scrape.
    let stats = server.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.in_flight, 0);
    // A second shutdown is a no-op.
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_errors() {
    let cg = web_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let server = FlixServer::start(
        flix,
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_in_flight: 1,
            single_flight: false,
            ..ServeConfig::default()
        },
    );
    let q = descendant_queries(&cg, 1, 3)[0];
    let heavy = Request::descendants(q.start, q.target_tag, QueryOptions::exact());
    let blocker = server.submit(heavy).unwrap();
    let mut sheds = 0;
    let mut tickets = vec![blocker];
    for _ in 0..8 {
        match server.submit(heavy) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { in_flight, .. }) => {
                assert!(in_flight >= 1, "rejection reports the pressure it saw");
                sheds += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(sheds >= 1, "a full server must shed rather than buffer");
    for ticket in tickets {
        ticket.wait().expect("admitted work still completes");
    }
    assert_eq!(server.stats().shed, sheds);
    server.shutdown();
}

#[test]
fn identical_in_flight_queries_collapse() {
    let cg = web_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let server = FlixServer::start(
        flix.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let queries = descendant_queries(&cg, 2, 5);
    // Occupy the single worker with a queue of mutually-distinct requests
    // (different `max_results`, so they cannot collapse with each other)
    // so the identical burst that follows is provably in flight together:
    // its leader cannot complete before every follower has attached.
    let blockers: Vec<_> = (0..16)
        .map(|i| {
            server.submit(Request::descendants(
                queries[0].start,
                queries[0].target_tag,
                QueryOptions::top_k(i + 1),
            ))
        })
        .collect();
    let shared = Request::descendants(
        queries[1].start,
        queries[1].target_tag,
        QueryOptions::exact(),
    );
    let oracle = flix.find_descendants(
        queries[1].start,
        queries[1].target_tag,
        &QueryOptions::exact(),
    );
    let tickets: Vec<_> = (0..4).map(|_| server.submit(shared).unwrap()).collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("collapsed queries all get the answer"))
        .collect();
    for response in &responses {
        assert_eq!(*response.results, oracle);
    }
    assert!(
        responses.iter().filter(|r| r.collapsed).count() >= 3,
        "followers ride the leader's evaluation"
    );
    assert!(server.stats().collapsed >= 3);
    for blocker in blockers {
        blocker.unwrap().wait().unwrap();
    }
    server.shutdown();
}

/// A small DBLP-like citation corpus (mostly-isolated documents with a
/// skewed citation minority) for the sharding property tests.
fn dblp_corpus() -> Arc<CollectionGraph> {
    let cfg = DblpConfig {
        documents: 120,
        seed: 7,
        ..DblpConfig::default()
    };
    Arc::new(generate_dblp(&cfg).seal())
}

/// The sharding property (ISSUE 7): at every shard count, a server over a
/// [`ShardedFlix`] returns byte-for-byte the unsharded oracle's results —
/// single-shard queries served shard-locally and multi-shard queries
/// through the cross-shard fan-out alike. Runs over both a DBLP-like
/// citation corpus and a random cyclic web, under the three standard
/// option shapes including `exact()`.
#[test]
fn sharded_serving_matches_the_unsharded_oracle_at_every_shard_count() {
    for (name, cg) in [("dblp", dblp_corpus()), ("web", web_corpus())] {
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        let mix = oracle_mix(&flix, &cg);
        for shards in [1usize, 2, 7] {
            let sharded = Arc::new(ShardedFlix::new(flix.clone(), shards));
            let server = FlixServer::start(
                sharded,
                ServeConfig {
                    workers: 4,
                    single_flight: false,
                    ..ServeConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for c in 0..4 {
                    let server = &server;
                    let mix = &mix;
                    scope.spawn(move || {
                        for (request, oracle) in mix.iter().skip(c).step_by(4) {
                            let response = server.query(*request).unwrap();
                            assert!(!response.timed_out, "{name}: no deadline was set");
                            assert_eq!(
                                *response.results, *oracle,
                                "{name}: {shards} shards, start {}",
                                request.start
                            );
                        }
                    });
                }
            });
            server.shutdown();
        }
    }
}

/// Deadline-cut sharded answers are proper prefixes of the unsharded
/// oracle's distance-ordered result — the truncation point may differ
/// from the unsharded server's (an escaped query restarts its clock-
/// burdened evaluation on the fan-out view) but never the order.
#[test]
fn sharded_deadline_cuts_are_prefixes_of_the_unsharded_oracle() {
    let cg = dblp_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let queries = descendant_queries(&cg, 8, 11);
    for shards in [2usize, 7] {
        let sharded = Arc::new(ShardedFlix::new(flix.clone(), shards));
        let server = FlixServer::start(sharded, ServeConfig::default());
        for opts in [QueryOptions::default(), QueryOptions::exact()] {
            for q in &queries {
                let oracle = flix.find_descendants(q.start, q.target_tag, &opts);
                for budget in [0u64, 50, 10_000_000] {
                    let req = Request::descendants(
                        q.start,
                        q.target_tag,
                        opts.with_deadline(Deadline::within_micros(budget)),
                    );
                    let response = server.query(req).unwrap();
                    assert!(
                        oracle.starts_with(&response.results),
                        "{shards} shards, start {}: deadline-cut answer must be a \
                         prefix of the unsharded oracle (budget {budget}µs)",
                        q.start
                    );
                    if budget == 0 {
                        assert!(response.timed_out);
                        assert!(response.results.is_empty());
                    }
                    if budget == 10_000_000 {
                        assert!(!response.timed_out, "ten seconds is plenty");
                        assert_eq!(*response.results, oracle);
                    }
                }
            }
        }
        server.shutdown();
    }
}

/// The flight recorder is write-only: a traced server returns byte-for-
/// byte the same answers as an untraced one over every backend — complete
/// answers, empty zero-budget cuts, and generous-budget answers alike —
/// while actually journaling events.
#[test]
fn traced_server_answers_are_bit_identical_to_untraced() {
    use flix::CachedFlix;
    let cg = dblp_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let mix = oracle_mix(&flix, &cg);
    type BackendFactory = Box<dyn Fn() -> flixserve::Backend>;
    let backends: Vec<(&str, BackendFactory)> = vec![
        (
            "plain",
            Box::new({
                let flix = flix.clone();
                move || flixserve::Backend::from(flix.clone())
            }),
        ),
        (
            "cached",
            Box::new({
                let flix = flix.clone();
                move || flixserve::Backend::from(Arc::new(CachedFlix::new(flix.clone(), 64)))
            }),
        ),
        (
            "sharded",
            Box::new({
                let flix = flix.clone();
                move || flixserve::Backend::from(Arc::new(ShardedFlix::new(flix.clone(), 3)))
            }),
        ),
    ];
    for (name, make) in &backends {
        let config = ServeConfig {
            workers: 2,
            single_flight: false,
            ..ServeConfig::default()
        };
        let plain_server = FlixServer::start(make(), config);
        let traced_server = FlixServer::start_traced(make(), config, 4096);
        assert!(plain_server.journal_snapshot().is_none());
        for (request, oracle) in &mix {
            let plain = plain_server.query(*request).unwrap();
            let traced = traced_server.query(*request).unwrap();
            assert_eq!(*plain.results, *oracle, "{name}: untraced diverged");
            assert_eq!(*traced.results, *oracle, "{name}: traced diverged");
            assert_eq!(plain.timed_out, traced.timed_out, "{name}");
        }
        // Deadline cuts: zero budget and a generous budget are the two
        // deterministic points — both servers must agree exactly (the cut
        // point of an intermediate budget is timing-dependent by design).
        for (request, oracle) in mix.iter().take(6) {
            for (budget, want_empty) in [(0u64, true), (10_000_000, false)] {
                let mut req = *request;
                req.opts = req.opts.with_deadline(Deadline::within_micros(budget));
                let plain = plain_server.query(req).unwrap();
                let traced = traced_server.query(req).unwrap();
                assert_eq!(*plain.results, *traced.results, "{name} budget {budget}");
                assert_eq!(plain.timed_out, traced.timed_out, "{name} budget {budget}");
                if want_empty {
                    // A zero budget expires before evaluation starts —
                    // unless the warm result cache answers without
                    // evaluating at all (the cached backend, by design).
                    assert!(
                        traced.results.is_empty() && traced.timed_out || *traced.results == *oracle,
                        "{name}: zero budget must cut to empty or hit the cache"
                    );
                } else {
                    assert_eq!(*traced.results, *oracle, "{name}: 10s is plenty");
                }
            }
        }
        let snapshot = traced_server.journal_snapshot().unwrap();
        assert!(
            snapshot.events.len() > mix.len(),
            "{name}: a traced server journals at least one event per request"
        );
        plain_server.shutdown();
        traced_server.shutdown();
    }
}

/// ISSUE 9 acceptance: one request's events — admission, queue handoff,
/// dequeue, shard-routing verdict, and evaluator spans, spread over the
/// submit lane and a worker lane — stitch into a single causally-ordered
/// trace keyed by its [`flixobs::RequestId`], and at least one request in
/// a multi-shard run actually crosses shards (fan-out or escape).
#[test]
fn fanout_request_events_stitch_into_one_causal_trace() {
    use flixobs::EventKind;
    let cg = dblp_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let sharded = Arc::new(ShardedFlix::new(flix.clone(), 4));
    let server = FlixServer::start_traced(
        Arc::clone(&sharded),
        ServeConfig {
            workers: 4,
            single_flight: false,
            ..ServeConfig::default()
        },
        8192,
    );
    // Uncapped queries over a citation graph: plenty fan out or escape.
    for q in descendant_queries(&cg, 40, 13) {
        server
            .query(Request::descendants(
                q.start,
                q.target_tag,
                QueryOptions::default(),
            ))
            .unwrap();
    }
    let snapshot = server.journal_snapshot().unwrap();
    assert_eq!(snapshot.dropped, 0, "capacity was sized for the run");
    let crossed: Vec<flixobs::RequestId> = snapshot
        .request_ids()
        .into_iter()
        .filter(|id| {
            snapshot.request_events(*id).iter().any(|e| {
                matches!(
                    e.kind,
                    EventKind::RouteFanout { .. } | EventKind::RouteEscaped { .. }
                )
            })
        })
        .collect();
    assert!(
        !crossed.is_empty(),
        "at least one uncapped citation query must cross shards"
    );
    for id in &crossed {
        let events = snapshot.request_events(*id);
        // Causal order inside one request's trace: the merged snapshot is
        // sorted by time, and the lifecycle events appear in order.
        let pos = |pred: &dyn Fn(&EventKind) -> bool| events.iter().position(|e| pred(&e.kind));
        let admitted = pos(&|k| matches!(k, EventKind::Admitted)).expect("admitted");
        let enqueued = pos(&|k| matches!(k, EventKind::Enqueued { .. })).expect("enqueued");
        let dequeued = pos(&|k| matches!(k, EventKind::Dequeued { .. })).expect("dequeued");
        let eval = pos(&|k| matches!(k, EventKind::EvalStart { .. })).expect("eval start");
        assert!(admitted < enqueued && enqueued < dequeued && dequeued < eval);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::EvalEnd { .. })),
            "every span closes"
        );
        // The submit lane and a worker lane both contributed: the trace
        // really does stitch across threads.
        assert!(events.iter().any(|e| e.lane == 0));
        assert!(events.iter().any(|e| e.lane > 0));
        // Timestamps are monotone within the request's merged view.
        assert!(events.windows(2).all(|w| w[0].micros <= w[1].micros));
        // And every one of these events belongs to this request.
        assert!(events.iter().all(|e| e.request == *id));
    }
    // The Chrome export carries the spans (ph:X) and instants for Perfetto.
    let chrome = snapshot.to_chrome_trace();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"ph\":\"i\""));
    server.shutdown();
}

/// The adaptive admission controller (ISSUE 9 satellite, ROADMAP carry-
/// over): an impossible latency target walks the live ceiling down to the
/// per-worker floor — visible in [`flixserve::ServeStats::max_in_flight`]
/// and journaled as `LimitChange` events — while a generous target leaves
/// the configured ceiling untouched.
#[test]
fn adaptive_admission_tracks_the_latency_target() {
    use flixobs::EventKind;
    let cg = mixed_corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let queries = descendant_queries(&cg, 30, 3);
    let base = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        single_flight: false,
        ..ServeConfig::default()
    };

    // Impossible target: p99 of any real workload exceeds 0µs, so every
    // window halves the limit until it hits the floor (one per worker).
    let strict = FlixServer::start_traced(
        flix.clone(),
        ServeConfig {
            latency_target_p99_micros: Some(0),
            ..base
        },
        4096,
    );
    for _ in 0..8 {
        for q in &queries {
            // flixcheck: allow(swallowed-result): sheds are expected while the limit tightens
            let _ = strict.query(Request::descendants(
                q.start,
                q.target_tag,
                QueryOptions::default(),
            ));
        }
    }
    let stats = strict.stats();
    assert_eq!(
        stats.max_in_flight, 2,
        "the limit must fall to the per-worker floor"
    );
    let snapshot = strict.journal_snapshot().unwrap();
    let changes: Vec<u64> = snapshot
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LimitChange { limit } => Some(limit),
            _ => None,
        })
        .collect();
    assert!(!changes.is_empty(), "limit changes are journaled");
    assert!(
        changes.windows(2).all(|w| w[1] <= w[0]),
        "under an impossible target the limit only falls: {changes:?}"
    );
    assert_eq!(*changes.last().unwrap(), 2);
    strict.shutdown();

    // Generous target: the limit never moves off the configured ceiling.
    let relaxed = FlixServer::start(
        flix.clone(),
        ServeConfig {
            latency_target_p99_micros: Some(u64::MAX),
            ..base
        },
    );
    for _ in 0..4 {
        for q in &queries {
            relaxed
                .query(Request::descendants(
                    q.start,
                    q.target_tag,
                    QueryOptions::default(),
                ))
                .unwrap();
        }
    }
    assert_eq!(
        relaxed.stats().max_in_flight,
        base.effective_max_in_flight(),
        "an achievable target leaves the ceiling alone"
    );
    relaxed.shutdown();
}
