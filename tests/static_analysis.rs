//! Tier-1 gate: the flixcheck static-analysis pass must be clean.
//!
//! This runs the same pass as `cargo run -p flixcheck`, so a freshly
//! introduced `unwrap()` in library code (or a stale allowlist ceiling)
//! fails `cargo test` with the exact `path:line: rule: message`
//! diagnostics printed below. On top of the cleanliness gate it checks the
//! concurrency analysis end to end (acyclic lock-order graph over the real
//! workspace, a seeded AB-BA fixture that must fire), the SARIF emitter's
//! shape, and — by property test — that the new lexer's stripped view
//! agrees with the legacy strip-and-scan pass on adversarial sources.

use std::path::Path;

use proptest::prelude::*;

#[test]
fn workspace_is_lint_clean() {
    let report = flixcheck::run_default().expect("lint pass runs");
    for diag in &report.diagnostics {
        eprintln!("{diag}");
    }
    assert!(
        report.is_clean(),
        "{} lint violation(s); see diagnostics above",
        report.diagnostics.len()
    );
    assert!(report.files_scanned > 40, "lint must cover the workspace");
}

#[test]
fn workspace_lock_order_graph_is_acyclic() {
    let report = flixcheck::run_default().expect("lint pass runs");
    assert!(
        !report.lock_graph_cyclic,
        "workspace lock-order graph has a cycle; edges: {:?}",
        report.lock_edges
    );
    // Sanity: the extractor resolved the edges it did see to real classes.
    for edge in &report.lock_edges {
        assert!(edge.from.contains("::"), "unresolved class {edge:?}");
        assert!(edge.to.contains("::"), "unresolved class {edge:?}");
    }
}

/// The seeded fixture tree (outside the normal walk) must trip both
/// concurrency rules — this is the library-level twin of the ci.sh
/// negative smoke on `flixcheck --root crates/flixcheck/fixtures/deadlock`.
#[test]
fn seeded_deadlock_fixture_fires() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/flixcheck/fixtures/deadlock");
    let report = flixcheck::run(&root).expect("fixture pass runs");
    assert!(report.lock_graph_cyclic, "AB-BA fixture must form a cycle");
    let lock_order = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == flixcheck::Rule::LockOrder)
        .count();
    assert_eq!(lock_order, 2, "one lock-order diagnostic per cycle edge");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == flixcheck::Rule::BlockingWhileLocked),
        "nested acquisition inside the cycle is also blocking-while-locked"
    );
    assert!(!report.is_clean());
}

#[test]
fn sarif_output_has_2_1_0_shape() {
    let diags = flixcheck::lint_file(
        "crates/x/src/lib.rs",
        "pub fn f(v: &[u8]) { let _ = v.len() as u16; }\n",
    );
    assert!(!diags.is_empty(), "seed source must produce a finding");
    let sarif = flixcheck::sarif::to_sarif(&diags);
    for needle in [
        r#""version": "2.1.0""#,
        "sarif-schema-2.1.0",
        r#""runs""#,
        r#""driver""#,
        r#""rules""#,
        r#""results""#,
        r#""ruleId": "cast-truncation""#,
        r#""physicalLocation""#,
        r#""startLine""#,
        "crates/x/src/lib.rs",
    ] {
        assert!(
            sarif.contains(needle),
            "SARIF output missing {needle}:\n{sarif}"
        );
    }
    // Every rule in the catalog is described, fired or not.
    for rule in flixcheck::Rule::ALL {
        assert!(
            sarif.contains(rule.name()),
            "rule {} absent from SARIF driver catalog",
            rule.name()
        );
    }
}

/// Source fragments that exercise every corner the two stripping
/// implementations historically disagreed on: escaped-quote char literals,
/// byte chars, raw strings with varying hash depth, literal prefixes glued
/// to identifiers, nested block comments, lifetimes.
const FRAGMENTS: &[&str] = &[
    "let x = 1;",
    "fn f<'a, 'de>(s: &'a str) -> &'de str { s }",
    r"let q = '\'';",
    r"let b = '\\';",
    "let n = '\\n';",
    "let u = '\\u{1F600}';",
    "let c = 'x';",
    "let y = b'x';",
    r"let z = b'\'';",
    r#"let s = "plain \" escaped";"#,
    r##"let r = r"raw";"##,
    r###"let r1 = r#"one " hash"#;"###,
    r####"let r2 = r##"two "# hashes"##;"####,
    r##"let bs = b"bytes";"##,
    r###"let br = br#"raw bytes"#;"###,
    "let my_b = 1; my_b\"not a byte string\";",
    "har\"not raw\";",
    "let r#type = 0b1010;",
    "// line comment with ' \" r#\" b' inside\n",
    "/// doc comment .unwrap() bait\n",
    "/* block /* nested 'x' */ done */",
    "let f = 1.5e-3 + 1e9 + 42u32;",
    "m.lock().insert('k', v);",
    "label: loop { break 'label; }",
    "let emoji = \"ß€\";",
];

/// Strategy: a random concatenation of adversarial fragments joined by
/// random separators, so literal prefixes collide with whatever came
/// before them.
fn arb_source() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(0..FRAGMENTS.len(), 1..12),
        proptest::collection::vec(
            prop_oneof![Just(" "), Just("\n"), Just(""), Just(";")],
            0..12,
        ),
    )
        .prop_map(|(picks, seps)| {
            let mut out = String::new();
            for (i, p) in picks.iter().enumerate() {
                out.push_str(FRAGMENTS[*p]);
                out.push_str(seps.get(i).copied().unwrap_or("\n"));
            }
            out
        })
}

/// Strategy: short strings over an alphabet chosen to stress the lexers'
/// quote/prefix/comment state machines, including pathological
/// (unterminated) inputs.
fn arb_hostile() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('\''),
            Just('"'),
            Just('\\'),
            Just('#'),
            Just('r'),
            Just('b'),
            Just('/'),
            Just('*'),
            Just('a'),
            Just('_'),
            Just('0'),
            Just('\n'),
            Just(' '),
            Just('.'),
            Just('ß'),
        ],
        0..40,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    /// The token stream partitions the input exactly.
    #[test]
    fn lexer_tokens_cover_every_byte(src in arb_source()) {
        let toks = flixcheck::lex::lex(&src);
        let mut pos = 0;
        for t in &toks {
            prop_assert_eq!(t.start, pos, "gap/overlap at {}", pos);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len());
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// The lexer's stripped view and the legacy strip-and-scan pass agree
    /// byte for byte on structured adversarial sources.
    #[test]
    fn stripped_views_agree_on_fragments(src in arb_source()) {
        let legacy = flixcheck::scanner::strip_source(&src);
        let lexed = flixcheck::lex::stripped_view(&src, &flixcheck::lex::lex(&src));
        prop_assert_eq!(legacy, lexed, "input: {:?}", src);
    }

    /// ... and on unstructured hostile character soup, where neither side
    /// may panic, diverge, or change the line structure.
    #[test]
    fn stripped_views_agree_on_hostile_soup(src in arb_hostile()) {
        let legacy = flixcheck::scanner::strip_source(&src);
        let lexed = flixcheck::lex::stripped_view(&src, &flixcheck::lex::lex(&src));
        prop_assert_eq!(&legacy, &lexed, "input: {:?}", src);
        prop_assert_eq!(legacy.len(), src.len());
        let newlines = |s: &str| {
            s.bytes()
                .enumerate()
                .filter(|(_, b)| *b == b'\n')
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(newlines(&legacy), newlines(&src), "line structure moved");
    }
}
