//! Tier-1 gate: the flixcheck static-analysis pass must be clean.
//!
//! This runs the same pass as `cargo run -p flixcheck`, so a freshly
//! introduced `unwrap()` in library code (or a stale allowlist ceiling)
//! fails `cargo test` with the exact `path:line: rule: message`
//! diagnostics printed below.

#[test]
fn workspace_is_lint_clean() {
    let report = flixcheck::run_default().expect("lint pass runs");
    for diag in &report.diagnostics {
        eprintln!("{diag}");
    }
    assert!(
        report.is_clean(),
        "{} lint violation(s); see diagnostics above",
        report.diagnostics.len()
    );
    assert!(report.files_scanned > 40, "lint must cover the workspace");
}
