//! The staged HOPI cover pipeline must be deterministic: whatever the
//! thread count, the built index serializes to the byte-identical image
//! (blob-level, mirroring `tests/parallel_build.rs` for the framework).

use flix::persist::save_flix;
use flix::{BuildOptions, Flix, FlixConfig, StrategyKind};
use graphcore::{Digraph, NodeId};
use hopi::{CoverOptions, HopiIndex};
use pagestore::{BlobStore, BufferPool, MemDisk};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use workloads::{generate_dblp, DblpConfig};

/// A DBLP-style collection: mostly isolated publication trees with a
/// citation-linked minority — the paper's headline workload.
fn dblp_graph() -> (Digraph, Vec<u32>) {
    let cg = generate_dblp(&DblpConfig {
        documents: 120,
        ..DblpConfig::default()
    })
    .seal();
    let labels: Vec<u32> = (0..cg.node_count() as NodeId)
        .map(|u| cg.tag_of(u))
        .collect();
    (cg.graph, labels)
}

/// A random cyclic graph: dense enough that SCCs form and the condensation
/// partitioning, border sweeps, and local covers all do real work.
fn random_cyclic_graph(n: usize, edges: usize, seed: u64) -> (Digraph, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edge_list: Vec<(u32, u32)> = (0..edges)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    let labels: Vec<u32> = (0..n as u32).map(|u| u % 5).collect();
    (Digraph::from_edges(n, edge_list), labels)
}

/// Builds at every thread count and asserts the serialized images are
/// byte-identical; returns the 1-thread build for further checks.
fn assert_thread_invariant(
    g: &Digraph,
    labels: &[u32],
    cap: usize,
) -> (HopiIndex, hopi::StageReport) {
    let opts = |threads| CoverOptions {
        threads,
        partition_cap: cap,
        ..CoverOptions::default()
    };
    let (base, report) = HopiIndex::build_staged(g, labels, &opts(1));
    let base_image = pagestore::to_bytes(&base).unwrap();
    for threads in [2usize, 8] {
        let (idx, other_report) = HopiIndex::build_staged(g, labels, &opts(threads));
        let image = pagestore::to_bytes(&idx).unwrap();
        assert!(
            image == base_image,
            "index image diverged at {threads} threads ({} vs {} bytes)",
            image.len(),
            base_image.len()
        );
        // Everything in the report except wall clock is shape, and shape
        // must not depend on the thread count either.
        assert_eq!(report.partitions, other_report.partitions);
        assert_eq!(report.border_centers, other_report.border_centers);
    }
    (base, report)
}

#[test]
fn dblp_workload_serializes_identically_across_thread_counts() {
    let (g, labels) = dblp_graph();
    assert!(g.node_count() > 200, "workload too small to be meaningful");
    // A small cap forces the multi-partition path: border merge + parallel
    // local covers, not the single-partition degenerate case.
    let (idx, report) = assert_thread_invariant(&g, &labels, 64);
    assert!(report.partitions > 1, "cap must force multiple partitions");
    idx.verify_against_graph(&g, 12).unwrap();
}

#[test]
fn random_cyclic_workload_serializes_identically_across_thread_counts() {
    let (g, labels) = random_cyclic_graph(400, 900, 0xD5EE);
    let (idx, report) = assert_thread_invariant(&g, &labels, 50);
    assert!(report.partitions > 1, "cap must force multiple partitions");
    assert!(
        report.border_centers > 0,
        "a dense cyclic graph must have partition-crossing edges"
    );
    idx.verify_against_graph(&g, 10).unwrap();
}

#[test]
fn monolithic_hopi_framework_blobs_identical_across_build_threads() {
    let cg = Arc::new(
        generate_dblp(&DblpConfig {
            documents: 80,
            ..DblpConfig::default()
        })
        .seal(),
    );
    let build = |threads| {
        Flix::build_with(
            cg.clone(),
            FlixConfig::Monolithic(StrategyKind::Hopi),
            &BuildOptions {
                build_threads: threads,
                ..BuildOptions::default()
            },
        )
    };
    let store = || BlobStore::new(Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256)));
    let mut base_store = store();
    save_flix(&build(1), &mut base_store, "fw").unwrap();
    let mut names: Vec<String> = base_store.names().iter().map(|s| s.to_string()).collect();
    names.sort();
    for threads in [2usize, 8] {
        let flix = build(threads);
        // A monolithic plan has one meta: the whole budget goes to HOPI's
        // intra-build stage, and the report must say so.
        assert_eq!(flix.meta_count(), 1);
        assert_eq!(flix.build_report().threads, 1, "outer pool stays at one");
        let stages = flix
            .build_report()
            .hopi_stage_totals()
            .expect("monolithic HOPI must report stage timings");
        assert_eq!(stages.threads, threads.min(stages.partitions.max(1)));
        let mut st = store();
        save_flix(&flix, &mut st, "fw").unwrap();
        let mut got: Vec<String> = st.names().iter().map(|s| s.to_string()).collect();
        got.sort();
        assert_eq!(names, got, "{threads} threads: same blob set");
        for name in &names {
            if name == "fw/report" {
                continue; // wall-clock timings differ run to run
            }
            let a = base_store.get(name).unwrap().unwrap();
            let b = st.get(name).unwrap().unwrap();
            assert!(a == b, "{threads} threads: blob {name} differs");
        }
    }
}
