//! End-to-end framework tests: order quality, streaming, persistence, and
//! the vague-query layer over realistic corpora.

use flix::persist::{load_flix, save_flix};
use flix::{
    Flix, FlixConfig, QueryOptions, ResultStream, StrategyKind, TagSimilarity, VagueEvaluator,
    VagueQuery,
};
use graphcore::bfs_distances;
use pagestore::{BlobStore, BufferPool, MemDisk};
use std::sync::Arc;
use workloads::{descendant_queries, generate_dblp, generate_mixed, DblpConfig, MixedConfig};

#[test]
fn monolithic_hopi_returns_exact_ascending_order() {
    let cg = Arc::new(generate_dblp(&DblpConfig::tiny(21)).seal());
    let flix = Flix::build(cg.clone(), FlixConfig::Monolithic(StrategyKind::Hopi));
    for q in descendant_queries(&cg, 6, 8) {
        let res = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        assert!(
            res.windows(2).all(|w| w[0].distance <= w[1].distance),
            "monolithic HOPI must return perfectly sorted results"
        );
        // and distances are exact
        let dist = bfs_distances(&cg.graph, q.start);
        for r in &res {
            assert_eq!(r.distance, dist[r.node as usize]);
        }
    }
}

#[test]
fn error_rate_definition_counts_out_of_order_results() {
    // The §6 metric: fraction of results returned out of ascending-distance
    // order (counted against the exact distance of each result).
    let cg = Arc::new(generate_dblp(&DblpConfig::tiny(22)).seal());
    let flix = Flix::build(
        cg.clone(),
        FlixConfig::UnconnectedHopi { partition_size: 80 },
    );
    let mut total = 0usize;
    let mut out_of_order = 0usize;
    for q in descendant_queries(&cg, 10, 9) {
        let res = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        let dist = bfs_distances(&cg.graph, q.start);
        let exact: Vec<u32> = res.iter().map(|r| dist[r.node as usize]).collect();
        let mut max_seen = 0;
        for &d in &exact {
            total += 1;
            if d < max_seen {
                out_of_order += 1;
            }
            max_seen = max_seen.max(d);
        }
    }
    // the framework is *approximately* ordered: errors are allowed but must
    // stay a minority, as in the paper's 8-13% measurements
    assert!(total > 0);
    assert!(
        (out_of_order as f64) < 0.5 * total as f64,
        "error rate too high: {out_of_order}/{total}"
    );
}

#[test]
fn streaming_equals_batch() {
    let cg = Arc::new(generate_dblp(&DblpConfig::tiny(23)).seal());
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::MaximalPpo));
    for q in descendant_queries(&cg, 4, 10) {
        let batch = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        let stream =
            ResultStream::spawn(flix.clone(), q.start, q.target_tag, QueryOptions::default());
        let streamed: Vec<_> = stream.collect();
        assert_eq!(batch, streamed);
    }
}

#[test]
fn persistence_round_trip_on_mixed_corpus() {
    let cg = Arc::new(generate_mixed(&MixedConfig::default()).seal());
    let flix = Flix::build(
        cg.clone(),
        FlixConfig::Hybrid {
            partition_size: 400,
        },
    );
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
    let mut store = BlobStore::new(pool);
    save_flix(&flix, &mut store, "mixed").unwrap();
    let loaded = load_flix(&store, "mixed", cg.clone()).unwrap();
    for q in descendant_queries(&cg, 6, 12) {
        assert_eq!(
            flix.find_descendants(q.start, q.target_tag, &QueryOptions::default()),
            loaded.find_descendants(q.start, q.target_tag, &QueryOptions::default())
        );
    }
    assert_eq!(flix.meta_count(), loaded.meta_count());
}

#[test]
fn vague_queries_rank_by_decayed_similarity() {
    let cg = Arc::new(generate_dblp(&DblpConfig::tiny(24)).seal());
    let flix = Flix::build(cg.clone(), FlixConfig::Naive);
    // "publication" is not a tag in the corpus; the ontology maps it to
    // article and inproceedings.
    let mut sims = TagSimilarity::new();
    sims.add("publication", "article", 0.95)
        .add("publication", "inproceedings", 0.9);
    let eval = VagueEvaluator::new(sims, 0.85);
    let start = (0..cg.collection.doc_count() as u32)
        .map(|d| cg.doc_root(d))
        .max_by_key(|&r| cg.graph.out_degree(r))
        .unwrap();
    let res = eval.evaluate(
        &flix,
        &VagueQuery {
            start,
            target: "publication".into(),
            min_score: 0.01,
            top_k: 50,
        },
    );
    assert!(
        !res.is_empty(),
        "citations must surface similar-tagged pubs"
    );
    assert!(res.windows(2).all(|w| w[0].score >= w[1].score));
    for r in &res {
        let name = cg.collection.tags.name(cg.tag_of(r.node));
        assert!(name == "article" || name == "inproceedings");
        assert_eq!(name, r.matched_tag);
    }
}

#[test]
fn all_configs_build_on_paper_shaped_corpus() {
    // a smaller replica of the paper's corpus shape, every configuration
    let cg = Arc::new(
        generate_dblp(&DblpConfig {
            documents: 300,
            ..DblpConfig::default()
        })
        .seal(),
    );
    for config in [
        FlixConfig::Naive,
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi {
            partition_size: 500,
        },
        FlixConfig::Hybrid {
            partition_size: 500,
        },
        FlixConfig::Monolithic(StrategyKind::Hopi),
        FlixConfig::Monolithic(StrategyKind::Apex),
    ] {
        let flix = Flix::build(cg.clone(), config);
        let st = flix.stats();
        assert!(st.index_bytes > 0, "{config}");
        assert_eq!(
            st.per_meta.iter().map(|m| m.elements).sum::<usize>(),
            cg.node_count(),
            "{config}: meta documents must cover the collection"
        );
        // MaximalPpo on DBLP-like data should group documents: far fewer
        // meta docs than documents (most papers are cited / cite others).
        if config == FlixConfig::MaximalPpo {
            assert!(
                st.meta_docs < cg.collection.doc_count(),
                "grouping had no effect"
            );
        }
    }
}
