//! The parallel build must be invisible: whatever `build_threads` says, a
//! framework built over the same collection answers every query identically
//! and persists to byte-identical index blobs.

use flix::persist::save_flix;
use flix::{BuildOptions, Flix, FlixConfig, QueryOptions};
use pagestore::{BlobStore, BufferPool, MemDisk};
use std::sync::Arc;
use workloads::{connection_pairs, descendant_queries, generate_mixed, MixedConfig};
use xmlgraph::CollectionGraph;

/// A mixed workload: a tree region, a web (linked) region, and bridge
/// links between them, so every configuration exercises PPO and HOPI metas
/// plus a non-trivial runtime link table.
fn mixed_corpus() -> Arc<CollectionGraph> {
    let cfg = MixedConfig {
        trees: workloads::TreeConfig {
            documents: 40,
            elements_per_doc: 50,
            ..workloads::TreeConfig::default()
        },
        web: workloads::WebConfig {
            documents: 25,
            elements_per_doc: 40,
            ..workloads::WebConfig::default()
        },
        bridge_links: 8,
        seed: 11,
    };
    Arc::new(generate_mixed(&cfg).seal())
}

fn configs() -> Vec<FlixConfig> {
    vec![
        FlixConfig::Naive,
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi {
            partition_size: 300,
        },
        FlixConfig::Hybrid {
            partition_size: 300,
        },
    ]
}

fn store() -> BlobStore {
    BlobStore::new(Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256)))
}

#[test]
fn parallel_build_is_byte_identical_to_sequential() {
    let cg = mixed_corpus();
    for config in configs() {
        let seq = Flix::build_with(
            cg.clone(),
            config,
            &BuildOptions {
                build_threads: 1,
                ..BuildOptions::default()
            },
        );
        let par = Flix::build_with(
            cg.clone(),
            config,
            &BuildOptions {
                build_threads: 4,
                ..BuildOptions::default()
            },
        );
        assert!(par.meta_count() > 1, "{config}: workload must fan out");

        let mut st_seq = store();
        let mut st_par = store();
        save_flix(&seq, &mut st_seq, "fw").unwrap();
        save_flix(&par, &mut st_par, "fw").unwrap();

        let mut names: Vec<String> = st_seq.names().iter().map(|s| s.to_string()).collect();
        let mut par_names: Vec<String> = st_par.names().iter().map(|s| s.to_string()).collect();
        names.sort();
        par_names.sort();
        assert_eq!(names, par_names, "{config}: same blob set");
        assert!(names.len() >= 3, "{config}: manifest + metas + report");

        for name in &names {
            if name == "fw/report" {
                // The report blob carries wall-clock timings; everything
                // that makes up the index must match byte for byte.
                continue;
            }
            let a = st_seq.get(name).unwrap().unwrap();
            let b = st_par.get(name).unwrap().unwrap();
            assert!(a == b, "{config}: blob {name} differs between builds");
        }
    }
}

#[test]
fn parallel_build_answers_queries_identically() {
    let cg = mixed_corpus();
    for config in configs() {
        let seq = Flix::build_with(
            cg.clone(),
            config,
            &BuildOptions {
                build_threads: 1,
                ..BuildOptions::default()
            },
        );
        let par = Flix::build_with(
            cg.clone(),
            config,
            &BuildOptions {
                build_threads: 4,
                ..BuildOptions::default()
            },
        );
        for q in descendant_queries(&cg, 25, 7) {
            for opts in [
                QueryOptions::default(),
                QueryOptions::top_k(5),
                QueryOptions::exact(),
            ] {
                let a = seq.find_descendants(q.start, q.target_tag, &opts);
                let b = par.find_descendants(q.start, q.target_tag, &opts);
                assert_eq!(a, b, "{config}: start {} tag {}", q.start, q.target_tag);
            }
        }
        for p in connection_pairs(&cg, 20, 13) {
            let a = seq.connection_test(p.from, p.to, &QueryOptions::default());
            let b = par.connection_test(p.from, p.to, &QueryOptions::default());
            assert_eq!(a, b, "{config}: connection {} -> {}", p.from, p.to);
        }
    }
}

#[test]
fn parallel_build_report_reflects_pool_shape() {
    let cg = mixed_corpus();
    let par = Flix::build_with(
        cg.clone(),
        FlixConfig::Naive,
        &BuildOptions {
            build_threads: 4,
            ..BuildOptions::default()
        },
    );
    let report = par.build_report();
    assert_eq!(report.threads, 4.min(par.meta_count()));
    assert_eq!(report.per_meta.len(), par.meta_count());
    assert!(report.cpu_micros() >= report.critical_path_micros());
    assert!(
        report.total_micros >= report.indexing_micros,
        "stage timings nest inside the total"
    );
    // Sequential runs report one thread and a speedup of ~1 by definition.
    let seq = Flix::build_with(
        cg,
        FlixConfig::Naive,
        &BuildOptions {
            build_threads: 1,
            ..BuildOptions::default()
        },
    );
    assert_eq!(seq.build_report().threads, 1);
}
