//! Cross-crate consistency: every FliX configuration must return exactly
//! the reachable elements with the requested tag, on every corpus family,
//! agreeing with a plain BFS oracle over the union graph.

use flix::{Flix, FlixConfig, QueryOptions, StrategyKind};
use graphcore::bfs_distances;
use std::sync::Arc;
use workloads::{
    connection_pairs, descendant_queries, generate_dblp, generate_mixed, generate_trees,
    generate_web, DblpConfig, MixedConfig, TreeConfig, WebConfig,
};
use xmlgraph::CollectionGraph;

fn configs() -> Vec<FlixConfig> {
    vec![
        FlixConfig::Naive,
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi { partition_size: 64 },
        FlixConfig::UnconnectedHopi {
            partition_size: 1000,
        },
        FlixConfig::Hybrid { partition_size: 64 },
        FlixConfig::Monolithic(StrategyKind::Hopi),
        FlixConfig::Monolithic(StrategyKind::Apex),
    ]
}

fn corpora() -> Vec<(&'static str, Arc<CollectionGraph>)> {
    vec![
        (
            "dblp",
            Arc::new(generate_dblp(&DblpConfig::tiny(101)).seal()),
        ),
        (
            "trees",
            Arc::new(
                generate_trees(&TreeConfig {
                    documents: 12,
                    elements_per_doc: 40,
                    ..TreeConfig::default()
                })
                .seal(),
            ),
        ),
        (
            "web",
            Arc::new(
                generate_web(&WebConfig {
                    documents: 10,
                    elements_per_doc: 25,
                    intra_links_per_doc: 3,
                    inter_links_per_doc: 4,
                    ..WebConfig::default()
                })
                .seal(),
            ),
        ),
        (
            "mixed",
            Arc::new(
                generate_mixed(&MixedConfig {
                    trees: TreeConfig {
                        documents: 8,
                        elements_per_doc: 30,
                        ..TreeConfig::default()
                    },
                    web: WebConfig {
                        documents: 6,
                        elements_per_doc: 20,
                        ..WebConfig::default()
                    },
                    bridge_links: 4,
                    seed: 5,
                })
                .seal(),
            ),
        ),
    ]
}

/// The oracle answer: all nodes with `tag` reachable from `start`
/// (excluding `start`), with exact union-graph distances.
fn oracle_descendants(cg: &CollectionGraph, start: u32, tag: u32) -> Vec<(u32, u32)> {
    let dist = bfs_distances(&cg.graph, start);
    let mut out: Vec<(u32, u32)> = (0..cg.node_count() as u32)
        .filter(|&v| v != start && cg.tag_of(v) == tag)
        .filter_map(|v| {
            let d = dist[v as usize];
            (d != graphcore::INFINITE_DISTANCE).then_some((v, d))
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn descendants_complete_and_distances_exact() {
    for (name, cg) in corpora() {
        let queries = descendant_queries(&cg, 8, 77);
        for config in configs() {
            let flix = Flix::build(cg.clone(), config);
            for q in &queries {
                let got = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
                let mut got_sorted: Vec<(u32, u32)> =
                    got.iter().map(|r| (r.node, r.distance)).collect();
                got_sorted.sort_unstable();
                let want = oracle_descendants(&cg, q.start, q.target_tag);
                // Node sets must match exactly.
                let got_nodes: Vec<u32> = got_sorted.iter().map(|&(n, _)| n).collect();
                let want_nodes: Vec<u32> = want.iter().map(|&(n, _)| n).collect();
                assert_eq!(
                    got_nodes, want_nodes,
                    "{name}/{config}: node set for start {} tag {}",
                    q.start, q.target_tag
                );
                // Reported distances are exact union-graph distances: the
                // priority-queue evaluation explores every entry point, so
                // even approximate *ordering* keeps exact per-node minima
                // when no early termination is requested... except that
                // entry subsumption may keep the first (possibly longer)
                // path. Distances must never undershoot the true minimum.
                for (&(gn, gd), &(wn, wd)) in got_sorted.iter().zip(&want) {
                    assert_eq!(gn, wn);
                    assert!(
                        gd >= wd,
                        "{name}/{config}: distance for node {gn} undershoots: {gd} < {wd}"
                    );
                }
            }
        }
    }
}

#[test]
fn connection_tests_match_oracle_reachability() {
    for (name, cg) in corpora() {
        let pairs = connection_pairs(&cg, 16, 99);
        for config in configs() {
            let flix = Flix::build(cg.clone(), config);
            for p in &pairs {
                let got = flix.connection_test(p.from, p.to, &QueryOptions::default());
                assert_eq!(
                    got.is_some(),
                    p.reachable,
                    "{name}/{config}: {} -> {}",
                    p.from,
                    p.to
                );
                if let Some(d) = got {
                    let exact = bfs_distances(&cg.graph, p.from)[p.to as usize];
                    assert!(d >= exact, "{name}/{config}: distance undershoots");
                }
            }
        }
    }
}

#[test]
fn top_k_is_prefix_of_full_result() {
    for (name, cg) in corpora() {
        let queries = descendant_queries(&cg, 4, 13);
        for config in configs() {
            let flix = Flix::build(cg.clone(), config);
            for q in &queries {
                let full = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
                let k = 5.min(full.len());
                let top = flix.find_descendants(q.start, q.target_tag, &QueryOptions::top_k(k));
                assert_eq!(
                    top,
                    full[..k],
                    "{name}/{config}: top-{k} differs from prefix"
                );
            }
        }
    }
}

#[test]
fn ancestors_are_inverse_of_descendants() {
    for (name, cg) in corpora() {
        let config = FlixConfig::Naive;
        let flix = Flix::build(cg.clone(), config);
        let queries = descendant_queries(&cg, 4, 31);
        for q in &queries {
            let desc = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
            let start_tag = cg.tag_of(q.start);
            for r in desc.iter().take(5) {
                let anc = flix.find_ancestors(r.node, start_tag, &QueryOptions::default());
                assert!(
                    anc.iter().any(|a| a.node == q.start),
                    "{name}: {} should be an ancestor of {}",
                    q.start,
                    r.node
                );
            }
        }
    }
}
