//! Integration tests for the path-expression engine and the §7 features
//! (exact ordering, caching, self-tuning, disk-resident execution) over
//! realistic corpora.

use flix::{
    CachedFlix, DiskFlix, Flix, FlixConfig, LoadMonitor, PathQuery, QueryEngine, QueryOptions,
    Recommendation, StrategyKind, TagSimilarity,
};
use pagestore::{BlobStore, BufferPool, MemDisk};
use std::ops::ControlFlow;
use std::sync::Arc;
use workloads::{descendant_queries, generate_dblp, DblpConfig};

fn corpus() -> Arc<xmlgraph::CollectionGraph> {
    Arc::new(generate_dblp(&DblpConfig::tiny(77)).seal())
}

#[test]
fn path_queries_match_manual_evaluation() {
    let cg = corpus();
    let flix = Flix::build(cg.clone(), FlixConfig::MaximalPpo);
    let engine = QueryEngine::strict(&flix);

    // //inproceedings/title == titles whose parent is an inproceedings root
    let q = PathQuery::parse("//inproceedings/title").unwrap();
    let res = engine.evaluate(&q);
    let title = cg.collection.tags.get("title").unwrap();
    let inproc = cg.collection.tags.get("inproceedings").unwrap();
    let expected: usize = cg
        .nodes_with_tag(title)
        .iter()
        .filter(|&&t| {
            cg.graph
                .predecessors(t)
                .iter()
                .any(|&p| cg.tag_of(p) == inproc)
        })
        .count();
    assert_eq!(res.len(), expected);
    assert!(res.iter().all(|b| (b.score - 1.0).abs() < 1e-9));
}

#[test]
fn descendant_step_equals_pee_results() {
    let cg = corpus();
    let flix = Flix::build(cg.clone(), FlixConfig::Naive);
    let engine = QueryEngine::strict(&flix);
    // //article//cite: strict engine (decay 1.0) should bind exactly the
    // cite elements reachable from any article root
    let q = PathQuery::parse("//article//cite").unwrap();
    let mut via_engine: Vec<u32> = engine.evaluate(&q).iter().map(|b| b.node).collect();
    via_engine.sort_unstable();
    let article = cg.collection.tags.get("article").unwrap();
    let cite = cg.collection.tags.get("cite").unwrap();
    let mut via_pee: Vec<u32> = flix
        .find_descendants_of_type(article, cite, &QueryOptions::default())
        .iter()
        .map(|r| r.node)
        .collect();
    via_pee.sort_unstable();
    via_pee.dedup();
    assert_eq!(via_engine, via_pee);
}

#[test]
fn exact_order_equals_oracle_on_corpus() {
    let cg = corpus();
    for config in [
        FlixConfig::Naive,
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi { partition_size: 80 },
    ] {
        let flix = Flix::build(cg.clone(), config);
        for q in descendant_queries(&cg, 6, 21) {
            let res = flix.find_descendants(q.start, q.target_tag, &QueryOptions::exact());
            assert!(
                res.windows(2).all(|w| w[0].distance <= w[1].distance),
                "{config}: unsorted"
            );
            let dist = graphcore::bfs_distances(&cg.graph, q.start);
            for r in &res {
                assert_eq!(r.distance, dist[r.node as usize], "{config}");
            }
        }
    }
}

#[test]
fn cached_framework_transparent() {
    let cg = corpus();
    let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
    let cached = CachedFlix::new(flix.clone(), 32);
    let queries = descendant_queries(&cg, 10, 31);
    let distinct: std::collections::HashSet<(u32, u32)> =
        queries.iter().map(|q| (q.start, q.target_tag)).collect();
    for q in &queries {
        let direct = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        let via_cache = cached.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        assert_eq!(direct, *via_cache);
        // second fetch must hit
        let again = cached.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        assert!(Arc::ptr_eq(&via_cache, &again));
    }
    let (hits, misses) = cached.stats();
    assert_eq!(misses, distinct.len() as u64, "one miss per distinct query");
    assert_eq!(hits + misses, 2 * queries.len() as u64);
}

#[test]
fn disk_engine_matches_memory_on_all_configs() {
    let cg = corpus();
    for config in [
        FlixConfig::Naive,
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi { partition_size: 60 },
        FlixConfig::Monolithic(StrategyKind::Apex),
    ] {
        let flix = Flix::build(cg.clone(), config);
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 32));
        let dflix = DiskFlix::save_and_open(&flix, BlobStore::new(pool), "t", 4).unwrap();
        for q in descendant_queries(&cg, 5, 41) {
            assert_eq!(
                flix.find_descendants(q.start, q.target_tag, &QueryOptions::default()),
                dflix
                    .find_descendants(q.start, q.target_tag, &QueryOptions::default())
                    .unwrap(),
                "{config}"
            );
        }
    }
}

#[test]
fn tuning_workflow_improves_lookup_count() {
    let cg = corpus();
    let flix = Flix::build(cg.clone(), FlixConfig::Naive);
    let title = cg.collection.tags.get("title").unwrap();
    let mut monitor = LoadMonitor::new();
    let starts: Vec<u32> = (0..cg.collection.doc_count() as u32)
        .rev()
        .take(15)
        .map(|d| cg.doc_root(d))
        .collect();
    for &s in &starts {
        let mut n = 0usize;
        let st = flix.for_each_descendant_traced(s, title, &QueryOptions::default(), |_, _| {
            n += 1;
            ControlFlow::Continue(())
        });
        monitor.record(st, n);
    }
    let before = monitor.avg_lookups();
    let Recommendation::Rebuild { suggestion, .. } = monitor.recommend(flix.config(), 5) else {
        panic!("link-heavy naive load must trigger a rebuild");
    };
    let rebuilt = Flix::build(cg.clone(), suggestion);
    let mut monitor2 = LoadMonitor::new();
    for &s in &starts {
        let mut n = 0usize;
        let st = rebuilt.for_each_descendant_traced(s, title, &QueryOptions::default(), |_, _| {
            n += 1;
            ControlFlow::Continue(())
        });
        monitor2.record(st, n);
        // identical answers after the rebuild
        assert_eq!(
            flix.find_descendants(s, title, &QueryOptions::default())
                .len(),
            rebuilt
                .find_descendants(s, title, &QueryOptions::default())
                .len()
        );
    }
    assert!(
        monitor2.avg_lookups() < before,
        "rebuild must reduce lookups: {} -> {}",
        before,
        monitor2.avg_lookups()
    );
}

#[test]
fn vague_engine_on_dblp_ontology() {
    let cg = corpus();
    let flix = Flix::build(cg.clone(), FlixConfig::MaximalPpo);
    let mut sims = TagSimilarity::new();
    sims.add("paper", "article", 0.9)
        .add("paper", "inproceedings", 0.9);
    let engine = QueryEngine::new(&flix, sims, 0.8, 0.05);
    let q = PathQuery::parse(r#"//~paper//~paper"#).unwrap();
    let res = engine.evaluate(&q);
    assert!(!res.is_empty(), "citations connect papers to papers");
    for b in &res {
        let name = cg.collection.tags.name(cg.tag_of(b.node));
        assert!(name == "article" || name == "inproceedings");
        assert!(b.score <= 0.81 + 1e-9, "two ~paper hops cap the score");
    }
}
