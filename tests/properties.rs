//! Property-based tests over the core data structures and invariants.

use graphcore::{
    bfs_distances, is_forest, partition_greedy, spanning_forest, tarjan_scc, Digraph,
    DistanceOracle, TransitiveClosure, INFINITE_DISTANCE,
};
use hopi::HopiIndex;
use ppo::{ExtendedPpo, PpoIndex};
use proptest::prelude::*;

/// An arbitrary sparse digraph: node count and an edge list.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Digraph> {
    (2..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
            .prop_map(move |edges| Digraph::from_edges(n, edges))
    })
}

/// An arbitrary forest: every node > 0 picks a parent among smaller ids,
/// with some nodes left as roots.
fn arb_forest(max_nodes: usize) -> impl Strategy<Value = Digraph> {
    (2..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec(proptest::option::of(0..u32::MAX), n - 1).prop_map(
            move |parents| {
                let edges: Vec<(u32, u32)> = parents
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.map(|p| (p % (i as u32 + 1), i as u32 + 1)))
                    .collect();
                Digraph::from_edges(n, edges)
            },
        )
    })
}

fn arb_labels(g: &Digraph, tags: u32) -> Vec<u32> {
    // deterministic pseudo-labels are enough: variety without extra strategy
    (0..g.node_count() as u32)
        .map(|u| (u * 7 + 3) % tags)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hopi_matches_oracle_on_random_graphs(g in arb_graph(40, 120)) {
        let labels = arb_labels(&g, 5);
        let idx = HopiIndex::build(&g, &labels);
        let oracle = DistanceOracle::new(&g);
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                let want = oracle.distance(u, v);
                let got = idx.distance(u, v).unwrap_or(INFINITE_DISTANCE);
                prop_assert_eq!(got, want, "distance {} -> {}", u, v);
            }
        }
    }

    #[test]
    fn staged_hopi_cover_matches_oracle_across_partitions(
        g in arb_graph(40, 120),
        cap in 2usize..10,
        threads in 1usize..5,
    ) {
        // Tiny partition caps guarantee the staged pipeline's merge stage
        // (border sweeps over partition-crossing edges) does real work:
        // correctness of the merged cover is exactly what's under test.
        let labels = arb_labels(&g, 5);
        let opts = hopi::CoverOptions {
            threads,
            partition_cap: cap,
            ..hopi::CoverOptions::default()
        };
        let (idx, report) = HopiIndex::build_staged(&g, &labels, &opts);
        let tc = TransitiveClosure::build(&g);
        let oracle = DistanceOracle::new(&g);
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                prop_assert_eq!(
                    idx.is_reachable(u, v), tc.reaches(u, v),
                    "reach {} -> {} (cap {}, {} partitions, {} borders)",
                    u, v, cap, report.partitions, report.border_centers
                );
                let want = oracle.distance(u, v);
                let got = idx.distance(u, v).unwrap_or(INFINITE_DISTANCE);
                prop_assert_eq!(got, want, "distance {} -> {} (cap {})", u, v, cap);
            }
        }
    }

    #[test]
    fn hopi_descendants_sorted_and_complete(g in arb_graph(30, 80)) {
        let labels = arb_labels(&g, 4);
        let idx = HopiIndex::build(&g, &labels);
        let tc = TransitiveClosure::build(&g);
        for u in 0..g.node_count() as u32 {
            let d = idx.descendants(u, true);
            prop_assert!(d.windows(2).all(|w| w[0].1 <= w[1].1), "unsorted from {}", u);
            let mut nodes: Vec<u32> = d.iter().map(|&(v, _)| v).collect();
            nodes.sort_unstable();
            prop_assert_eq!(nodes, tc.descendants(u), "set from {}", u);
        }
    }

    #[test]
    fn ppo_matches_closure_on_forests(g in arb_forest(60)) {
        let labels = arb_labels(&g, 6);
        let idx = PpoIndex::build(&g, &labels).expect("forest");
        let tc = TransitiveClosure::build(&g);
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                prop_assert_eq!(
                    idx.is_descendant_or_self(u, v),
                    tc.reaches(u, v),
                    "{} -> {}", u, v
                );
            }
        }
    }

    #[test]
    fn extended_ppo_plus_removed_edges_cover_graph(g in arb_graph(30, 60)) {
        // forest reachability + removed edges as extra hops must equal the
        // full reachability of the graph (one BFS over a hybrid relation)
        let x = ExtendedPpo::build(&g, &arb_labels(&g, 3));
        let tc = TransitiveClosure::build(&g);
        for u in 0..g.node_count() as u32 {
            // closure over: forest-descendants + removed-edge jumps
            let mut seen: Vec<bool> = vec![false; g.node_count()];
            let mut stack = vec![u];
            while let Some(x0) = stack.pop() {
                if seen[x0 as usize] { continue; }
                seen[x0 as usize] = true;
                for v in 0..g.node_count() as u32 {
                    if !seen[v as usize] && x.is_descendant_or_self(x0, v) {
                        stack.push(v);
                    }
                }
                for &(s, t) in x.removed_edges() {
                    if x.is_descendant_or_self(x0, s) && !seen[t as usize] {
                        stack.push(t);
                    }
                }
            }
            for v in 0..g.node_count() as u32 {
                prop_assert_eq!(seen[v as usize], tc.reaches(u, v), "{} -> {}", u, v);
            }
        }
    }

    #[test]
    fn spanning_forest_removal_is_sound(g in arb_graph(50, 150)) {
        let check = spanning_forest(&g);
        let kept: Vec<(u32, u32)> = g
            .edges()
            .filter(|e| !check.removed_edges.contains(e))
            .collect();
        let pruned = Digraph::from_edges(g.node_count(), kept);
        prop_assert!(is_forest(&pruned));
        prop_assert_eq!(check.is_forest, check.removed_edges.is_empty());
    }

    #[test]
    fn partitioning_is_exact_cover(g in arb_graph(80, 200), cap in 1usize..40) {
        let p = partition_greedy(&g, cap);
        let mut seen = vec![false; g.node_count()];
        for (pid, block) in p.parts.iter().enumerate() {
            prop_assert!(!block.is_empty());
            prop_assert!(block.len() <= cap, "partition {} over cap", pid);
            for &u in block {
                prop_assert_eq!(p.part_of[u as usize] as usize, pid);
                prop_assert!(!seen[u as usize], "node {} assigned twice", u);
                seen[u as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let cut = g
            .edges()
            .filter(|&(u, v)| p.part_of[u as usize] != p.part_of[v as usize])
            .count();
        prop_assert_eq!(cut, p.cut_edges);
    }

    #[test]
    fn scc_ids_consistent_with_mutual_reachability(g in arb_graph(25, 80)) {
        let comp = tarjan_scc(&g);
        let tc = TransitiveClosure::build(&g);
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                let mutual = tc.reaches(u, v) && tc.reaches(v, u);
                prop_assert_eq!(mutual, comp[u as usize] == comp[v as usize]);
            }
        }
    }

    #[test]
    fn closure_agrees_with_bfs(g in arb_graph(40, 100)) {
        let tc = TransitiveClosure::build(&g);
        for u in 0..g.node_count() as u32 {
            let dist = bfs_distances(&g, u);
            for v in 0..g.node_count() as u32 {
                prop_assert_eq!(tc.reaches(u, v), dist[v as usize] != INFINITE_DISTANCE);
            }
        }
    }

    #[test]
    fn counted_ancestor_lookups_cover_returned_results(g in arb_graph(30, 80)) {
        // Work accounting must be symmetric with the descendants axis: the
        // counted variant agrees with the plain one and never reports less
        // work than results returned, for every backend.
        use flix::{MetaIndex, StrategyKind};
        let labels = arb_labels(&g, 4);
        for kind in [StrategyKind::Ppo, StrategyKind::Hopi, StrategyKind::Apex] {
            let (idx, _extra) = MetaIndex::build(kind, &g, &labels, 1);
            for u in 0..g.node_count() as u32 {
                for label in 0..4u32 {
                    for include_self in [false, true] {
                        let plain = idx.ancestors_by_label(u, label, include_self);
                        let (counted, work) =
                            idx.ancestors_by_label_counted(u, label, include_self);
                        prop_assert_eq!(
                            &plain, &counted,
                            "{:?}: ancestors of {} with label {}", kind, u, label
                        );
                        prop_assert!(
                            work >= counted.len(),
                            "{:?}: {} results but only {} lookups charged for {} / {}",
                            kind, counted.len(), work, u, label
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn codec_round_trips_nested_values(
        v in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u16>(), 0..8), any::<Option<String>>()),
            0..16,
        )
    ) {
        let bytes = pagestore::to_bytes(&v).unwrap();
        let back: Vec<(u32, Vec<u16>, Option<String>)> = pagestore::from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn slotted_page_retains_all_records(
        recs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 1..30)
    ) {
        let mut page = pagestore::Page::new();
        let mut stored = Vec::new();
        for r in &recs {
            if let Some(slot) = page.insert(r) {
                stored.push((slot, r.clone()));
            }
        }
        for (slot, rec) in &stored {
            prop_assert_eq!(page.get(*slot), Some(rec.as_slice()));
        }
    }
}
