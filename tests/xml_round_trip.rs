//! End-to-end XML round trip: generated collections are serialised to XML
//! text, re-parsed with the crate's own parser, re-sealed, and must yield
//! an identical union graph and identical query answers.

use flix::{Flix, FlixConfig, QueryOptions};
use std::sync::Arc;
use workloads::{descendant_queries, generate_dblp, DblpConfig};
use xmlgraph::{parse_document, write_document, Collection, LinkSpec};

fn reparse(original: &Collection) -> Collection {
    let spec = LinkSpec::default();
    let mut fresh = Collection::new();
    for (_, doc) in original.docs() {
        let text = write_document(doc, &original.tags);
        let parsed = parse_document(doc.name.clone(), &text, &mut fresh.tags, &spec)
            .unwrap_or_else(|e| panic!("re-parsing {}: {e}", doc.name));
        fresh.add_document(parsed).expect("unique names");
    }
    fresh
}

#[test]
fn dblp_corpus_survives_serialisation() {
    let original = generate_dblp(&DblpConfig::tiny(55));
    let reparsed = reparse(&original);

    let a = original.seal();
    let b = reparsed.seal();
    assert_eq!(a.stats().documents, b.stats().documents);
    assert_eq!(a.stats().elements, b.stats().elements);
    assert_eq!(a.stats().links, b.stats().links);
    assert_eq!(a.stats().edges, b.stats().edges);
    // The graphs must be identical edge for edge (same construction order).
    assert_eq!(a.graph, b.graph);
    // Tags may intern in a different order; compare by name.
    for u in 0..a.node_count() as u32 {
        assert_eq!(
            a.collection.tags.name(a.tag_of(u)),
            b.collection.tags.name(b.tag_of(u)),
            "tag of node {u}"
        );
    }
}

#[test]
fn queries_identical_after_round_trip() {
    let original = generate_dblp(&DblpConfig::tiny(56));
    let reparsed = reparse(&original);
    let a = Arc::new(original.seal());
    let b = Arc::new(reparsed.seal());

    let fa = Flix::build(a.clone(), FlixConfig::MaximalPpo);
    let fb = Flix::build(b.clone(), FlixConfig::MaximalPpo);
    for q in descendant_queries(&a, 6, 3) {
        // map the tag through names, since interning order may differ
        let tag_name = a.collection.tags.name(q.target_tag);
        let tag_b = b.collection.tags.get(tag_name).expect("tag exists");
        let ra = fa.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        let rb = fb.find_descendants(q.start, tag_b, &QueryOptions::default());
        assert_eq!(ra, rb, "query from {} for {tag_name}", q.start);
    }
}

#[test]
fn written_xml_is_well_formed_with_escapes() {
    // Titles with markup-significant characters must survive.
    let mut c = Collection::new();
    let t = c.tags.intern("paper");
    let title_tag = c.tags.intern("title");
    let mut d = xmlgraph::Document::new("tricky.xml");
    let root = d.add_element(t, None);
    d.set_attr(root, "id", r#"a"b<c>&d"#);
    let title = d.add_element(title_tag, Some(root));
    d.append_text(title, "P < NP & other \"claims\"");
    c.add_document(d).unwrap();

    let text = write_document(c.doc(0), &c.tags);
    let mut fresh = Collection::new();
    let parsed =
        parse_document("tricky.xml", &text, &mut fresh.tags, &LinkSpec::default()).unwrap();
    assert_eq!(parsed.element(0).attr("id"), Some(r#"a"b<c>&d"#));
    assert_eq!(parsed.element(1).text, "P < NP & other \"claims\"");
}
