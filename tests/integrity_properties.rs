//! Property-based deep audits: every index structure must pass its
//! [`flixcheck::IntegrityCheck`] on randomly generated inputs, and the
//! assembled FliX framework must pass under every configuration.
//!
//! These are the positive half of the integrity story; the negative half
//! (seeded corruption must be *caught*) lives next to each implementation
//! as `integrity_detects_corruption` unit tests.

use apex::ApexIndex;
use flix::{Flix, FlixConfig};
use flixcheck::IntegrityCheck;
use graphcore::Digraph;
use hopi::HopiIndex;
use ppo::{ExtendedPpo, PpoIndex};
use proptest::prelude::*;
use std::sync::Arc;
use workloads::{generate_mixed, MixedConfig, TreeConfig, WebConfig};

/// An arbitrary sparse digraph: node count and an edge list.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Digraph> {
    (2..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
            .prop_map(move |edges| Digraph::from_edges(n, edges))
    })
}

/// An arbitrary forest: every node > 0 picks a parent among smaller ids,
/// with some nodes left as roots.
fn arb_forest(max_nodes: usize) -> impl Strategy<Value = Digraph> {
    (2..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec(proptest::option::of(0..u32::MAX), n - 1).prop_map(
            move |parents| {
                let edges: Vec<(u32, u32)> = parents
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.map(|p| (p % (i as u32 + 1), i as u32 + 1)))
                    .collect();
                Digraph::from_edges(n, edges)
            },
        )
    })
}

fn arb_labels(g: &Digraph, tags: u32) -> Vec<u32> {
    (0..g.node_count() as u32)
        .map(|u| (u * 7 + 3) % tags)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ppo_audit_holds_on_random_forests(g in arb_forest(60)) {
        let labels = arb_labels(&g, 6);
        let idx = PpoIndex::build(&g, &labels).expect("forests always index");
        let report = idx.integrity_check();
        prop_assert!(report.is_ok(), "{}", report.err().map(|e| e.to_string()).unwrap_or_default());
    }

    #[test]
    fn extended_ppo_audit_holds_on_random_graphs(g in arb_graph(50, 140)) {
        let labels = arb_labels(&g, 6);
        let idx = ExtendedPpo::build(&g, &labels);
        let report = idx.integrity_check();
        prop_assert!(report.is_ok(), "{}", report.err().map(|e| e.to_string()).unwrap_or_default());
    }

    #[test]
    fn hopi_audit_and_graph_oracle_hold_on_random_graphs(g in arb_graph(40, 110)) {
        let labels = arb_labels(&g, 5);
        let idx = HopiIndex::build(&g, &labels);
        let report = idx.integrity_check();
        prop_assert!(report.is_ok(), "{}", report.err().map(|e| e.to_string()).unwrap_or_default());
        let oracle = idx.verify_against_graph(&g, 12);
        prop_assert!(oracle.is_ok(), "{}", oracle.err().unwrap_or_default());
    }

    #[test]
    fn apex_audit_holds_on_random_graphs(
        g in arb_graph(40, 110),
        rounds in 0usize..3,
    ) {
        let labels = arb_labels(&g, 5);
        let idx = ApexIndex::build(&g, &labels, rounds);
        let report = idx.integrity_check();
        prop_assert!(report.is_ok(), "{}", report.err().map(|e| e.to_string()).unwrap_or_default());
    }
}

proptest! {
    // Framework audits build four configurations per case, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn flix_audit_holds_on_random_collections_under_every_config(
        tree_docs in 1usize..4,
        tree_elems in 2usize..10,
        web_docs in 1usize..4,
        web_elems in 2usize..8,
        bridges in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let cfg = MixedConfig {
            trees: TreeConfig {
                documents: tree_docs,
                elements_per_doc: tree_elems,
                max_fanout: 4,
                tag_count: 6,
                seed,
            },
            web: WebConfig {
                documents: web_docs,
                elements_per_doc: web_elems,
                intra_links_per_doc: 2,
                inter_links_per_doc: 2,
                tag_count: 6,
                seed: seed ^ 0x9e37,
            },
            bridge_links: bridges,
            seed,
        };
        let cg = Arc::new(generate_mixed(&cfg).seal());
        for config in [
            FlixConfig::Naive,
            FlixConfig::MaximalPpo,
            FlixConfig::UnconnectedHopi { partition_size: 20 },
            FlixConfig::Monolithic(flix::StrategyKind::Apex),
        ] {
            let flix = Flix::build(cg.clone(), config);
            let report = flix.integrity_check();
            prop_assert!(
                report.is_ok(),
                "config {}: {}",
                config,
                report.err().map(|e| e.to_string()).unwrap_or_default()
            );
        }
    }
}
