//! Incremental ingestion: extending a sealed collection and its framework
//! without rebuilding existing meta-document indexes.

use flix::{BuildOptions, Flix, FlixConfig, QueryOptions};
use std::sync::Arc;
use workloads::{descendant_queries, generate_dblp, DblpConfig};
use xmlgraph::{Collection, CollectionGraph, Document, LinkTarget};

fn base_corpus() -> Arc<CollectionGraph> {
    Arc::new(generate_dblp(&DblpConfig::tiny(88)).seal())
}

/// New publication documents citing existing ones.
fn new_docs(cg: &CollectionGraph, count: usize) -> Vec<Document> {
    let mut tags = cg.collection.tags.clone();
    tags.rebuild_map();
    let article = tags.get("article").unwrap();
    let title = tags.get("title").unwrap();
    let cite = tags.get("cite").unwrap();
    (0..count)
        .map(|i| {
            let mut d = Document::new(format!("new/extension{i}.xml"));
            let r = d.add_element(article, None);
            d.add_anchor(format!("n{i}"), r);
            let t = d.add_element(title, Some(r));
            d.append_text(t, &format!("Extension Paper {i}"));
            // cite two existing papers and (for i > 0) the previous new one
            for target in [
                i % cg.collection.doc_count(),
                (i * 7) % cg.collection.doc_count(),
            ] {
                let c = d.add_element(cite, Some(r));
                d.add_link(
                    c,
                    LinkTarget {
                        document: Some(cg.collection.doc(target as u32).name.clone()),
                        fragment: None,
                    },
                );
            }
            if i > 0 {
                let c = d.add_element(cite, Some(r));
                d.add_link(
                    c,
                    LinkTarget {
                        document: Some(format!("new/extension{}.xml", i - 1)),
                        fragment: Some(format!("n{}", i - 1)),
                    },
                );
            }
            d
        })
        .collect()
}

#[test]
fn extension_preserves_ids_and_resolves_links() {
    let cg = base_corpus();
    let grown = Arc::new(cg.extend(new_docs(&cg, 5)).unwrap());
    assert_eq!(grown.collection.doc_count(), cg.collection.doc_count() + 5);
    // old node ids keep their tags
    for u in 0..cg.node_count() as u32 {
        assert_eq!(cg.tag_of(u), grown.tag_of(u));
        assert_eq!(cg.doc_of(u), grown.doc_of(u));
    }
    // new links from new docs into old docs exist
    let new_root = grown.doc_root(cg.collection.doc_count() as u32);
    assert!(grown.graph.successors(new_root).iter().any(|&v| grown
        .graph
        .successors(v)
        .iter()
        .any(|&t| (t as usize) < cg.node_count())));
}

#[test]
fn extended_framework_answers_like_fresh_build() {
    let cg = base_corpus();
    for config in [
        FlixConfig::Naive,
        FlixConfig::UnconnectedHopi { partition_size: 70 },
    ] {
        let flix = Flix::build(cg.clone(), config);
        let grown = Arc::new(cg.extend(new_docs(&cg, 6)).unwrap());
        let extended = flix
            .extend(grown.clone(), &BuildOptions::default())
            .unwrap();
        // compare against a fresh Naive-ish build only on *answers*, which
        // must be identical for any correct framework
        let fresh = Flix::build(grown.clone(), FlixConfig::Naive);
        for q in descendant_queries(&grown, 10, 61) {
            let mut a: Vec<u32> = extended
                .find_descendants(q.start, q.target_tag, &QueryOptions::default())
                .iter()
                .map(|r| r.node)
                .collect();
            let mut b: Vec<u32> = fresh
                .find_descendants(q.start, q.target_tag, &QueryOptions::default())
                .iter()
                .map(|r| r.node)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{config}: start {}", q.start);
        }
        // queries from the new documents cross into the old region
        let title = grown.collection.tags.get("title").unwrap();
        let last_new = grown.doc_root(grown.collection.doc_count() as u32 - 1);
        let res = extended.find_descendants(last_new, title, &QueryOptions::default());
        assert!(
            res.len() > 2,
            "{config}: new paper must reach cited papers' titles, got {}",
            res.len()
        );
    }
}

#[test]
fn untouched_meta_documents_are_shared_not_rebuilt() {
    let cg = base_corpus();
    let flix = Flix::build(cg.clone(), FlixConfig::Naive);
    let grown = Arc::new(cg.extend(new_docs(&cg, 3)).unwrap());
    let extended = flix.extend(grown, &BuildOptions::default()).unwrap();
    assert_eq!(extended.meta_count(), flix.meta_count() + 3);
    // count metas physically shared with the old framework
    let mut shared = 0usize;
    for i in 0..flix.meta_count() as u32 {
        let a = flix.meta(i) as *const _;
        let b = extended.meta(i) as *const _;
        if std::ptr::eq(a, b) {
            shared += 1;
        }
    }
    assert!(
        shared > flix.meta_count() / 2,
        "most old meta documents must be reused untouched ({shared}/{})",
        flix.meta_count()
    );
}

#[test]
fn dangling_links_resolve_on_extension() {
    let mut c = Collection::new();
    let t = c.tags.intern("x");
    let mut d = Document::new("old.xml");
    let r = d.add_element(t, None);
    d.add_link(
        r,
        LinkTarget {
            document: Some("future.xml".into()),
            fragment: None,
        },
    );
    c.add_document(d).unwrap();
    let cg = Arc::new(c.seal());
    assert_eq!(cg.dangling_links, 1);
    let flix = Flix::build(cg.clone(), FlixConfig::Naive);
    assert!(flix
        .find_descendants(0, t, &QueryOptions::default())
        .is_empty());

    let mut future = Document::new("future.xml");
    future.add_element(t, None);
    let grown = Arc::new(cg.extend(vec![future]).unwrap());
    assert_eq!(grown.dangling_links, 0);
    let extended = flix.extend(grown, &BuildOptions::default()).unwrap();
    let res = extended.find_descendants(0, t, &QueryOptions::default());
    assert_eq!(res.len(), 1, "resolved link must now answer");
}

#[test]
fn extend_rejects_unrelated_graph() {
    let cg = base_corpus();
    let flix = Flix::build(cg, FlixConfig::Naive);
    let other = Arc::new(generate_dblp(&DblpConfig::tiny(89)).seal());
    assert!(flix.extend(other, &BuildOptions::default()).is_err());
}
