//! Durability integration tests: the WAL / snapshot / recovery stack
//! under simulated crashes at every byte boundary, property-based
//! committed-prefix recovery, corrupt-directory rejection, real
//! file-backed crash round trips, and the serve layer's hot swap under
//! concurrent closed-loop traffic.

use flix::{Flix, FlixConfig, QueryOptions};
use flixserve::{FlixServer, Request, ServeConfig};
use pagestore::{
    BlobStore, BufferPool, DiskManager, DurableStore, FileDisk, FileLog, FileManifests, LogDevice,
    MemDisk, MemLog, MemManifests,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use xmlgraph::{Collection, Document, LinkTarget, TagId};

/// Oracle state after a commit: the exported directory bytes plus every
/// live blob's contents.
type Oracle = (Vec<u8>, BTreeMap<String, Vec<u8>>);

fn mem_store(capacity: usize) -> (DurableStore, Arc<MemDisk>, Arc<MemLog>, Arc<MemManifests>) {
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLog::new());
    let manifests = Arc::new(MemManifests::new());
    let (store, _) = DurableStore::open(
        disk.clone() as Arc<dyn DiskManager>,
        log.clone(),
        manifests.clone(),
        capacity,
    )
    .expect("fresh open");
    (store, disk, log, manifests)
}

fn oracle_of(store: &DurableStore, blobs: &BTreeMap<String, Vec<u8>>) -> Oracle {
    (store.committed_directory().to_vec(), blobs.clone())
}

fn assert_matches_oracle(recovered: &DurableStore, oracle: &Oracle, context: &str) {
    let (want_dir, want_blobs) = oracle;
    assert_eq!(
        recovered.committed_directory(),
        &want_dir[..],
        "directory mismatch: {context}"
    );
    for (name, data) in want_blobs {
        assert_eq!(
            recovered.get_blob(name).expect("readable").as_deref(),
            Some(&data[..]),
            "blob {name} mismatch: {context}"
        );
    }
}

/// Crash the store at WAL byte `cut` and recover: every complete
/// committed batch within the prefix must be recovered exactly; torn or
/// uncommitted tails must vanish without damage.
#[test]
fn kill_point_sweep_recovers_committed_prefix_at_every_byte() {
    let (mut store, disk, log, manifests) = mem_store(8);
    // Checkpoint-time images (post-open checkpoint: empty store, gen 1).
    let base_frames = disk.snapshot_frames();
    let base_manifests = manifests.snapshot();

    let mut blobs: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut oracles: Vec<Oracle> = vec![oracle_of(&store, &blobs)];
    let mut boundaries: Vec<usize> = Vec::new();
    for i in 0..5usize {
        let name = format!("blob-{i}");
        let data: Vec<u8> = (0..157 + 61 * i).map(|b| (b * 31 + i) as u8).collect();
        store.put_blob(&name, &data).expect("put");
        if i == 3 {
            // A removal inside a later batch: recovery must honour it.
            store.remove_blob("blob-1");
            blobs.remove("blob-1");
        }
        store.commit().expect("commit");
        blobs.insert(name, data);
        oracles.push(oracle_of(&store, &blobs));
        boundaries.push(log.len().expect("len") as usize);
    }
    let image = log.snapshot();
    assert_eq!(*boundaries.last().unwrap(), image.len());

    for cut in 0..=image.len() {
        let crash_disk = Arc::new(MemDisk::from_frames(base_frames.clone()));
        let crash_log = Arc::new(MemLog::from_bytes(image[..cut].to_vec()));
        let crash_manifests = Arc::new(MemManifests::from_snapshot(base_manifests.clone()));
        let (recovered, report) = DurableStore::open(
            crash_disk as Arc<dyn DiskManager>,
            crash_log,
            crash_manifests,
            8,
        )
        .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let survived = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            report.batches_replayed, survived,
            "wrong batch count at cut {cut}"
        );
        assert_matches_oracle(&recovered, &oracles[survived], &format!("cut {cut}"));
        // Recovery always leaves a clean, checkpointed store.
        assert!(!recovered.has_uncommitted());
    }
}

/// A crash *after* a checkpoint but with the pre-checkpoint WAL restored
/// (simulating a torn truncate): stale-epoch batches must be skipped, and
/// the checkpointed state must win.
#[test]
fn stale_wal_batches_from_before_a_checkpoint_are_skipped() {
    let (mut store, disk, log, manifests) = mem_store(8);
    store
        .put_blob("keep", b"committed before checkpoint")
        .expect("put");
    store.commit().expect("commit");
    let old_log = log.snapshot();
    store.checkpoint().expect("checkpoint");
    assert_eq!(log.len().expect("len"), 0, "checkpoint truncates the WAL");

    // Crash with the old (pre-truncate) log image resurrected.
    let crash_disk = Arc::new(MemDisk::from_frames(disk.snapshot_frames()));
    let crash_log = Arc::new(MemLog::from_bytes(old_log));
    let crash_manifests = Arc::new(MemManifests::from_snapshot(manifests.snapshot()));
    let (recovered, report) = DurableStore::open(
        crash_disk as Arc<dyn DiskManager>,
        crash_log,
        crash_manifests,
        8,
    )
    .expect("recover");
    assert_eq!(report.batches_skipped, 1, "stale-epoch batch skipped");
    assert_eq!(report.batches_replayed, 0);
    assert_eq!(
        recovered.get_blob("keep").expect("readable").as_deref(),
        Some(&b"committed before checkpoint"[..])
    );
}

/// One durable-store op in the proptest workload.
#[derive(Debug, Clone)]
enum Op {
    Put { slot: u8, size: u16 },
    Remove { slot: u8 },
    Commit,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, 1u16..2048).prop_map(|(slot, size)| Op::Put { slot, size }),
            (0u8..6).prop_map(|slot| Op::Remove { slot }),
            Just(Op::Commit),
            Just(Op::Commit),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any op sequence, crashed at any WAL byte: the recovered store is
    /// byte-identical to the oracle of the longest committed prefix.
    #[test]
    fn committed_prefix_is_recovered_exactly(ops in arb_ops(), cut_mille in 0u32..=1000) {
        let (mut store, disk, log, manifests) = mem_store(8);
        let base_frames = disk.snapshot_frames();
        let base_manifests = manifests.snapshot();

        let mut blobs: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let mut oracles: Vec<Oracle> = vec![oracle_of(&store, &blobs)];
        let mut boundaries: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put { slot, size } => {
                    let name = format!("slot-{slot}");
                    let data: Vec<u8> = (0..*size as usize).map(|b| (b + i) as u8).collect();
                    store.put_blob(&name, &data).expect("put");
                    blobs.insert(name, data);
                }
                Op::Remove { slot } => {
                    let name = format!("slot-{slot}");
                    store.remove_blob(&name);
                    blobs.remove(&name);
                }
                Op::Commit => {
                    store.commit().expect("commit");
                    oracles.push(oracle_of(&store, &blobs));
                    boundaries.push(log.len().expect("len") as usize);
                }
            }
        }
        let image = log.snapshot();
        let cut = image.len() * cut_mille as usize / 1000;
        let crash_disk = Arc::new(MemDisk::from_frames(base_frames));
        let crash_log = Arc::new(MemLog::from_bytes(image[..cut].to_vec()));
        let crash_manifests = Arc::new(MemManifests::from_snapshot(base_manifests));
        let (recovered, _) = DurableStore::open(
            crash_disk as Arc<dyn DiskManager>,
            crash_log,
            crash_manifests,
            8,
        )
        .expect("recover");
        let survived = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_matches_oracle(&recovered, &oracles[survived], &format!("cut {cut}"));
    }
}

/// Corrupt blob directories are rejected with a typed error, never a
/// panic and never a silently wrong store.
#[test]
fn corrupt_directories_are_rejected() {
    // A valid one-blob directory to mutate.
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4));
    let mut store = BlobStore::new(pool.clone());
    store.put("a", b"payload").expect("put");
    let good = store.export_directory();
    assert!(BlobStore::import_directory(pool.clone(), &good).is_ok());

    // Truncation at every byte boundary short of the full image: either a
    // clean error or (for a prefix that happens to decode fewer entries)
    // never a crash. The count prefix makes all strict prefixes invalid.
    for cut in 0..good.len() {
        let result = BlobStore::import_directory(pool.clone(), &good[..cut]);
        assert!(
            result.is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }

    // Invalid UTF-8 in the name (count u32 + name_len u32, then the name).
    let mut bad_name = good.clone();
    bad_name[8] = 0xFF;
    let err = BlobStore::import_directory(pool.clone(), &bad_name)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, "invalid blob name");

    // A count far beyond the data: truncated.
    let mut huge = good.clone();
    huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        BlobStore::import_directory(pool.clone(), &huge)
            .map(|_| ())
            .unwrap_err(),
        "directory truncated"
    );

    // A page_count beyond the data: truncated.
    let name_len = 1usize; // "a"
    let page_count_off = 4 + 4 + name_len + 8;
    let mut bad_pages = good.clone();
    bad_pages[page_count_off..page_count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        BlobStore::import_directory(pool, &bad_pages)
            .map(|_| ())
            .unwrap_err(),
        "directory truncated"
    );
}

/// Real files: commit without a checkpoint, drop everything, reopen from
/// disk — the committed blobs survive through WAL replay alone; then
/// checkpoint and reopen again — they survive through the manifest alone.
#[test]
fn file_backed_store_survives_reopen_with_and_without_checkpoint() {
    let dir = std::env::temp_dir().join(format!("flix-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("test dir");
    let db = dir.join("data.db");
    let wal = dir.join("wal.log");
    let manifests_dir = dir.join("manifests");
    let open = || {
        DurableStore::open(
            Arc::new(FileDisk::open(&db).expect("disk")) as Arc<dyn DiskManager>,
            Arc::new(FileLog::open(&wal).expect("log")),
            Arc::new(FileManifests::open(&manifests_dir).expect("manifests")),
            16,
        )
        .expect("open")
    };

    {
        let (mut store, report) = open();
        assert_eq!(report.batches_replayed, 0);
        store
            .put_blob("wal-only", b"survives via replay")
            .expect("put");
        store.commit().expect("commit");
        // No checkpoint: dropped with a dirty pool and a live WAL.
    }
    {
        let (mut store, report) = open();
        assert_eq!(report.batches_replayed, 1, "one committed batch replayed");
        assert_eq!(
            store.get_blob("wal-only").expect("readable").as_deref(),
            Some(&b"survives via replay"[..])
        );
        store
            .put_blob("snap", b"survives via manifest")
            .expect("put");
        store.checkpoint().expect("checkpoint");
    }
    {
        let (store, report) = open();
        assert_eq!(report.batches_replayed, 0, "checkpoint emptied the WAL");
        assert_eq!(
            store.get_blob("wal-only").expect("readable").as_deref(),
            Some(&b"survives via replay"[..])
        );
        assert_eq!(
            store.get_blob("snap").expect("readable").as_deref(),
            Some(&b"survives via manifest"[..])
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

fn chain(docs: usize) -> (Arc<Flix>, TagId) {
    let mut c = Collection::new();
    let t = c.tags.intern("t");
    for d in 0..docs {
        let mut doc = Document::new(format!("d{d}.xml"));
        let root = doc.add_element(t, None);
        if d + 1 < docs {
            doc.add_link(
                root,
                LinkTarget {
                    document: Some(format!("d{}.xml", d + 1)),
                    fragment: None,
                },
            );
        }
        c.add_document(doc).expect("doc");
    }
    let cg = Arc::new(c.seal());
    let tag = cg.collection.tags.get("t").expect("tag");
    (Arc::new(Flix::build(cg, FlixConfig::Naive)), tag)
}

/// Concurrent closed-loop clients while the backend is swapped under
/// them repeatedly: zero dropped queries, every answer byte-identical to
/// the single-generation oracle.
#[test]
fn hot_swap_under_concurrent_traffic_drops_nothing_and_changes_no_answer() {
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

    let (naive, tag) = chain(16);
    // An alternative build of the same collection: answers are identical,
    // the engine is not.
    let grown = Arc::new(Flix::build(
        naive.collection_arc(),
        FlixConfig::UnconnectedHopi {
            partition_size: 1500,
        },
    ));
    let oracle = naive.find_descendants(0, tag, &QueryOptions::default());
    assert_eq!(
        grown.find_descendants(0, tag, &QueryOptions::default()),
        oracle,
        "both generations agree before serving"
    );

    let server = Arc::new(FlixServer::start(
        Arc::clone(&naive),
        ServeConfig {
            workers: 4,
            single_flight: false,
            ..ServeConfig::default()
        },
    ));
    let stop = AtomicBool::new(false);
    let swaps = 40u64;
    std::thread::scope(|s| {
        // Swapper: flip between the two engines as fast as possible.
        s.spawn(|| {
            for i in 0..swaps {
                if i % 2 == 0 {
                    server.swap_backend(Arc::clone(&grown));
                } else {
                    server.swap_backend(Arc::clone(&naive));
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            stop.store(true, SeqCst);
        });
        // Clients: closed-loop queries across every swap.
        for _ in 0..3 {
            s.spawn(|| {
                let mut answered = 0u64;
                while !stop.load(SeqCst) {
                    let response = server
                        .query(Request::descendants(0, tag, QueryOptions::default()))
                        .expect("hot swap must not drop queries");
                    assert_eq!(*response.results, oracle, "answer changed across a swap");
                    answered += 1;
                }
                assert!(answered > 0, "client made progress");
            });
        }
    });
    assert_eq!(
        server.generation(),
        1 + swaps,
        "every swap bumped the generation"
    );
    server.shutdown();
}
