//! Property tests for the XML layer: arbitrary generated documents must
//! survive write → parse → write round trips, and the binary codec must
//! reject corrupt input gracefully.

use proptest::prelude::*;
use xmlgraph::{parse_document, write_document, Collection, Document, LinkSpec, TagInterner};

/// Strategy for tag-like names.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| s)
}

/// Strategy for text content (printable, including XML-hostile chars).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('ß'),
            Just('€'),
        ],
        1..20,
    )
    .prop_map(|cs| cs.into_iter().collect::<String>())
    .prop_filter("keep non-blank after trim", |s| !s.trim().is_empty())
}

/// Builds a random document: a tree of up to `n` elements with random
/// attributes and texts.
fn arb_document() -> impl Strategy<Value = (Document, TagInterner)> {
    (
        proptest::collection::vec((arb_name(), proptest::option::of(arb_text())), 1..25),
        proptest::collection::vec((arb_name(), arb_text()), 0..10),
    )
        .prop_map(|(elements, attrs)| {
            let mut tags = TagInterner::new();
            let mut doc = Document::new("prop.xml");
            for (i, (name, text)) in elements.iter().enumerate() {
                let tag = tags.intern(name);
                let parent = if i == 0 {
                    None
                } else {
                    Some(((i as u32).wrapping_mul(7919)) % i as u32)
                };
                let el = doc.add_element(tag, parent);
                if let Some(t) = text {
                    doc.append_text(el, t);
                }
            }
            for (j, (k, v)) in attrs.iter().enumerate() {
                let el = (j % doc.len()) as u32;
                doc.set_attr(el, k.clone(), v.clone());
            }
            (doc, tags)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_round_trip((doc, mut tags) in arb_document()) {
        let text = write_document(&doc, &tags);
        let parsed = parse_document("prop.xml", &text, &mut tags, &LinkSpec::default())
            .expect("own writer output must parse");
        prop_assert_eq!(doc.len(), parsed.len());
        for (i, el) in doc.elements() {
            let pel = parsed.element(i);
            prop_assert_eq!(tags.name(el.tag), tags.name(pel.tag));
            prop_assert_eq!(el.parent, pel.parent);
            prop_assert_eq!(&el.attrs, &pel.attrs);
            // writer normalises whitespace; compare collapsed text
            let norm = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
            prop_assert_eq!(norm(&el.text), norm(&pel.text));
        }
        // second round trip is a fixpoint
        let text2 = write_document(&parsed, &tags);
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,120}") {
        let mut tags = TagInterner::new();
        let _ = parse_document("fuzz.xml", &input, &mut tags, &LinkSpec::default());
    }

    #[test]
    fn codec_never_panics_on_corrupt_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // decoding random bytes as structured types must error, not panic
        let _ = pagestore::from_bytes::<Vec<(u32, String)>>(&bytes);
        let _ = pagestore::from_bytes::<String>(&bytes);
        let _ = pagestore::from_bytes::<Vec<Vec<u64>>>(&bytes);
    }

    #[test]
    fn collection_seal_total_on_random_links(
        links in proptest::collection::vec((0u32..5, 0u32..5, proptest::option::of(0u32..6)), 0..20)
    ) {
        // arbitrary (possibly dangling) links never break sealing
        let mut c = Collection::new();
        let t = c.tags.intern("x");
        for i in 0..5u32 {
            let mut d = Document::new(format!("d{i}.xml"));
            let r = d.add_element(t, None);
            let k = d.add_element(t, Some(r));
            d.add_anchor("a", k);
            c.add_document(d).unwrap();
        }
        for (src_doc, src_el, target) in &links {
            let target = match target {
                Some(td) if *td < 5 => xmlgraph::LinkTarget {
                    document: Some(format!("d{td}.xml")),
                    fragment: Some("a".into()),
                },
                Some(td) => xmlgraph::LinkTarget {
                    document: Some(format!("missing{td}.xml")),
                    fragment: None,
                },
                None => xmlgraph::LinkTarget {
                    document: None,
                    fragment: Some("nope".into()),
                },
            };
            c.doc_mut(*src_doc).add_link(*src_el % 2, target);
        }
        let cg = c.seal();
        prop_assert_eq!(cg.node_count(), 10);
        // every resolved link edge exists in the graph
        for &(u, v) in &cg.link_edges {
            prop_assert!(cg.graph.has_edge(u, v));
        }
    }
}
