//! Observation must not perturb evaluation.
//!
//! The evaluator treats an attached [`flixobs::QueryTrace`] as write-only:
//! no branch of the algorithm consults it. These tests pin that guarantee
//! down — the result stream is identical with tracing on and off, across
//! every strategy, under early termination, and under exact ordering — and
//! check that the trace's counters reconcile exactly with the evaluator's
//! own [`flix::PeeStats`].

use flix::{Flix, FlixConfig, QueryOptions, QueryPathMetrics, StrategyKind};
use flixobs::{MetricsRegistry, QueryTrace};
use proptest::prelude::*;
use std::ops::ControlFlow;
use std::sync::Arc;
use workloads::{descendant_queries, generate_web, WebConfig};
use xmlgraph::CollectionGraph;

fn corpus(seed: u64, docs: usize) -> Arc<CollectionGraph> {
    let cfg = WebConfig {
        documents: docs.max(4),
        elements_per_doc: 30,
        seed,
        ..WebConfig::default()
    };
    Arc::new(generate_web(&cfg).seal())
}

fn strategies() -> Vec<FlixConfig> {
    vec![
        FlixConfig::Monolithic(StrategyKind::Hopi),
        FlixConfig::Monolithic(StrategyKind::Apex),
        FlixConfig::Naive,
        FlixConfig::UnconnectedHopi { partition_size: 64 },
        FlixConfig::MaximalPpo,
    ]
}

/// Traced evaluation returns the same bytes as untraced evaluation, for
/// every strategy, and the trace's counters reconcile with the stats.
#[test]
fn traced_results_identical_across_strategies() {
    let cg = corpus(5, 10);
    let queries = descendant_queries(&cg, 10, 3);
    for config in strategies() {
        let flix = Flix::build(cg.clone(), config);
        for q in &queries {
            for opts in [
                QueryOptions::default(),
                QueryOptions::top_k(3),
                QueryOptions::exact(),
            ] {
                let plain = flix.find_descendants(q.start, q.target_tag, &opts);
                let mut trace = QueryTrace::new("t");
                let (traced, stats) =
                    flix.find_descendants_with_trace(q.start, q.target_tag, &opts, &mut trace);
                assert_eq!(plain, traced, "{config} start {} diverged", q.start);
                assert_eq!(
                    format!("{plain:?}"),
                    format!("{traced:?}"),
                    "debug renderings must be byte-identical"
                );
                let c = trace.counters();
                assert_eq!(c.entries_popped, stats.entries_popped as u64);
                assert_eq!(c.entries_subsumed, stats.entries_subsumed as u64);
                assert_eq!(c.rows_scanned, stats.block_results_scanned as u64);
                assert_eq!(c.links_expanded, stats.links_expanded as u64);
            }
        }
    }
}

/// The full observability pipeline (registry, histogram, slow-query log)
/// around the evaluator also leaves the results untouched.
#[test]
fn observed_pipeline_matches_plain_evaluation() {
    let cg = corpus(9, 8);
    let queries = descendant_queries(&cg, 6, 7);
    let registry = MetricsRegistry::new();
    for config in strategies() {
        let name = config.to_string();
        let flix = Flix::build(cg.clone(), config);
        let obs = QueryPathMetrics::register(&registry, &[("config", &name)]);
        for q in &queries {
            let opts = QueryOptions::default();
            let (observed, _) = obs.find_descendants(&flix, q.start, q.target_tag, &opts, "q");
            assert_eq!(
                observed,
                flix.find_descendants(q.start, q.target_tag, &opts)
            );
        }
        assert_eq!(obs.queries(), queries.len() as u64);
    }
    // The snapshot both exports must be well-formed after real traffic.
    let snap = registry.snapshot();
    assert!(snap
        .to_prometheus()
        .contains("# TYPE flix_query_latency_micros histogram"));
    assert!(snap.to_json().contains("\"p99\""));
}

/// Early termination through the streaming interface sees the same prefix
/// with and without a trace attached.
#[test]
fn early_break_prefix_identical() {
    let cg = corpus(11, 8);
    let queries = descendant_queries(&cg, 6, 13);
    for config in strategies() {
        let flix = Flix::build(cg.clone(), config);
        for q in &queries {
            for cutoff in [1usize, 2, 5] {
                let mut plain = Vec::new();
                flix.for_each_descendant(q.start, q.target_tag, &QueryOptions::default(), |r| {
                    plain.push(r);
                    if plain.len() >= cutoff {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                let mut traced = Vec::new();
                let mut trace = QueryTrace::new("t");
                flix.for_each_descendant_with_trace(
                    q.start,
                    q.target_tag,
                    &QueryOptions::default(),
                    &mut trace,
                    |r, _| {
                        traced.push(r);
                        if traced.len() >= cutoff {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    },
                );
                assert_eq!(plain, traced, "{config} diverged at cutoff {cutoff}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised corpora, query options, and strategies: traced and
    /// untraced evaluation always yield identical result streams.
    #[test]
    fn traced_and_untraced_streams_identical(
        seed in 0u64..500,
        docs in 4usize..10,
        qpick in 0usize..16,
        k in proptest::option::of(1usize..12),
        exact in 0u8..2,
    ) {
        let cg = corpus(seed, docs);
        let queries = descendant_queries(&cg, 6, seed.wrapping_mul(31).wrapping_add(1));
        if queries.is_empty() {
            return Ok(());
        }
        let q = &queries[qpick % queries.len()];
        let opts = QueryOptions {
            max_results: k,
            exact_order: exact == 1,
            ..QueryOptions::default()
        };
        for config in [
            FlixConfig::Naive,
            FlixConfig::UnconnectedHopi { partition_size: 100 },
            FlixConfig::MaximalPpo,
        ] {
            let flix = Flix::build(cg.clone(), config);
            let plain = flix.find_descendants(q.start, q.target_tag, &opts);
            let mut trace = QueryTrace::new("prop");
            let (traced, stats) =
                flix.find_descendants_with_trace(q.start, q.target_tag, &opts, &mut trace);
            prop_assert_eq!(&plain, &traced, "{} diverged", config);
            let c = trace.counters();
            prop_assert_eq!(c.entries_popped, stats.entries_popped as u64);
            prop_assert_eq!(c.entries_subsumed, stats.entries_subsumed as u64);
            prop_assert_eq!(c.rows_scanned, stats.block_results_scanned as u64);
            prop_assert_eq!(c.links_expanded, stats.links_expanded as u64);
        }
    }
}
