//! Observation must not perturb evaluation.
//!
//! The evaluator treats an attached [`flixobs::QueryTrace`] as write-only:
//! no branch of the algorithm consults it. These tests pin that guarantee
//! down — the result stream is identical with tracing on and off, across
//! every strategy, under early termination, and under exact ordering — and
//! check that the trace's counters reconcile exactly with the evaluator's
//! own [`flix::PeeStats`].

use flix::{Flix, FlixConfig, QueryOptions, QueryPathMetrics, StrategyKind};
use flixobs::{MetricsRegistry, QueryTrace};
use proptest::prelude::*;
use std::ops::ControlFlow;
use std::sync::Arc;
use workloads::{descendant_queries, generate_web, WebConfig};
use xmlgraph::CollectionGraph;

fn corpus(seed: u64, docs: usize) -> Arc<CollectionGraph> {
    let cfg = WebConfig {
        documents: docs.max(4),
        elements_per_doc: 30,
        seed,
        ..WebConfig::default()
    };
    Arc::new(generate_web(&cfg).seal())
}

fn strategies() -> Vec<FlixConfig> {
    vec![
        FlixConfig::Monolithic(StrategyKind::Hopi),
        FlixConfig::Monolithic(StrategyKind::Apex),
        FlixConfig::Naive,
        FlixConfig::UnconnectedHopi { partition_size: 64 },
        FlixConfig::MaximalPpo,
    ]
}

/// Traced evaluation returns the same bytes as untraced evaluation, for
/// every strategy, and the trace's counters reconcile with the stats.
#[test]
fn traced_results_identical_across_strategies() {
    let cg = corpus(5, 10);
    let queries = descendant_queries(&cg, 10, 3);
    for config in strategies() {
        let flix = Flix::build(cg.clone(), config);
        for q in &queries {
            for opts in [
                QueryOptions::default(),
                QueryOptions::top_k(3),
                QueryOptions::exact(),
            ] {
                let plain = flix.find_descendants(q.start, q.target_tag, &opts);
                let mut trace = QueryTrace::new("t");
                let (traced, stats) =
                    flix.find_descendants_with_trace(q.start, q.target_tag, &opts, &mut trace);
                assert_eq!(plain, traced, "{config} start {} diverged", q.start);
                assert_eq!(
                    format!("{plain:?}"),
                    format!("{traced:?}"),
                    "debug renderings must be byte-identical"
                );
                let c = trace.counters();
                assert_eq!(c.entries_popped, stats.entries_popped as u64);
                assert_eq!(c.entries_subsumed, stats.entries_subsumed as u64);
                assert_eq!(c.rows_scanned, stats.block_results_scanned as u64);
                assert_eq!(c.links_expanded, stats.links_expanded as u64);
            }
        }
    }
}

/// The full observability pipeline (registry, histogram, slow-query log)
/// around the evaluator also leaves the results untouched.
#[test]
fn observed_pipeline_matches_plain_evaluation() {
    let cg = corpus(9, 8);
    let queries = descendant_queries(&cg, 6, 7);
    let registry = MetricsRegistry::new();
    for config in strategies() {
        let name = config.to_string();
        let flix = Flix::build(cg.clone(), config);
        let obs = QueryPathMetrics::register(&registry, &[("config", &name)]);
        for q in &queries {
            let opts = QueryOptions::default();
            let (observed, _) = obs.find_descendants(&flix, q.start, q.target_tag, &opts, "q");
            assert_eq!(
                observed,
                flix.find_descendants(q.start, q.target_tag, &opts)
            );
        }
        assert_eq!(obs.queries(), queries.len() as u64);
    }
    // The snapshot both exports must be well-formed after real traffic.
    let snap = registry.snapshot();
    assert!(snap
        .to_prometheus()
        .contains("# TYPE flix_query_latency_micros histogram"));
    assert!(snap.to_json().contains("\"p99\""));
}

/// Early termination through the streaming interface sees the same prefix
/// with and without a trace attached.
#[test]
fn early_break_prefix_identical() {
    let cg = corpus(11, 8);
    let queries = descendant_queries(&cg, 6, 13);
    for config in strategies() {
        let flix = Flix::build(cg.clone(), config);
        for q in &queries {
            for cutoff in [1usize, 2, 5] {
                let mut plain = Vec::new();
                flix.for_each_descendant(q.start, q.target_tag, &QueryOptions::default(), |r| {
                    plain.push(r);
                    if plain.len() >= cutoff {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                let mut traced = Vec::new();
                let mut trace = QueryTrace::new("t");
                flix.for_each_descendant_with_trace(
                    q.start,
                    q.target_tag,
                    &QueryOptions::default(),
                    &mut trace,
                    |r, _| {
                        traced.push(r);
                        if traced.len() >= cutoff {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    },
                );
                assert_eq!(plain, traced, "{config} diverged at cutoff {cutoff}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised corpora, query options, and strategies: traced and
    /// untraced evaluation always yield identical result streams.
    #[test]
    fn traced_and_untraced_streams_identical(
        seed in 0u64..500,
        docs in 4usize..10,
        qpick in 0usize..16,
        k in proptest::option::of(1usize..12),
        exact in 0u8..2,
    ) {
        let cg = corpus(seed, docs);
        let queries = descendant_queries(&cg, 6, seed.wrapping_mul(31).wrapping_add(1));
        if queries.is_empty() {
            return Ok(());
        }
        let q = &queries[qpick % queries.len()];
        let opts = QueryOptions {
            max_results: k,
            exact_order: exact == 1,
            ..QueryOptions::default()
        };
        for config in [
            FlixConfig::Naive,
            FlixConfig::UnconnectedHopi { partition_size: 100 },
            FlixConfig::MaximalPpo,
        ] {
            let flix = Flix::build(cg.clone(), config);
            let plain = flix.find_descendants(q.start, q.target_tag, &opts);
            let mut trace = QueryTrace::new("prop");
            let (traced, stats) =
                flix.find_descendants_with_trace(q.start, q.target_tag, &opts, &mut trace);
            prop_assert_eq!(&plain, &traced, "{} diverged", config);
            let c = trace.counters();
            prop_assert_eq!(c.entries_popped, stats.entries_popped as u64);
            prop_assert_eq!(c.entries_subsumed, stats.entries_subsumed as u64);
            prop_assert_eq!(c.rows_scanned, stats.block_results_scanned as u64);
            prop_assert_eq!(c.links_expanded, stats.links_expanded as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Flight-recorder journal: concurrency and export well-formedness.
// ---------------------------------------------------------------------

/// Hammer one recorder from many writer threads while a reader snapshots
/// concurrently: snapshots must never tear (every surviving event decodes
/// to exactly what some writer appended), never panic, and the logged /
/// dropped accounting must reconcile with the ring capacity.
#[test]
fn journal_multi_writer_stress_never_tears() {
    use flixobs::{EventKind, FlightRecorder, RequestId};
    let workers = 4;
    let recorder = Arc::new(FlightRecorder::for_workers(workers, 64));
    let appends_per_thread = 2_000u64;
    std::thread::scope(|scope| {
        for t in 0..workers as u64 {
            let recorder = Arc::clone(&recorder);
            scope.spawn(move || {
                for i in 0..appends_per_thread {
                    // Self-validating payload: results encodes (thread, i),
                    // so a torn read would surface as an impossible value.
                    let payload = t * 1_000_000 + i;
                    // All threads hit ALL lanes: the ring is deliberately
                    // stressed beyond its single-writer design point.
                    let lane = (i % (workers as u64 + 1)) as usize;
                    recorder.record(
                        lane,
                        RequestId::new(t + 1),
                        EventKind::EvalEnd { results: payload },
                    );
                }
            });
        }
        // Concurrent reader: snapshots while the writers are appending.
        let recorder = Arc::clone(&recorder);
        scope.spawn(move || {
            for _ in 0..200 {
                let snapshot = recorder.snapshot();
                for e in &snapshot.events {
                    let flixobs::EventKind::EvalEnd { results } = e.kind else {
                        panic!("foreign event appeared: {:?}", e.kind);
                    };
                    let (t, i) = (results / 1_000_000, results % 1_000_000);
                    assert!(t < 4 && i < 2_000, "torn payload {results}");
                    assert_eq!(e.request, flixobs::RequestId::new(t + 1));
                }
            }
        });
    });
    let total = workers as u64 * appends_per_thread;
    assert_eq!(recorder.events_logged(), total);
    let snapshot = recorder.snapshot();
    // Each of the 5 lanes holds at most its capacity of survivors.
    assert!(snapshot.events.len() <= (workers + 1) * 64);
    assert!(!snapshot.events.is_empty());
    assert_eq!(snapshot.logged, total);
    assert!(snapshot.dropped >= total - ((workers as u64 + 1) * 64));
}

/// A minimal recursive-descent JSON syntax check — enough to catch any
/// malformed output from the hand-rolled Chrome-trace exporter.
fn json_well_formed(s: &str) -> Result<(), String> {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize, depth: usize) -> Result<usize, String> {
        if depth > 64 {
            return Err("nesting too deep".into());
        }
        let i = skip_ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    i = value(b, i + 1, depth + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or '}}' at {i}")),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = value(b, i, depth + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or ']' at {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => lit(b, i, "true"),
            Some(b'f') => lit(b, i, "false"),
            Some(b'n') => lit(b, i, "null"),
            Some(_) => number(b, i),
            None => Err("unexpected end".into()),
        }
    }
    fn lit(b: &[u8], i: usize, word: &str) -> Result<usize, String> {
        if b[i..].starts_with(word.as_bytes()) {
            Ok(i + word.len())
        } else {
            Err(format!("bad literal at {i}"))
        }
    }
    fn string(b: &[u8], i: usize) -> Result<usize, String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected string at {i}"));
        }
        let mut i = i + 1;
        while let Some(&c) = b.get(i) {
            match c {
                b'"' => return Ok(i + 1),
                b'\\' => i += 2,
                0x00..=0x1f => return Err(format!("raw control char at {i}")),
                _ => i += 1,
            }
        }
        Err("unterminated string".into())
    }
    fn number(b: &[u8], i: usize) -> Result<usize, String> {
        let start = i;
        let mut i = i;
        if b.get(i) == Some(&b'-') {
            i += 1;
        }
        while i < b.len() && (b[i].is_ascii_digit() || b"+-.eE".contains(&b[i])) {
            i += 1;
        }
        if i == start {
            Err(format!("expected number at {i}"))
        } else {
            Ok(i)
        }
    }
    let b = s.as_bytes();
    let end = value(b, 0, 0)?;
    if skip_ws(b, end) != b.len() {
        return Err(format!("trailing garbage at {end}"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random event streams — nested spans, instants, sheds, multiple
    /// requests, rings small enough to wrap — always export to
    /// syntactically well-formed Chrome-trace JSON whose per-request
    /// event sequences are time-monotonic and whose span events nest
    /// properly (every exported `X` span came from a matched
    /// EvalStart/EvalEnd pair on one lane).
    #[test]
    fn chrome_trace_export_is_well_formed(
        seed in 0u64..10_000,
        capacity in 8usize..256,
        events in 8usize..200,
        requests in 1u64..12,
    ) {
        use flixobs::{EventKind, FlightRecorder, RequestId};
        let recorder = FlightRecorder::for_workers(2, capacity);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut rand = move |n: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % n.max(1)
        };
        // Per-lane span depth so EvalStart/EvalEnd stay properly nested
        // (the recorder's real callers guarantee this shape).
        let mut depth = [0u32; 3];
        for _ in 0..events {
            let lane = rand(3) as usize;
            let id = RequestId::new(rand(requests) + 1);
            match rand(6) {
                0 => recorder.record(lane, id, EventKind::Admitted),
                1 => recorder.record(lane, id, EventKind::Shed { in_flight: rand(100) }),
                2 => recorder.record(lane, id, EventKind::CacheHit { shard: rand(4) }),
                3 => recorder.record(lane, id, EventKind::Enqueued { worker: rand(2) }),
                _ => {
                    if depth[lane] > 0 && rand(2) == 0 {
                        recorder.record(lane, id, EventKind::EvalEnd { results: rand(50) });
                        depth[lane] -= 1;
                    } else {
                        recorder.record(lane, id, EventKind::EvalStart { shard: rand(4) });
                        depth[lane] += 1;
                    }
                }
            }
        }
        let snapshot = recorder.snapshot();
        let chrome = snapshot.to_chrome_trace();
        prop_assert!(
            json_well_formed(&chrome).is_ok(),
            "malformed chrome trace: {:?}\n{}",
            json_well_formed(&chrome),
            chrome
        );
        prop_assert!(chrome.contains("\"traceEvents\""));
        // Per-request monotonicity in the merged snapshot.
        for id in snapshot.request_ids() {
            let events = snapshot.request_events(id);
            prop_assert!(events.windows(2).all(|w| w[0].micros <= w[1].micros));
        }
        // Span pairing: the exporter emits exactly one X event per
        // EvalStart that found its matching EvalEnd on the same lane.
        let mut expected_spans = 0usize;
        for lane in 0..3 {
            let mut open = 0i64;
            for e in snapshot.events.iter().filter(|e| e.lane == lane) {
                match e.kind {
                    EventKind::EvalStart { .. } => open += 1,
                    EventKind::EvalEnd { .. } if open > 0 => {
                        open -= 1;
                        expected_spans += 1;
                    }
                    _ => {}
                }
            }
        }
        let exported_spans = chrome.matches("\"ph\":\"X\",\"pid\"").count()
            - chrome.matches("\"name\":\"queued\"").count();
        prop_assert_eq!(exported_spans, expected_spans);
    }
}
