//! The classic pre/postorder index over a forest.

use graphcore::{Digraph, Distance, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors raised when the input graph is not a forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PpoError {
    /// A node has more than one parent.
    MultipleParents(NodeId),
    /// The graph contains a cycle.
    Cyclic,
}

impl std::fmt::Display for PpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpoError::MultipleParents(n) => write!(f, "node {n} has multiple parents"),
            PpoError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for PpoError {}

/// Pre/postorder index over a forest with per-node labels.
///
/// Labels are opaque `u32`s (FliX passes interned tag ids). Per label the
/// index keeps the preorder ranks of all nodes carrying it, so a
/// descendants-by-label query is a binary search plus a contiguous scan —
/// the operation the paper's structural-vagueness queries hammer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoIndex {
    /// Preorder rank per node.
    pre: Vec<u32>,
    /// Postorder rank per node.
    post: Vec<u32>,
    /// Depth per node (roots have depth 0).
    depth: Vec<u32>,
    /// Parent per node (`u32::MAX` for roots).
    parent: Vec<NodeId>,
    /// Subtree size per node (including the node).
    size: Vec<u32>,
    /// `pre_to_node[r]` = node with preorder rank `r`.
    pre_to_node: Vec<NodeId>,
    /// label -> sorted `(pre, node)` pairs. A `BTreeMap` so the serialized
    /// image is deterministic (persisted frameworks must be byte-identical
    /// across builds of the same collection).
    by_label: BTreeMap<u32, Vec<(u32, NodeId)>>,
}

impl PpoIndex {
    /// Builds the index over `g`, which must be a forest.
    ///
    /// `labels[u]` is the label of node `u` (`labels.len() == node count`).
    pub fn build(g: &Digraph, labels: &[u32]) -> Result<Self, PpoError> {
        assert_eq!(labels.len(), g.node_count(), "one label per node");
        let n = g.node_count();
        for u in g.nodes() {
            if g.in_degree(u) > 1 {
                return Err(PpoError::MultipleParents(u));
            }
        }
        let mut pre = vec![u32::MAX; n];
        let mut post = vec![u32::MAX; n];
        let mut depth = vec![0u32; n];
        let mut parent = vec![u32::MAX; n];
        let mut size = vec![1u32; n];
        let mut pre_to_node = vec![0 as NodeId; n];
        let mut next_pre = 0u32;
        let mut next_post = 0u32;
        // Iterative DFS per root; (node, child cursor).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for root in g.nodes() {
            if g.in_degree(root) != 0 {
                continue;
            }
            pre[root as usize] = next_pre;
            pre_to_node[next_pre as usize] = root;
            next_pre += 1;
            stack.push((root, 0));
            while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
                let kids = g.successors(u);
                if *cursor < kids.len() {
                    let v = kids[*cursor];
                    *cursor += 1;
                    parent[v as usize] = u;
                    depth[v as usize] = depth[u as usize] + 1;
                    pre[v as usize] = next_pre;
                    pre_to_node[next_pre as usize] = v;
                    next_pre += 1;
                    stack.push((v, 0));
                } else {
                    post[u as usize] = next_post;
                    next_post += 1;
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        size[p as usize] += size[u as usize];
                    }
                }
            }
        }
        if next_pre as usize != n {
            // Some node was never reached from an in-degree-0 root, which in
            // an in-degree<=1 graph means a cycle.
            return Err(PpoError::Cyclic);
        }
        let mut by_label: BTreeMap<u32, Vec<(u32, NodeId)>> = BTreeMap::new();
        for u in 0..n {
            by_label
                .entry(labels[u])
                .or_default()
                .push((pre[u], u as NodeId));
        }
        for list in by_label.values_mut() {
            list.sort_unstable();
        }
        Ok(Self {
            pre,
            post,
            depth,
            parent,
            size,
            pre_to_node,
            by_label,
        })
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.pre.len()
    }

    /// Preorder rank of `u`.
    pub fn pre(&self, u: NodeId) -> u32 {
        self.pre[u as usize]
    }

    /// Postorder rank of `u`.
    pub fn post(&self, u: NodeId) -> u32 {
        self.post[u as usize]
    }

    /// Depth of `u` (roots are 0).
    pub fn depth(&self, u: NodeId) -> u32 {
        self.depth[u as usize]
    }

    /// Parent of `u`, `None` for roots.
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        let p = self.parent[u as usize];
        (p != u32::MAX).then_some(p)
    }

    /// True if `v` is a descendant of `u` (descendant-or-self: `u == v`
    /// also answers true).
    pub fn is_descendant_or_self(&self, u: NodeId, v: NodeId) -> bool {
        let (pu, pv) = (self.pre[u as usize], self.pre[v as usize]);
        pv >= pu && pv < pu + self.size[u as usize]
    }

    /// Classic pre/post formulation of the ancestor test (equivalent to the
    /// interval test; exposed for the paper-faithful axis checks).
    pub fn is_ancestor(&self, x: NodeId, y: NodeId) -> bool {
        self.pre[x as usize] < self.pre[y as usize] && self.post[x as usize] > self.post[y as usize]
    }

    /// Hop distance from `u` down to `v`, if `v` is in `u`'s subtree.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Distance> {
        self.is_descendant_or_self(u, v)
            .then(|| self.depth[v as usize] - self.depth[u as usize])
    }

    /// All descendants of `u` (excluding `u`), in preorder.
    pub fn descendants(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let start = self.pre[u as usize] as usize + 1;
        let end = (self.pre[u as usize] + self.size[u as usize]) as usize;
        self.pre_to_node[start..end].iter().copied()
    }

    /// Descendants of `u` carrying `label`, as `(node, distance)` sorted by
    /// ascending distance (the contract FliX's evaluator relies on).
    ///
    /// `include_self` controls whether `u` itself may qualify
    /// (descendant-or-self vs. strict descendant semantics).
    pub fn descendants_with_label(
        &self,
        u: NodeId,
        label_nodes: Option<&[(u32, NodeId)]>,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.descendants_with_label_counted(u, label_nodes, include_self)
            .0
    }

    /// Like [`Self::descendants_with_label`], also reporting the number of
    /// index rows touched (the scanned range of the per-label rank list) —
    /// the unit a database-backed deployment pays per row fetch.
    pub fn descendants_with_label_counted(
        &self,
        u: NodeId,
        label_nodes: Option<&[(u32, NodeId)]>,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        let Some(list) = label_nodes else {
            return (Vec::new(), 0);
        };
        let lo = self.pre[u as usize] + if include_self { 0 } else { 1 };
        let hi = self.pre[u as usize] + self.size[u as usize];
        let start = list.partition_point(|&(p, _)| p < lo);
        let end = list.partition_point(|&(p, _)| p < hi);
        let mut out: Vec<(NodeId, Distance)> = list[start..end]
            .iter()
            .map(|&(_, v)| (v, self.depth[v as usize] - self.depth[u as usize]))
            .collect();
        out.sort_unstable_by_key(|&(v, d)| (d, v));
        (out, end - start)
    }

    /// Convenience wrapper over [`Self::descendants_with_label`] using the
    /// index's own label table.
    pub fn descendants_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.descendants_with_label(u, self.label_list(label), include_self)
    }

    /// The sorted `(pre, node)` list for a label, if any node carries it.
    pub fn label_list(&self, label: u32) -> Option<&[(u32, NodeId)]> {
        self.by_label.get(&label).map(Vec::as_slice)
    }

    /// Ancestors of `u` from parent to root, each with its distance.
    pub fn ancestors(&self, u: NodeId) -> Vec<(NodeId, Distance)> {
        let mut out = Vec::new();
        let mut cur = u;
        let mut d = 0;
        while let Some(p) = self.parent(cur) {
            d += 1;
            out.push((p, d));
            cur = p;
        }
        out
    }

    /// Ancestors of `u` carrying `label`, nearest first.
    pub fn ancestors_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.ancestors_by_label_counted(u, label, include_self).0
    }

    /// [`Self::ancestors_by_label`] plus the number of nodes probed on the
    /// parent chain (each probe is one row fetch in a database-backed
    /// deployment) — the ancestors mirror of
    /// [`Self::descendants_with_label_counted`].
    pub fn ancestors_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        let mut out = Vec::new();
        let mut probed = 0usize;
        if include_self {
            probed += 1;
            if self.node_label_matches(u, label) {
                out.push((u, 0));
            }
        }
        for (a, d) in self.ancestors(u) {
            probed += 1;
            if self.node_label_matches(a, label) {
                out.push((a, d));
            }
        }
        (out, probed)
    }

    fn node_label_matches(&self, u: NodeId, label: u32) -> bool {
        self.by_label
            .get(&label)
            .is_some_and(|l| l.binary_search(&(self.pre[u as usize], u)).is_ok())
    }

    /// Nodes in the *following* axis of `u`: preorder after `u`'s subtree.
    pub fn following(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let end = (self.pre[u as usize] + self.size[u as usize]) as usize;
        self.pre_to_node[end..].iter().copied()
    }

    /// Nodes in the *preceding* axis of `u`: preorder before `u`, excluding
    /// ancestors.
    pub fn preceding(&self, u: NodeId) -> Vec<NodeId> {
        (0..self.pre[u as usize] as usize)
            .map(|r| self.pre_to_node[r])
            .filter(|&x| !self.is_ancestor(x, u))
            .collect()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let n = self.pre.len();
        let label_entries: usize = self.by_label.values().map(Vec::len).sum();
        6 * 4 * n + label_entries * 8
    }
}

impl flixcheck::IntegrityCheck for PpoIndex {
    /// Audits the interval structure: `pre`/`post` must be inverse-mapped
    /// permutations, parent intervals must strictly nest child intervals,
    /// depths must increase by one along parent edges, subtree sizes must
    /// satisfy the size recurrence, and the per-label lists must cover
    /// every node exactly once in strict preorder.
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("PpoIndex");
        let n = self.pre.len();
        audit.check(
            "parallel arrays same length",
            self.post.len() == n
                && self.depth.len() == n
                && self.parent.len() == n
                && self.size.len() == n
                && self.pre_to_node.len() == n,
            || {
                format!(
                    "pre={n} post={} depth={} parent={} size={} pre_to_node={}",
                    self.post.len(),
                    self.depth.len(),
                    self.parent.len(),
                    self.size.len(),
                    self.pre_to_node.len()
                )
            },
        );
        if audit.violation_count() > 0 {
            return audit.finish();
        }

        let mut first = None;
        for u in 0..n {
            let r = self.pre[u] as usize;
            if r >= n || self.pre_to_node[r] != u as NodeId {
                first = Some(format!(
                    "node {u}: pre rank {r} not inverted by pre_to_node"
                ));
                break;
            }
        }
        audit.check("pre/pre_to_node inverse bijection", first.is_none(), || {
            first.unwrap_or_default()
        });

        let mut seen = vec![false; n];
        let mut first = None;
        for u in 0..n {
            let r = self.post[u] as usize;
            if r >= n || seen[r] {
                first = Some(format!(
                    "node {u}: post rank {} out of range or duplicated",
                    self.post[u]
                ));
                break;
            }
            seen[r] = true;
        }
        audit.check("post is a permutation of 0..n", first.is_none(), || {
            first.unwrap_or_default()
        });

        let mut first = None;
        for u in 0..n {
            let p = self.parent[u];
            if p == NodeId::MAX {
                if self.depth[u] != 0 {
                    first = Some(format!("root {u} has depth {}", self.depth[u]));
                    break;
                }
                continue;
            }
            let p = p as usize;
            if p >= n || p == u {
                first = Some(format!("node {u}: parent {p} invalid"));
                break;
            }
            if self.depth[u] != self.depth[p] + 1 {
                first = Some(format!(
                    "node {u}: depth {} but parent {p} has depth {}",
                    self.depth[u], self.depth[p]
                ));
                break;
            }
            let nested = self.pre[p] < self.pre[u]
                && self.post[p] > self.post[u]
                && self.pre[u] + self.size[u] <= self.pre[p] + self.size[p];
            if !nested {
                first = Some(format!(
                    "node {u}: interval [{}, {}) post {} escapes parent {p} [{}, {}) post {}",
                    self.pre[u],
                    self.pre[u] + self.size[u],
                    self.post[u],
                    self.pre[p],
                    self.pre[p] + self.size[p],
                    self.post[p]
                ));
                break;
            }
        }
        audit.check(
            "parent intervals nest children (pre/post/depth consistent)",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let mut child_sum = vec![0u64; n];
        for u in 0..n {
            let p = self.parent[u];
            if p != NodeId::MAX && (p as usize) < n {
                child_sum[p as usize] += u64::from(self.size[u]);
            }
        }
        let mut first = None;
        for (u, &sum) in child_sum.iter().enumerate() {
            if u64::from(self.size[u]) != sum + 1 {
                first = Some(format!(
                    "node {u}: size {} but 1 + children sizes = {}",
                    self.size[u],
                    sum + 1
                ));
                break;
            }
        }
        audit.check(
            "subtree sizes satisfy the size recurrence",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let mut covered = vec![false; n];
        let mut total = 0usize;
        let mut first = None;
        'outer: for (label, list) in &self.by_label {
            let mut prev: Option<u32> = None;
            for &(r, v) in list {
                total += 1;
                if prev.is_some_and(|p| p >= r) {
                    first = Some(format!(
                        "label {label}: list not strictly sorted at pre {r}"
                    ));
                    break 'outer;
                }
                prev = Some(r);
                let vu = v as usize;
                if vu >= n || self.pre[vu] != r {
                    first = Some(format!(
                        "label {label}: entry ({r}, {v}) disagrees with pre[]"
                    ));
                    break 'outer;
                }
                if covered[vu] {
                    first = Some(format!("node {v} appears under more than one label"));
                    break 'outer;
                }
                covered[vu] = true;
            }
        }
        if first.is_none() && total != n {
            first = Some(format!("label lists hold {total} entries for {n} nodes"));
        }
        audit.check(
            "label lists partition the nodes in strict preorder",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example tree:
    /// ```text
    ///        0
    ///      /   \
    ///     1     2
    ///    / \     \
    ///   3   4     5
    ///        \
    ///         6
    /// ```
    fn tree() -> (Digraph, Vec<u32>) {
        let g = Digraph::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (4, 6), (2, 5)]);
        // labels: 0=A, 1=B, 2=B, 3=C, 4=C, 5=C, 6=B
        (g, vec![0, 1, 1, 2, 2, 2, 1])
    }

    #[test]
    fn pre_post_invariants() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        // all ranks distinct and within range
        let mut pres: Vec<u32> = (0..7).map(|u| idx.pre(u)).collect();
        pres.sort_unstable();
        assert_eq!(pres, (0..7).collect::<Vec<_>>());
        assert_eq!(idx.pre(0), 0);
        assert_eq!(idx.depth(6), 3);
        assert_eq!(idx.parent(6), Some(4));
        assert_eq!(idx.parent(0), None);
    }

    #[test]
    fn ancestor_test_matches_paper_formula() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        let oracle = graphcore::TransitiveClosure::build(&g);
        for u in 0..7u32 {
            for v in 0..7u32 {
                assert_eq!(
                    idx.is_descendant_or_self(u, v),
                    oracle.reaches(u, v),
                    "pair {u},{v}"
                );
                if u != v {
                    assert_eq!(idx.is_ancestor(u, v), oracle.reaches(u, v));
                }
            }
        }
    }

    #[test]
    fn distances_are_depth_differences() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        assert_eq!(idx.distance(0, 6), Some(3));
        assert_eq!(idx.distance(1, 6), Some(2));
        assert_eq!(idx.distance(6, 0), None);
        assert_eq!(idx.distance(2, 2), Some(0));
    }

    #[test]
    fn descendants_by_label_sorted_by_distance() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        // label 1 (B) under root: nodes 1 (d=1), 2 (d=1), 6 (d=3)
        let r = idx.descendants_by_label(0, 1, false);
        assert_eq!(r, vec![(1, 1), (2, 1), (6, 3)]);
        // include_self on a B node
        let r = idx.descendants_by_label(1, 1, true);
        assert_eq!(r, vec![(1, 0), (6, 2)]);
        // no match
        assert!(idx.descendants_by_label(5, 0, false).is_empty());
        // unknown label entirely
        assert!(idx.descendants_by_label(0, 99, true).is_empty());
    }

    #[test]
    fn descendants_iterator_is_subtree() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        let mut d: Vec<NodeId> = idx.descendants(1).collect();
        d.sort_unstable();
        assert_eq!(d, vec![3, 4, 6]);
        assert_eq!(idx.descendants(5).count(), 0);
    }

    #[test]
    fn ancestors_walk() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        assert_eq!(idx.ancestors(6), vec![(4, 1), (1, 2), (0, 3)]);
        // B-labelled ancestors of 6: node 1 at distance 2 (+ self at 0)
        assert_eq!(idx.ancestors_by_label(6, 1, true), vec![(6, 0), (1, 2)]);
        assert_eq!(idx.ancestors_by_label(6, 1, false), vec![(1, 2)]);
    }

    #[test]
    fn following_preceding_partition() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        for u in 0..7u32 {
            let mut all: Vec<NodeId> = idx.following(u).collect();
            all.extend(idx.preceding(u));
            all.extend(idx.descendants(u));
            all.extend(idx.ancestors(u).into_iter().map(|(a, _)| a));
            all.push(u);
            all.sort_unstable();
            all.dedup();
            assert_eq!(all, (0..7).collect::<Vec<_>>(), "axes partition for {u}");
        }
    }

    #[test]
    fn forest_with_multiple_roots() {
        let g = Digraph::from_edges(5, [(0, 1), (2, 3), (2, 4)]);
        let idx = PpoIndex::build(&g, &[0; 5]).unwrap();
        assert!(idx.is_descendant_or_self(2, 4));
        assert!(!idx.is_descendant_or_self(0, 3));
    }

    #[test]
    fn rejects_dag() {
        let g = Digraph::from_edges(3, [(0, 2), (1, 2)]);
        assert_eq!(
            PpoIndex::build(&g, &[0; 3]).unwrap_err(),
            PpoError::MultipleParents(2)
        );
    }

    #[test]
    fn rejects_cycle() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(PpoIndex::build(&g, &[0; 3]).unwrap_err(), PpoError::Cyclic);
    }

    #[test]
    fn size_accounting_positive() {
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let (g, labels) = tree();
        let idx = PpoIndex::build(&g, &labels).unwrap();
        idx.integrity_check().unwrap();
        // swapped preorder ranks break the inverse map
        let mut bad = idx.clone();
        bad.pre.swap(0, 1);
        assert!(bad.integrity_check().is_err());
        // an inflated subtree size breaks the recurrence
        let mut bad = idx.clone();
        bad.size[0] += 1;
        assert!(bad.integrity_check().is_err());
        // a dropped label entry breaks node coverage
        let mut bad = idx.clone();
        let k = *bad.by_label.keys().next().unwrap();
        bad.by_label.get_mut(&k).unwrap().pop();
        assert!(bad.integrity_check().is_err());
        // a corrupted depth breaks parent consistency
        let mut bad = idx;
        if let Some(u) = (0..bad.node_count() as NodeId).find(|&u| bad.parent(u).is_some()) {
            bad.depth[u as usize] += 7;
            assert!(bad.integrity_check().is_err());
        }
    }
}
