//! Pre/postorder (PPO) XPath accelerator — Grust's index ([10, 11] in the
//! paper) plus FliX's extension to documents with links.
//!
//! A depth-first traversal assigns every element a preorder and postorder
//! rank; `x` is an ancestor of `y` iff `pre(x) < pre(y) && post(x) >
//! post(y)`. All XPath axes reduce to rank comparisons, and the distance
//! between an ancestor/descendant pair is the depth difference. Build time
//! is `O(|E|)` and space `O(|V|)` — unbeatable when it applies, but it
//! *only* applies to forests: that is the limitation FliX works around.
//!
//! * [`index::PpoIndex`] — the classic index over a forest.
//! * [`extended::ExtendedPpo`] — the paper's §4.3 extension: accepts any
//!   graph, indexes a spanning forest, and reports the removed edges so the
//!   caller (FliX's query evaluator) can chase them at run time.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Extended PPO: pre/postorder adapted to graphs with links.
pub mod extended;
/// The classic pre/postorder interval index over a forest.
pub mod index;

pub use extended::ExtendedPpo;
pub use index::{PpoError, PpoIndex};
