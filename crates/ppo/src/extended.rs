//! Extended PPO: the paper's §4.3 adaptation of the pre/postorder index to
//! graphs with links.
//!
//! Given an arbitrary element graph, [`ExtendedPpo::build`] computes a
//! spanning forest, indexes it with the classic [`PpoIndex`], and keeps the
//! removed edges as *runtime links*. Reachability through the forest is
//! answered from the index; anything passing through a removed edge is the
//! caller's job (FliX's path-expression evaluator chases those links with
//! its priority queue). When the input already is a forest the removed set
//! is empty and this is exactly the classic index.

use crate::index::PpoIndex;
use graphcore::{spanning_forest, Digraph, DigraphBuilder, Distance, NodeId};
use serde::{Deserialize, Serialize};

/// PPO over the spanning forest of an arbitrary graph, plus the edges the
/// forest could not represent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedPpo {
    index: PpoIndex,
    /// Edges removed to make the graph a forest, sorted by source.
    removed: Vec<(NodeId, NodeId)>,
    /// Sources of removed edges, deduplicated and sorted (the set `L_i` of
    /// elements with outgoing unindexed links, paper §4.2).
    link_sources: Vec<NodeId>,
}

impl ExtendedPpo {
    /// Builds the extended index over any directed graph.
    pub fn build(g: &Digraph, labels: &[u32]) -> Self {
        let check = spanning_forest(g);
        let mut kept = DigraphBuilder::with_nodes(g.node_count());
        for (u, v) in g.edges() {
            if check.parent[v as usize] == u {
                kept.add_edge(u, v);
            }
        }
        let forest = kept.build();
        let index =
            PpoIndex::build(&forest, labels).expect("spanning forest is a forest by construction");
        let mut removed = check.removed_edges;
        removed.sort_unstable();
        let mut link_sources: Vec<NodeId> = removed.iter().map(|&(u, _)| u).collect();
        link_sources.sort_unstable();
        link_sources.dedup();
        Self {
            index,
            removed,
            link_sources,
        }
    }

    /// The underlying forest index.
    pub fn forest_index(&self) -> &PpoIndex {
        &self.index
    }

    /// Edges that are *not* represented in the forest index.
    pub fn removed_edges(&self) -> &[(NodeId, NodeId)] {
        &self.removed
    }

    /// Targets of removed edges out of `u`.
    pub fn removed_targets(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.removed.partition_point(|&(s, _)| s < u);
        let end = self.removed.partition_point(|&(s, _)| s <= u);
        &self.removed[start..end]
    }

    /// True if `u` has at least one removed outgoing edge.
    pub fn has_removed_link(&self, u: NodeId) -> bool {
        self.link_sources.binary_search(&u).is_ok()
    }

    /// Descendants of `u` *within the forest* that carry removed outgoing
    /// links, as `(node, distance)` sorted by distance. This is
    /// `IND.findReachableLinks(e)` from the paper's Fig. 4, with
    /// `include_self` always true: a link out of `u` itself also counts.
    pub fn reachable_link_sources(&self, u: NodeId) -> Vec<(NodeId, Distance)> {
        let mut out: Vec<(NodeId, Distance)> = self
            .link_sources
            .iter()
            .filter_map(|&s| self.index.distance(u, s).map(|d| (s, d)))
            .collect();
        out.sort_unstable_by_key(|&(v, d)| (d, v));
        out
    }

    /// Forest-only descendant test (may answer `false` for pairs connected
    /// only through removed edges — the caller must chase those).
    pub fn is_descendant_or_self(&self, u: NodeId, v: NodeId) -> bool {
        self.index.is_descendant_or_self(u, v)
    }

    /// Forest-only distance.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Distance> {
        self.index.distance(u, v)
    }

    /// Forest-only descendants with a label, ascending by distance.
    pub fn descendants_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.index.descendants_by_label(u, label, include_self)
    }

    /// [`Self::descendants_by_label`] plus the index rows touched.
    pub fn descendants_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        self.index
            .descendants_with_label_counted(u, self.index.label_list(label), include_self)
    }

    /// Forest-only ancestors with a label, ascending by distance.
    pub fn ancestors_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.index.ancestors_by_label(u, label, include_self)
    }

    /// [`Self::ancestors_by_label`] plus the parent-chain nodes probed.
    pub fn ancestors_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        self.index
            .ancestors_by_label_counted(u, label, include_self)
    }

    /// Number of removed edges (quality signal for the strategy selector:
    /// high counts mean PPO is a bad fit for this partition).
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.index.size_bytes() + self.removed.len() * 8 + self.link_sources.len() * 4
    }
}

impl flixcheck::IntegrityCheck for ExtendedPpo {
    /// Audits the residual-edge accounting on top of the forest index:
    /// removed edges must be sorted, must not duplicate forest edges, and
    /// `link_sources` must be exactly the deduplicated removed sources.
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("ExtendedPpo");
        match self.index.integrity_check() {
            Ok(_) => audit.check("forest index audit", true, String::new),
            Err(e) => {
                for v in e.violations {
                    audit.violation("forest index audit", v.to_string());
                }
            }
        }
        let n = self.index.node_count() as NodeId;

        audit.check(
            "removed edges sorted by source",
            self.removed.windows(2).all(|w| w[0] <= w[1]),
            || "removed edge list out of order".to_string(),
        );

        let mut first = None;
        for &(u, v) in &self.removed {
            if u >= n || v >= n {
                first = Some(format!("removed edge ({u}, {v}) out of range"));
                break;
            }
            if self.index.parent(v) == Some(u) {
                first = Some(format!("removed edge ({u}, {v}) is also a forest edge"));
                break;
            }
        }
        audit.check(
            "removed edges are residual (absent from the forest)",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let mut expect: Vec<NodeId> = self.removed.iter().map(|&(u, _)| u).collect();
        expect.sort_unstable();
        expect.dedup();
        audit.check(
            "link_sources = sorted deduplicated removed sources",
            self.link_sources == expect,
            || {
                format!(
                    "link_sources has {} entries, removed sources dedup to {}",
                    self.link_sources.len(),
                    expect.len()
                )
            },
        );

        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree 0->{1,2}, 1->3 plus a cross link 3 -> 2 and an up link 2 -> 1.
    fn linked_graph() -> Digraph {
        Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (3, 2), (2, 1)])
    }

    #[test]
    fn forest_input_removes_nothing() {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3)]);
        let x = ExtendedPpo::build(&g, &[0; 4]);
        assert_eq!(x.removed_count(), 0);
        assert!(x.is_descendant_or_self(0, 3));
        assert!(x.reachable_link_sources(0).is_empty());
    }

    #[test]
    fn removed_edges_reported() {
        let g = linked_graph();
        let x = ExtendedPpo::build(&g, &[0; 4]);
        // 2 and 3 both have in-degree 2 in the full graph... node 1: parents
        // {0, 2}; node 2: parents {0, 3}. Exactly two edges must go.
        assert_eq!(x.removed_count(), 2);
        for &(u, v) in x.removed_edges() {
            assert!(g.has_edge(u, v));
            // removed edges are not answered by the forest test
            assert_ne!(x.index.parent(v), Some(u));
        }
    }

    #[test]
    fn reachable_link_sources_sorted_by_distance() {
        let g = linked_graph();
        let x = ExtendedPpo::build(&g, &[0; 4]);
        let ls = x.reachable_link_sources(0);
        // both removed-edge sources are under the root
        assert_eq!(ls.len(), 2);
        assert!(ls.windows(2).all(|w| w[0].1 <= w[1].1));
        for &(s, _) in &ls {
            assert!(x.has_removed_link(s));
        }
    }

    #[test]
    fn removed_targets_lookup() {
        let g = linked_graph();
        let x = ExtendedPpo::build(&g, &[0; 4]);
        for &(u, v) in x.removed_edges() {
            assert!(x.removed_targets(u).contains(&(u, v)));
        }
        assert!(x.removed_targets(0).is_empty());
    }

    #[test]
    fn forest_distances_survive() {
        let g = linked_graph();
        let x = ExtendedPpo::build(&g, &[0; 4]);
        assert_eq!(x.distance(0, 3), Some(2));
        assert_eq!(x.distance(1, 3), Some(1));
    }

    #[test]
    fn label_queries_respect_forest() {
        let g = linked_graph();
        let x = ExtendedPpo::build(&g, &[7, 8, 8, 8]);
        let r = x.descendants_by_label(0, 8, false);
        // all of 1, 2, 3 are forest descendants of 0
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].1, 1);
    }

    #[test]
    fn cycle_only_graph() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let x = ExtendedPpo::build(&g, &[0; 3]);
        assert_eq!(x.removed_count(), 1);
        // the spanning chain still answers within-forest queries
        assert!(x.is_descendant_or_self(0, 2));
        assert!(!x.is_descendant_or_self(2, 0));
        assert!(x.has_removed_link(2));
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let g = linked_graph();
        let ext = ExtendedPpo::build(&g, &[0; 4]);
        ext.integrity_check().unwrap();
        // an out-of-order removed list breaks the sort invariant
        let mut bad = ext.clone();
        if bad.removed.len() >= 2 {
            bad.removed.swap(0, 1);
            assert!(bad.integrity_check().is_err());
        }
        // a forest edge smuggled into the removed list breaks residency
        let mut bad = ext.clone();
        if let Some(v) = (0..g.node_count() as NodeId).find(|&v| bad.index.parent(v).is_some()) {
            let u = bad.index.parent(v).unwrap();
            bad.removed.push((u, v));
            bad.removed.sort_unstable();
            assert!(bad.integrity_check().is_err());
        }
        // a phantom link source breaks the dedup invariant
        let mut bad = ext;
        bad.link_sources.push(0);
        bad.link_sources.sort_unstable();
        assert!(bad.integrity_check().is_err());
    }
}
