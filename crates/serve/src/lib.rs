//! `flixserve` — a concurrent query-serving subsystem for FliX.
//!
//! The paper pitches FliX for large, interlinked web-scale collections
//! where many clients query concurrently; the evaluator itself answers one
//! `a//b` at a time. This crate turns an immutable [`flix::Flix`] (or a
//! [`flix::CachedFlix`]) into a multi-client service:
//!
//! * **Worker pool with bounded queues** — [`FlixServer`] runs N worker
//!   threads, each fed by a bounded channel. Nothing on the serving path
//!   buffers without limit.
//! * **Admission control and load shedding** — once the in-flight count or
//!   every worker queue is at capacity, new requests are rejected with a
//!   typed [`ServeError::Overloaded`] instead of queuing into unbounded
//!   latency.
//! * **Per-request deadlines** — a [`flixobs::Deadline`] is threaded into
//!   the evaluator's priority-queue loop; a query that exceeds its budget
//!   returns the partial, distance-ordered prefix with a `timed_out`
//!   marker.
//! * **Single-flight collapsing** — identical in-flight queries run the
//!   evaluator once and fan the shared result out, composing with the
//!   result cache.
//! * **Graceful drain** — [`FlixServer::shutdown`] finishes every admitted
//!   request, rejects new ones with [`ServeError::ShuttingDown`], and
//!   leaves the metrics and the slow-query log intact for scraping.
//! * **Online rebuild and hot swap** — [`FlixServer::swap_backend`]
//!   replaces the engine under live traffic (in-flight queries finish on
//!   the old generation, new admissions see the new one), and
//!   [`Rebuilder`] closes the paper's self-tuning loop by rebuilding the
//!   load monitor's recommended configuration in the background and
//!   swapping it in ([`rebuild`]).
//!
//! ```
//! use flix::{Flix, FlixConfig, QueryOptions};
//! use flixserve::{FlixServer, Request, ServeConfig};
//! use std::sync::Arc;
//!
//! let mut coll = xmlgraph::Collection::new();
//! let t = coll.tags.intern("t");
//! let mut doc = xmlgraph::Document::new("a.xml");
//! let root = doc.add_element(t, None);
//! doc.add_element(t, Some(root));
//! coll.add_document(doc).unwrap();
//! let flix = Arc::new(Flix::build(Arc::new(coll.seal()), FlixConfig::Naive));
//!
//! let server = FlixServer::start(flix, ServeConfig::default());
//! let response = server
//!     .query(Request::descendants(0, t, QueryOptions::default()))
//!     .unwrap();
//! assert_eq!(response.results.len(), 1);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Closed- and open-loop load generators for driving a server.
pub mod loadgen;
/// Online rebuild: background self-tuning with hot backend swaps.
pub mod rebuild;
/// The worker-pool server: admission, deadlines, single-flight, drain.
pub mod server;

pub use loadgen::{closed_loop, closed_loop_windowed, open_loop, ClosedLoopReport, OpenLoopReport};
pub use rebuild::{RebuildConfig, RebuildOutcome, Rebuilder};
pub use server::{
    AxisKind, Backend, FlixServer, Request, Response, ServeConfig, ServeError, ServeStats, Ticket,
};
