//! Online rebuild: the paper's self-tuning loop, closed under live
//! traffic.
//!
//! The FliX paper (§7) keeps a load monitor per collection and proposes
//! re-organising the meta-document layout when the observed query load
//! stops fitting the configuration that built it. The evaluator side of
//! that loop already exists ([`flix::LoadMonitor::recommend_with_report`]);
//! this module closes it: [`FlixServer::maybe_rebuild`] diffs the
//! server's monitor against the baseline captured at the last swap, asks
//! the monitor for a verdict on *that window* of traffic, builds the
//! recommended configuration on the configured thread budget, and
//! hot-swaps it in with [`FlixServer::swap_backend`] — in-flight queries
//! finish on the old generation, new admissions see the new one, and no
//! request is dropped either way.
//!
//! [`Rebuilder`] runs that tick on a background thread so a deployment
//! gets the loop without scheduling it: spawn it next to the server,
//! drop it (or call [`Rebuilder::stop`]) to stop. Every decision is
//! observable — `flix_rebuild_*` counters, the `flixserve_generation`
//! gauge, and (on a traced server) `rebuild_start` / `rebuild_finish` /
//! `swap` journal events.

use crate::server::{Backend, FlixServer};
use flix::{BuildOptions, Flix, FlixConfig, Recommendation, ShardedFlix};
use flixobs::{EventKind, Stopwatch};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

/// Policy knobs for the online rebuild loop.
#[derive(Debug, Clone)]
pub struct RebuildConfig {
    /// Minimum queries in the observation window before the monitor may
    /// judge the configuration (guards against deciding on noise).
    pub min_queries: u64,
    /// How often the background [`Rebuilder`] ticks
    /// [`FlixServer::maybe_rebuild`].
    pub interval: Duration,
    /// Thread budget for the rebuild itself ([`BuildOptions::build_threads`]
    /// semantics: `0` = one per core). The built framework is
    /// byte-identical at any budget — threads only change wall clock.
    pub build_threads: usize,
}

impl Default for RebuildConfig {
    fn default() -> Self {
        Self {
            min_queries: 64,
            interval: Duration::from_secs(1),
            build_threads: 0,
        }
    }
}

/// What one rebuild tick decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildOutcome {
    /// Not enough traffic since the last swap to judge the configuration.
    Quiet {
        /// Queries observed in the window (below
        /// [`RebuildConfig::min_queries`]).
        queries: u64,
    },
    /// The monitor judged the window and kept the current configuration.
    Keep,
    /// A rebuild ran and hot-swapped in.
    Rebuilt {
        /// The server's backend generation after the swap.
        generation: u64,
        /// The configuration the rebuild used.
        config: FlixConfig,
        /// The monitor's justification, grounded in the previous build's
        /// measured cost.
        reason: String,
        /// Wall-clock build time of the replacement framework.
        build_micros: u64,
    },
}

/// Stable on-journal code for a configuration (the `rebuild_start`
/// event's `config` argument): the variant's position in the
/// [`FlixConfig`] declaration.
fn config_code(config: FlixConfig) -> u64 {
    match config {
        FlixConfig::Naive => 0,
        FlixConfig::MaximalPpo => 1,
        FlixConfig::UnconnectedHopi { .. } => 2,
        FlixConfig::Hybrid { .. } => 3,
        FlixConfig::Monolithic(_) => 4,
    }
}

/// The framework a backend evaluates on (the cached and sharded wrappers
/// both expose their inner [`Flix`]).
fn framework_of(backend: &Backend) -> Arc<Flix> {
    match backend {
        Backend::Plain(flix) => Arc::clone(flix),
        Backend::Cached(cached) => cached.framework(),
        Backend::Sharded(sharded) => Arc::clone(sharded.parent()),
    }
}

impl FlixServer {
    /// One tick of the self-tuning loop: judge the traffic observed since
    /// the last swap, and rebuild + hot-swap if the monitor recommends a
    /// different configuration.
    ///
    /// The replacement backend keeps the current one's shape: a plain
    /// framework stays plain; a cached backend keeps its cache *object*
    /// (hit/miss history included) and re-attaches the rebuilt framework,
    /// so every stale entry is invalidated by the cache's generation
    /// check rather than by flushing; a sharded backend is re-sharded to
    /// the same shard count (and per-shard cache capacity). The build
    /// runs entirely off the serving path — queries are answered by the
    /// old generation until the one-pointer swap.
    ///
    /// Safe to call from any thread, but not designed for concurrent
    /// callers: two simultaneous ticks would race the same baseline and
    /// could build twice. [`Rebuilder`] serialises ticks by owning them.
    pub fn maybe_rebuild(&self, config: &RebuildConfig) -> RebuildOutcome {
        let snapshot = self.load();
        let window = snapshot.since(&self.rebuild_baseline().lock());
        if window.queries() < config.min_queries {
            return RebuildOutcome::Quiet {
                queries: window.queries(),
            };
        }
        let backend = self.backend();
        let framework = framework_of(&backend);
        let verdict = window.recommend_with_report(
            framework.config(),
            config.min_queries,
            framework.build_report(),
        );
        let Recommendation::Rebuild { suggestion, reason } = verdict else {
            self.serve_metrics().rebuilds_kept.inc();
            return RebuildOutcome::Keep;
        };
        self.serve_metrics().rebuilds_started.inc();
        self.journal_control(EventKind::RebuildStart {
            config: config_code(suggestion),
        });
        let build = Stopwatch::start();
        let rebuilt = Arc::new(Flix::build_with(
            framework.collection_arc(),
            suggestion,
            &BuildOptions {
                build_threads: config.build_threads,
                ..BuildOptions::default()
            },
        ));
        let build_micros = build.elapsed_micros();
        self.journal_control(EventKind::RebuildFinish {
            micros: build_micros,
        });
        let generation = match &backend {
            Backend::Plain(_) => self.swap_backend(rebuilt),
            Backend::Cached(cached) => {
                cached.attach(rebuilt);
                self.swap_backend(Backend::Cached(Arc::clone(cached)))
            }
            Backend::Sharded(sharded) => {
                let mut next = ShardedFlix::new(rebuilt, sharded.shard_count());
                if let Some(capacity) = sharded.cache_capacity() {
                    next = next.with_caches(capacity);
                }
                self.swap_backend(Arc::new(next))
            }
        };
        self.serve_metrics().rebuilds_completed.inc();
        // New baseline: the monitor judged everything up to `snapshot`;
        // the next window starts from here (queries answered on the old
        // generation between snapshot and swap bleed in — harmless, the
        // monitor's thresholds are averages).
        *self.rebuild_baseline().lock() = snapshot;
        RebuildOutcome::Rebuilt {
            generation,
            config: suggestion,
            reason,
            build_micros,
        }
    }
}

/// A background thread running [`FlixServer::maybe_rebuild`] every
/// [`RebuildConfig::interval`]. Stops on [`Self::stop`], on drop, or when
/// the server starts draining.
pub struct Rebuilder {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Rebuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rebuilder")
            .field("stopped", &self.stop.load(SeqCst))
            .finish_non_exhaustive()
    }
}

impl Rebuilder {
    /// Spawns the rebuild thread next to `server`.
    pub fn spawn(server: Arc<FlixServer>, config: RebuildConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            loop {
                std::thread::park_timeout(config.interval);
                if flag.load(SeqCst) || server.is_draining() {
                    break;
                }
                let outcome = server.maybe_rebuild(&config);
                drop(outcome); // every outcome is observable via metrics and journal
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and waits for it (any in-progress rebuild
    /// finishes and swaps first).
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            // flixcheck: allow(swallowed-result): a panicked rebuild thread has nothing left to stop
            let _ = handle.join();
        }
    }
}

impl Drop for Rebuilder {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Request, ServeConfig};
    use flix::{CachedFlix, QueryOptions};
    use std::sync::Arc;
    use xmlgraph::TagId;
    use xmlgraph::{Collection, Document, LinkTarget};

    /// A chain of single-element documents linked head-to-tail: every
    /// deep query hops one meta document per link under `Naive`, so the
    /// monitor's avg-lookups trigger fires and recommends growing the
    /// meta documents.
    fn chain(docs: usize) -> (Arc<Flix>, TagId) {
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        for d in 0..docs {
            let mut doc = Document::new(format!("d{d}.xml"));
            let root = doc.add_element(t, None);
            if d + 1 < docs {
                doc.add_link(
                    root,
                    LinkTarget {
                        document: Some(format!("d{}.xml", d + 1)),
                        fragment: None,
                    },
                );
            }
            c.add_document(doc).unwrap();
        }
        let cg = Arc::new(c.seal());
        let tag = cg.collection.tags.get("t").unwrap();
        (Arc::new(Flix::build(cg, FlixConfig::Naive)), tag)
    }

    fn drive(server: &FlixServer, t: TagId, queries: usize) {
        for _ in 0..queries {
            server
                .query(Request::descendants(0, t, QueryOptions::default()))
                .unwrap();
        }
    }

    #[test]
    fn quiet_window_defers_judgement() {
        let (flix, t) = chain(4);
        let server = FlixServer::start(flix, ServeConfig::default());
        drive(&server, t, 3);
        let outcome = server.maybe_rebuild(&RebuildConfig {
            min_queries: 10,
            ..RebuildConfig::default()
        });
        assert_eq!(outcome, RebuildOutcome::Quiet { queries: 3 });
        assert_eq!(server.generation(), 1);
        server.shutdown();
    }

    #[test]
    fn link_heavy_load_rebuilds_and_swaps() {
        let (flix, t) = chain(24);
        let config = ServeConfig {
            single_flight: false,
            ..ServeConfig::default()
        };
        let server = FlixServer::start(Arc::clone(&flix), config);
        let oracle = flix.find_descendants(0, t, &QueryOptions::default());
        drive(&server, t, 16);
        let policy = RebuildConfig {
            min_queries: 8,
            build_threads: 1,
            ..RebuildConfig::default()
        };
        let outcome = server.maybe_rebuild(&policy);
        let RebuildOutcome::Rebuilt {
            generation, config, ..
        } = outcome
        else {
            panic!("24 chained lookups per query must trigger a rebuild, got {outcome:?}");
        };
        assert_eq!(generation, 2);
        assert_ne!(config, FlixConfig::Naive, "the suggestion grew the layout");
        // The swapped-in framework answers byte-identically.
        let after = server
            .query(Request::descendants(0, t, QueryOptions::default()))
            .unwrap();
        assert_eq!(*after.results, oracle);
        // The window was consumed: an immediate re-tick is quiet.
        assert!(matches!(
            server.maybe_rebuild(&policy),
            RebuildOutcome::Quiet { .. }
        ));
        server.shutdown();
    }

    #[test]
    fn cached_backend_keeps_its_cache_object_across_rebuild() {
        let (flix, t) = chain(24);
        let cached = Arc::new(CachedFlix::new(Arc::clone(&flix), 8));
        let server = FlixServer::start(
            Arc::clone(&cached),
            ServeConfig {
                single_flight: false,
                ..ServeConfig::default()
            },
        );
        // Cache hits do no evaluator work, so only ancestors queries feed
        // the monitor on a cached backend — drive those.
        let last = flix.collection().node_count() as u32 - 1;
        for _ in 0..16 {
            server
                .query(Request::ancestors(last, t, QueryOptions::default()))
                .unwrap();
        }
        let before_generation = cached.generation();
        let outcome = server.maybe_rebuild(&RebuildConfig {
            min_queries: 8,
            build_threads: 1,
            ..RebuildConfig::default()
        });
        assert!(
            matches!(outcome, RebuildOutcome::Rebuilt { .. }),
            "deep ancestor chains must trigger a rebuild, got {outcome:?}"
        );
        // Same cache object, bumped generation: stale entries are
        // invalidated lazily, history survives.
        let Backend::Cached(after) = server.backend() else {
            panic!("cached backend must stay cached across a rebuild");
        };
        assert!(Arc::ptr_eq(&after, &cached));
        assert_eq!(cached.generation(), before_generation + 1);
        server.shutdown();
    }

    #[test]
    fn background_rebuilder_swaps_without_dropping_answers() {
        let (flix, t) = chain(24);
        let server = Arc::new(FlixServer::start(
            Arc::clone(&flix),
            ServeConfig {
                single_flight: false,
                ..ServeConfig::default()
            },
        ));
        let oracle = flix.find_descendants(0, t, &QueryOptions::default());
        let rebuilder = Rebuilder::spawn(
            Arc::clone(&server),
            RebuildConfig {
                min_queries: 8,
                interval: Duration::from_millis(5),
                build_threads: 1,
            },
        );
        // Closed-loop traffic until the background thread swaps (bounded
        // so a broken rebuilder fails the test instead of hanging it).
        let mut answered = 0u64;
        for _ in 0..20_000 {
            let response = server
                .query(Request::descendants(0, t, QueryOptions::default()))
                .unwrap();
            assert_eq!(*response.results, oracle, "answers match across the swap");
            answered += 1;
            if server.generation() > 1 {
                break;
            }
        }
        assert!(server.generation() > 1, "rebuilder never swapped");
        // Traffic *after* the swap is served by the new generation.
        let after = server
            .query(Request::descendants(0, t, QueryOptions::default()))
            .unwrap();
        assert_eq!(*after.results, oracle);
        assert!(answered > 0);
        rebuilder.stop();
        server.shutdown();
    }
}
