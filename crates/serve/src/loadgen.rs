//! Load generators for driving a [`FlixServer`].
//!
//! Two standard shapes:
//!
//! * [`closed_loop`] — K client threads each issue a request, wait for the
//!   answer, and immediately issue the next. Offered load adapts to
//!   service capacity, so this measures *throughput* (scaling with worker
//!   count) without overload.
//! * [`open_loop`] — a dispatcher submits at a fixed target rate
//!   regardless of completions (fire-and-forget tickets), the shape that
//!   actually overloads a service. Under 2× capacity the point is that the
//!   admission controller sheds instead of letting admitted latency grow
//!   without bound; latency is read from the server's own histogram after
//!   the tail drains.

use crate::server::{FlixServer, Request, ServeError};
use flixobs::{Counter, Stopwatch};

/// Outcome of a [`closed_loop`] run.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopReport {
    /// Client threads used.
    pub clients: usize,
    /// Requests answered (including deadline-cut answers).
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Answers that carried the `timed_out` marker.
    pub timed_out: u64,
    /// Wall-clock time for the whole run.
    pub wall_micros: u64,
}

impl ClosedLoopReport {
    /// Completed requests per second over the run.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.completed as f64 * 1_000_000.0 / self.wall_micros as f64
        }
    }
}

/// Drives `requests` through `server` from `clients` synchronous client
/// threads (client `c` takes requests `c, c+clients, …`, so the mix is
/// stable across client counts).
pub fn closed_loop(server: &FlixServer, requests: &[Request], clients: usize) -> ClosedLoopReport {
    let clients = clients.max(1);
    let completed = Counter::new();
    let shed = Counter::new();
    let timed_out = Counter::new();
    let sw = Stopwatch::start();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let completed = &completed;
            let shed = &shed;
            let timed_out = &timed_out;
            scope.spawn(move || {
                for request in requests.iter().skip(c).step_by(clients) {
                    match server.query(*request) {
                        Ok(response) => {
                            completed.inc();
                            if response.timed_out {
                                timed_out.inc();
                            }
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            shed.inc();
                        }
                        Err(_) => {
                            shed.inc();
                        }
                    }
                }
            });
        }
    });
    ClosedLoopReport {
        clients,
        completed: completed.get(),
        shed: shed.get(),
        timed_out: timed_out.get(),
        wall_micros: sw.elapsed_micros(),
    }
}

/// [`closed_loop`] with `window` requests outstanding per client instead
/// of one: each client keeps a pipeline of up to `window` tickets open,
/// waiting on the oldest before issuing the next. Still a closed system —
/// offered load adapts to completions, total concurrency is bounded by
/// `clients * window` — but the per-request scheduler round-trips of the
/// one-at-a-time loop amortize over the pipeline, so the measurement
/// tracks service capacity instead of context-switch overhead. `window`
/// of 1 is exactly [`closed_loop`].
pub fn closed_loop_windowed(
    server: &FlixServer,
    requests: &[Request],
    clients: usize,
    window: usize,
) -> ClosedLoopReport {
    let clients = clients.max(1);
    let window = window.max(1);
    let completed = Counter::new();
    let shed = Counter::new();
    let timed_out = Counter::new();
    let sw = Stopwatch::start();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let completed = &completed;
            let shed = &shed;
            let timed_out = &timed_out;
            scope.spawn(move || {
                let mut pipeline = std::collections::VecDeque::with_capacity(window);
                let settle = |ticket: crate::server::Ticket| match ticket.wait() {
                    Ok(response) => {
                        completed.inc();
                        if response.timed_out {
                            timed_out.inc();
                        }
                    }
                    Err(_) => shed.inc(),
                };
                for request in requests.iter().skip(c).step_by(clients) {
                    while pipeline.len() >= window {
                        if let Some(ticket) = pipeline.pop_front() {
                            settle(ticket);
                        }
                    }
                    match server.submit(*request) {
                        Ok(ticket) => pipeline.push_back(ticket),
                        Err(_) => shed.inc(),
                    }
                }
                for ticket in pipeline {
                    settle(ticket);
                }
            });
        }
    });
    ClosedLoopReport {
        clients,
        completed: completed.get(),
        shed: shed.get(),
        timed_out: timed_out.get(),
        wall_micros: sw.elapsed_micros(),
    }
}

/// Outcome of an [`open_loop`] run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopReport {
    /// Requests offered to the server.
    pub offered: u64,
    /// Requests admitted past the controller.
    pub admitted: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Wall-clock time for the dispatch phase (excludes the final drain).
    pub wall_micros: u64,
}

impl OpenLoopReport {
    /// Fraction of offered requests that were shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Offers `requests` to `server` at `target_qps`, fire-and-forget: tickets
/// are dropped, completions are read from the server's metrics. Blocks
/// until the admitted tail has drained so the caller can read a settled
/// latency histogram.
pub fn open_loop(server: &FlixServer, requests: &[Request], target_qps: f64) -> OpenLoopReport {
    let interval_micros = if target_qps > 0.0 {
        1_000_000.0 / target_qps
    } else {
        0.0
    };
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let sw = Stopwatch::start();
    for (i, request) in requests.iter().enumerate() {
        let due = (i as f64 * interval_micros) as u64;
        loop {
            let now = sw.elapsed_micros();
            if now >= due {
                break;
            }
            // Sleep coarsely, then let the loop re-check; sub-100µs waits
            // just spin on the clock.
            let remaining = due - now;
            if remaining > 200 {
                std::thread::sleep(std::time::Duration::from_micros(remaining - 100));
            }
        }
        match server.submit(*request) {
            Ok(ticket) => {
                admitted += 1;
                drop(ticket);
            }
            Err(_) => shed += 1,
        }
    }
    let wall_micros = sw.elapsed_micros();
    server.wait_idle();
    OpenLoopReport {
        offered: requests.len() as u64,
        admitted,
        shed,
        wall_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use flix::{Flix, FlixConfig, QueryOptions};
    use std::sync::Arc;
    use xmlgraph::{Collection, Document};

    fn tiny_server(workers: usize) -> (FlixServer, xmlgraph::TagId) {
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        let mut d = Document::new("a.xml");
        let r = d.add_element(t, None);
        for _ in 0..8 {
            d.add_element(t, Some(r));
        }
        c.add_document(d).unwrap();
        let cg = Arc::new(c.seal());
        let tag = cg.collection.tags.get("t").unwrap();
        let flix = Arc::new(Flix::build(cg, FlixConfig::Naive));
        let config = ServeConfig {
            workers,
            // Disable collapsing so every generated request is evaluated:
            // the loop reports then count real completions.
            single_flight: false,
            ..ServeConfig::default()
        };
        (FlixServer::start(flix, config), tag)
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let (server, t) = tiny_server(2);
        let requests: Vec<Request> = (0..40)
            .map(|i| Request::descendants(i % 9, t, QueryOptions::default()))
            .collect();
        let report = closed_loop(&server, &requests, 4);
        assert_eq!(report.completed, 40);
        assert_eq!(report.shed, 0, "closed loop never outruns its clients");
        assert!(report.throughput_qps() > 0.0);
        assert_eq!(server.stats().completed, 40);
        server.shutdown();
    }

    #[test]
    fn open_loop_accounts_every_offer() {
        let (server, t) = tiny_server(2);
        let requests: Vec<Request> = (0..50)
            .map(|i| Request::descendants(i % 9, t, QueryOptions::default()))
            .collect();
        let report = open_loop(&server, &requests, 10_000.0);
        assert_eq!(report.offered, 50);
        assert_eq!(report.admitted + report.shed, 50);
        // After wait_idle, the histogram has every admitted completion.
        assert_eq!(server.latency().count(), report.admitted);
        server.shutdown();
    }
}
