//! The worker-pool query server.
//!
//! A [`FlixServer`] owns N worker threads, each fed by its own *bounded*
//! channel. [`FlixServer::submit`] is the admission controller: it rejects
//! during drain, collapses duplicates of an in-flight query, enforces the
//! in-flight ceiling, and round-robins the request over the worker queues
//! with non-blocking sends — if every eligible queue is full the request
//! is shed with [`ServeError::Overloaded`] rather than parked. Shedding
//! keeps the latency of *admitted* requests bounded by queue capacity
//! instead of growing with offered load, which is the whole point of
//! bounding the queues (see DESIGN.md §8).
//!
//! With a [`Backend::Sharded`] backend the workers *own shards*: they are
//! partitioned into one group per shard (DESIGN.md §10), a request is
//! routed to the group owning its start element's shard, and each group
//! runs its own queue rotation, depth accounting, and
//! `flixserve_shard_*` metrics. A group's queues filling up sheds only
//! that shard's traffic — shards are independently admitted, exactly like
//! their indexes are independently evaluated.

use flix::{CachedFlix, Flix, PeeStats, QueryOptions, QueryResult, ShardedFlix, SharedLoadMonitor};
use flixobs::{
    Counter, Deadline, EventKind, FlightRecorder, Gauge, Histogram, JournalHandle, JournalSnapshot,
    MetricId, MetricsRegistry, QueryTrace, RequestId, SlowQuery, SlowQueryLog, Stopwatch,
    SHARD_NONE,
};
use graphcore::{Distance, NodeId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use xmlgraph::TagId;

/// The submit path records its journal events on lane 0; worker `w`
/// records on lane `w + 1` (see [`FlightRecorder::for_workers`]).
const SUBMIT_LANE: usize = 0;

/// How many completions the adaptive admission controller waits between
/// looks at the latency histogram. Small enough to react within a burst,
/// large enough that the p99 estimate has fresh samples behind it.
const ADAPT_WINDOW: u64 = 32;

/// Server sizing and policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads answering queries.
    pub workers: usize,
    /// Capacity of each worker's request queue. Bounded by construction:
    /// the flixcheck `unbounded-channel` rule keeps it that way.
    pub queue_capacity: usize,
    /// Ceiling on admitted-but-unfinished requests across all workers.
    /// `0` means automatic: `workers * (queue_capacity + 1)` — every queue
    /// full plus one request executing per worker.
    pub max_in_flight: usize,
    /// Deadline budget applied to requests that do not carry their own.
    /// `None` serves without a time budget. The clock starts at admission,
    /// so queue wait counts against the budget.
    pub default_deadline_micros: Option<u64>,
    /// Collapse identical in-flight queries onto one evaluation.
    pub single_flight: bool,
    /// Worst-trace capacity of the server's slow-query log.
    pub slow_log_capacity: usize,
    /// End-to-end p99 latency target for the adaptive admission
    /// controller. `None` (the default) disables adaptation: the in-flight
    /// ceiling stays at [`Self::effective_max_in_flight`]. `Some(target)`
    /// runs AIMD over the live ceiling — every [`ADAPT_WINDOW`]
    /// completions a worker compares the latency histogram's p99 against
    /// the target and halves the ceiling (floor: one per worker) when
    /// over, or raises it by one (cap: the configured ceiling) when at or
    /// under. Every change lands in the journal as a
    /// [`EventKind::LimitChange`] and in [`ServeStats::max_in_flight`].
    pub latency_target_p99_micros: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            max_in_flight: 0,
            default_deadline_micros: None,
            single_flight: true,
            slow_log_capacity: 8,
            latency_target_p99_micros: None,
        }
    }
}

impl ServeConfig {
    fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// The in-flight ceiling the admission controller actually enforces:
    /// `max_in_flight`, or — when that is `0` (automatic) — every queue
    /// full plus one request executing per worker. Every
    /// [`ServeError::Overloaded`] reports an `in_flight` at or below this
    /// value (tested).
    pub fn effective_max_in_flight(&self) -> usize {
        if self.max_in_flight > 0 {
            self.max_in_flight
        } else {
            self.effective_workers() * (self.queue_capacity.max(1) + 1)
        }
    }
}

/// Which axis a request evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// `start // target` (descendants).
    Descendants,
    /// Elements with tag `target` from which `start` is reachable.
    Ancestors,
}

/// One query request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Start element (global id).
    pub start: NodeId,
    /// Target tag.
    pub target: TagId,
    /// Evaluation direction.
    pub axis: AxisKind,
    /// Evaluation options (deadline included, if the client sets one).
    pub opts: QueryOptions,
}

impl Request {
    /// A descendants query `start // target`.
    pub fn descendants(start: NodeId, target: TagId, opts: QueryOptions) -> Self {
        Self {
            start,
            target,
            axis: AxisKind::Descendants,
            opts,
        }
    }

    /// An ancestors query.
    pub fn ancestors(start: NodeId, target: TagId, opts: QueryOptions) -> Self {
        Self {
            start,
            target,
            axis: AxisKind::Ancestors,
            opts,
        }
    }
}

/// One query answer, as delivered to the submitting client.
#[derive(Debug, Clone)]
pub struct Response {
    /// The results — complete, or a distance-ordered prefix on timeout.
    /// Shared (`Arc`) so single-flight fan-out and cache hits cost no copy.
    pub results: Arc<Vec<QueryResult>>,
    /// True when the deadline cut the evaluation short.
    pub timed_out: bool,
    /// True when this response was fanned out from another request's
    /// evaluation by single-flight collapsing.
    pub collapsed: bool,
    /// Time the request sat queued before a worker picked it up.
    pub queue_micros: u64,
    /// End-to-end time from admission to completion.
    pub total_micros: u64,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request: the in-flight ceiling was
    /// reached or every worker queue was full.
    Overloaded {
        /// Requests queued across all workers at rejection time.
        queued: usize,
        /// Admitted-but-unfinished requests at rejection time.
        in_flight: usize,
    },
    /// The server is draining: admitted work finishes, new work is refused.
    ShuttingDown,
    /// The serving side went away before answering (shutdown raced the
    /// request, or a worker panicked).
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { queued, in_flight } => {
                write!(f, "overloaded: {queued} queued, {in_flight} in flight")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::Disconnected => write!(f, "server disconnected before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The query engine behind a server: a plain framework, a cached one, or
/// a sharded one.
///
/// Cloning is an `Arc` clone — the handle is copied, the engine is
/// shared. The server leans on this for hot swaps: each worker clones
/// the live backend out of a brief read lock per job, so a
/// [`FlixServer::swap_backend`] replaces the engine for *new* admissions
/// while every in-flight evaluation finishes on the backend it started
/// on.
#[derive(Clone)]
pub enum Backend {
    /// Evaluate every query on the framework.
    Plain(Arc<Flix>),
    /// Serve descendants queries through the result cache (ancestors
    /// queries go to the underlying framework; the cache only keys the
    /// descendants axis).
    Cached(Arc<CachedFlix>),
    /// Route every query to the shard owning its start element; workers
    /// are partitioned into per-shard groups so shards neither share
    /// queues nor admission (ancestors queries route the same way — the
    /// sharded ancestors path is escape-aware too).
    Sharded(Arc<ShardedFlix>),
}

impl From<Arc<Flix>> for Backend {
    fn from(flix: Arc<Flix>) -> Self {
        Self::Plain(flix)
    }
}

impl From<Arc<CachedFlix>> for Backend {
    fn from(cached: Arc<CachedFlix>) -> Self {
        Self::Cached(cached)
    }
}

impl From<Arc<ShardedFlix>> for Backend {
    fn from(sharded: Arc<ShardedFlix>) -> Self {
        Self::Sharded(sharded)
    }
}

/// Single-flight identity of a query: everything that determines its
/// answer, plus the deadline *budget* (not the deadline instance — two
/// requests with the same budget admitted moments apart may share an
/// evaluation; the collapsed one inherits the leader's cut, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SfKey {
    start: NodeId,
    target: TagId,
    axis: AxisKind,
    max_distance: Option<Distance>,
    max_results: Option<usize>,
    include_start: bool,
    exact_order: bool,
    deadline_budget: Option<u64>,
}

impl SfKey {
    fn of(req: &Request) -> Self {
        Self {
            start: req.start,
            target: req.target,
            axis: req.axis,
            max_distance: req.opts.max_distance,
            max_results: req.opts.max_results,
            include_start: req.opts.include_start,
            exact_order: req.opts.exact_order,
            deadline_budget: req.opts.deadline.map(|d| d.budget_micros()),
        }
    }
}

type Reply = crossbeam::channel::Sender<Result<Response, ServeError>>;

/// One in-flight single-flight registration: the leader's identity (so
/// followers can journal who they attached to) and the reply channels of
/// the followers waiting on its result.
struct SfEntry {
    leader: RequestId,
    waiters: Vec<Reply>,
}

struct Job {
    request: Request,
    id: RequestId,
    admitted: Stopwatch,
    reply: Reply,
    sf_key: Option<SfKey>,
}

/// Component-owned metric cells for the serving path. End-to-end latency
/// (`flixserve_latency_micros`) is distinct from the evaluator-only
/// `flix_query_latency_micros`: it includes queue wait and fan-out.
pub(crate) struct ServeMetrics {
    latency: Histogram,
    queue_wait: Histogram,
    queue_depth: Gauge,
    in_flight: Gauge,
    submitted: Counter,
    completed: Counter,
    shed: Counter,
    timeouts: Counter,
    collapsed: Counter,
    admission_limit: Gauge,
    /// Mirrors [`Shared::generation`] (`flixserve_generation`).
    generation: Gauge,
    /// Rebuild decisions taken by the online rebuilder: recommendations
    /// acted on, rebuilds that swapped in, and verdicts that kept the
    /// current configuration (`flix_rebuild_*`).
    pub(crate) rebuilds_started: Counter,
    pub(crate) rebuilds_completed: Counter,
    pub(crate) rebuilds_kept: Counter,
}

impl ServeMetrics {
    fn new() -> Self {
        Self {
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            queue_depth: Gauge::new(),
            in_flight: Gauge::new(),
            submitted: Counter::new(),
            completed: Counter::new(),
            shed: Counter::new(),
            timeouts: Counter::new(),
            collapsed: Counter::new(),
            admission_limit: Gauge::new(),
            generation: Gauge::new(),
            rebuilds_started: Counter::new(),
            rebuilds_completed: Counter::new(),
            rebuilds_kept: Counter::new(),
        }
    }
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted past the controller.
    pub submitted: u64,
    /// Requests answered (leaders; collapsed followers count separately).
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Answers cut short by their deadline.
    pub timed_out: u64,
    /// Follower responses served by single-flight fan-out.
    pub collapsed: u64,
    /// Requests currently queued across all workers.
    pub queued: usize,
    /// Admitted-but-unfinished requests right now.
    pub in_flight: usize,
    /// The in-flight ceiling admission enforces right now. Equal to
    /// [`ServeConfig::effective_max_in_flight`] unless the adaptive
    /// controller ([`ServeConfig::latency_target_p99_micros`]) has moved
    /// it.
    pub max_in_flight: usize,
}

/// One shard group's admission state: the queues of the workers that own
/// a shard, their rotation cursor, and the per-shard metric cells
/// (published as `flixserve_shard_*`). Unsharded backends run one group
/// covering every worker.
struct Group {
    /// Worker indexes owned by this group (contiguous span).
    workers: std::ops::Range<usize>,
    /// Per-request rotation cursor: every submission starts its try_send
    /// sweep one queue further, so under partial load the assignments
    /// stay near-uniform instead of saturating the low-numbered queues.
    next: AtomicUsize,
    /// Requests queued in this group's queues right now.
    queued: AtomicUsize,
    submitted: Counter,
    shed: Counter,
    depth: Gauge,
}

struct Shared {
    /// The live backend. Workers clone it (an `Arc` clone) out of a brief
    /// read lock per job, so [`FlixServer::swap_backend`] retargets new
    /// admissions while in-flight work finishes on the old generation.
    backend: RwLock<Backend>,
    /// Backend generation: `1` for the backend the server started with,
    /// bumped by every swap. Mirrored by the `flixserve_generation` gauge.
    generation: AtomicU64,
    /// The load-monitor baseline the online rebuilder diffs against
    /// (see [`FlixServer::maybe_rebuild`]): a rebuild decision looks only
    /// at traffic that arrived since the last swap.
    rebuild_baseline: Mutex<flix::LoadMonitor>,
    config: ServeConfig,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    queued: AtomicUsize,
    /// One group per shard ([`Backend::Sharded`]) — capped at the worker
    /// count — or a single group otherwise.
    groups: Vec<Group>,
    /// Per-worker-queue assignment counters (admission audit; see
    /// [`FlixServer::queue_assignments`]).
    assigned: Vec<Counter>,
    single_flight: Mutex<HashMap<SfKey, SfEntry>>,
    metrics: ServeMetrics,
    slow_log: SlowQueryLog,
    load: SharedLoadMonitor,
    /// The flight recorder, when this server was started traced
    /// ([`FlixServer::start_traced`]). `None` adds zero clock reads to the
    /// serve path: every journal site goes through [`Shared::journal`] or
    /// an `Option<&JournalHandle>` that is `None`.
    recorder: Option<Arc<FlightRecorder>>,
    /// Mints [`RequestId`]s; starts at 1 so id 0 stays [`RequestId::NONE`].
    next_request: AtomicU64,
    /// The live in-flight ceiling. Fixed at
    /// [`ServeConfig::effective_max_in_flight`] unless the adaptive
    /// controller is on.
    limit: AtomicUsize,
    /// Completion counter driving the controller's sampling window.
    completions: AtomicU64,
}

impl Shared {
    /// Builds the shed error from a coherent `in_flight` snapshot taken
    /// at the rejection decision itself (the failed `fetch_update`'s
    /// observed value, or the post-decrement count on a queue-full shed).
    /// `queued` is clamped to it: every queued request is in flight, so a
    /// larger independently-loaded value can only be a torn read.
    fn overloaded(&self, in_flight: usize) -> ServeError {
        ServeError::Overloaded {
            queued: self.queued.load(SeqCst).min(in_flight),
            in_flight,
        }
    }

    /// The group a request for `start` is routed to. For an unsharded
    /// backend the modulo spreads requests over however many groups exist
    /// (one, unless a swap replaced a sharded backend with an unsharded
    /// one — the group topology is fixed at start, and any group answers
    /// correctly either way).
    fn group_of(&self, start: NodeId) -> usize {
        match &*self.backend.read() {
            Backend::Sharded(sharded) => sharded.shard_of(start) as usize % self.groups.len(),
            _ => start as usize % self.groups.len(),
        }
    }

    /// Removes a single-flight registration and fails any followers that
    /// attached while the leader was being (unsuccessfully) admitted.
    fn abort_single_flight(&self, key: Option<SfKey>, error: &ServeError) {
        let Some(key) = key else { return };
        let waiters = self
            .single_flight
            .lock()
            .remove(&key)
            .map(|e| e.waiters)
            .unwrap_or_default();
        for waiter in waiters {
            self.metrics.shed.inc();
            // flixcheck: allow(swallowed-result): the waiter may have timed out and dropped its receiver; nothing to do
            let _ = waiter.send(Err(error.clone()));
        }
    }

    /// Records one journal event if the recorder is on. Off = a single
    /// `Option` check; no clock is read, no memory is touched.
    fn journal(&self, lane: usize, request: RequestId, kind: EventKind) {
        if let Some(recorder) = &self.recorder {
            recorder.record(lane, request, kind);
        }
    }

    /// Mints the next [`RequestId`] (never [`RequestId::NONE`]).
    fn mint(&self) -> RequestId {
        RequestId::new(self.next_request.fetch_add(1, SeqCst))
    }
}

/// A handle to a submitted request; consume it with [`Ticket::wait`].
pub struct Ticket {
    rx: crossbeam::channel::Receiver<Result<Response, ServeError>>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the answer (or rejection) arrives. Dropping a ticket
    /// without waiting is allowed — the evaluation still completes and
    /// feeds the metrics (open-loop load generation relies on this).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// A concurrent query server over a FliX backend. See the crate docs for
/// the full design; construction starts the workers, [`Self::shutdown`]
/// (or drop) drains them.
pub struct FlixServer {
    shared: Arc<Shared>,
    senders: RwLock<Option<Vec<crossbeam::channel::Sender<Job>>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl FlixServer {
    /// Starts `config.workers` worker threads over `backend`. A sharded
    /// backend partitions the workers into one group per shard (capped at
    /// the worker count — a group always has at least one worker), each
    /// group serving only its shards' requests.
    pub fn start(backend: impl Into<Backend>, config: ServeConfig) -> Self {
        Self::start_with(backend.into(), config, None)
    }

    /// [`Self::start`] with the flight recorder on: every admission
    /// decision, queue handoff, routing verdict, evaluator span, cache
    /// verdict, and deadline cut is journaled into per-lane ring buffers
    /// holding the last `journal_capacity` events per lane (lane 0 is the
    /// submit path, lane `w + 1` is worker `w`). Read the journal back
    /// with [`Self::journal_snapshot`]. Result streams are bit-identical
    /// to an untraced server's — the recorder only *observes*.
    pub fn start_traced(
        backend: impl Into<Backend>,
        config: ServeConfig,
        journal_capacity: usize,
    ) -> Self {
        let recorder = Arc::new(FlightRecorder::for_workers(
            config.effective_workers(),
            journal_capacity,
        ));
        Self::start_with(backend.into(), config, Some(recorder))
    }

    fn start_with(
        backend: Backend,
        config: ServeConfig,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let workers = config.effective_workers();
        let group_count = match &backend {
            Backend::Sharded(sharded) => sharded.shard_count().min(workers),
            _ => 1,
        };
        // Contiguous worker spans, remainder workers on the first groups.
        let (base, extra) = (workers / group_count, workers % group_count);
        let mut groups = Vec::with_capacity(group_count);
        let mut start = 0;
        for g in 0..group_count {
            let len = base + usize::from(g < extra);
            groups.push(Group {
                workers: start..start + len,
                next: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                submitted: Counter::new(),
                shed: Counter::new(),
                depth: Gauge::new(),
            });
            start += len;
        }
        let shared = Arc::new(Shared {
            backend: RwLock::new(backend),
            generation: AtomicU64::new(1),
            rebuild_baseline: Mutex::new(flix::LoadMonitor::new()),
            config,
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            groups,
            assigned: (0..workers).map(|_| Counter::new()).collect(),
            single_flight: Mutex::new(HashMap::new()),
            metrics: ServeMetrics::new(),
            slow_log: SlowQueryLog::new(config.slow_log_capacity.max(1)),
            load: SharedLoadMonitor::new(),
            recorder,
            next_request: AtomicU64::new(1),
            limit: AtomicUsize::new(config.effective_max_in_flight()),
            completions: AtomicU64::new(0),
        });
        shared
            .metrics
            .admission_limit
            .set(config.effective_max_in_flight() as f64);
        shared.metrics.generation.set(1.0);
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for w in 0..workers {
            let group = shared
                .groups
                .iter()
                .position(|g| g.workers.contains(&w))
                .unwrap_or(0);
            let (tx, rx) = crossbeam::channel::bounded(config.queue_capacity.max(1));
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::spawn(move || worker_loop(&worker_shared, &rx, group, w));
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            shared,
            senders: RwLock::new(Some(senders)),
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.config.effective_workers()
    }

    /// Number of shard groups the workers are partitioned into (1 for
    /// unsharded backends).
    pub fn shard_groups(&self) -> usize {
        self.shared.groups.len()
    }

    /// How many requests each worker queue has been assigned, in worker
    /// order — the admission audit behind the round-robin rotation test
    /// (near-uniform under uniform load).
    pub fn queue_assignments(&self) -> Vec<u64> {
        self.shared.assigned.iter().map(Counter::get).collect()
    }

    /// Submits a request through admission control. Returns a [`Ticket`]
    /// on admission (or single-flight attachment); sheds with a typed
    /// error otherwise. Never blocks on a full queue.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if shared.draining.load(SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let mut request = request;
        if request.opts.deadline.is_none() {
            if let Some(budget) = shared.config.default_deadline_micros {
                request.opts.deadline = Some(Deadline::within_micros(budget));
            }
        }
        let id = shared.mint();
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        let ticket = Ticket { rx: reply_rx };

        // Single-flight: attach to an in-flight identical query if there is
        // one. Followers consume no queue slot and no in-flight budget.
        let sf_key = if shared.config.single_flight {
            let key = SfKey::of(&request);
            let mut sf = shared.single_flight.lock();
            match sf.get_mut(&key) {
                Some(entry) => {
                    entry.waiters.push(reply_tx);
                    let leader = entry.leader;
                    drop(sf);
                    shared.journal(
                        SUBMIT_LANE,
                        id,
                        EventKind::SfFollower {
                            leader: leader.raw(),
                        },
                    );
                    return Ok(ticket);
                }
                None => {
                    sf.insert(
                        key,
                        SfEntry {
                            leader: id,
                            waiters: Vec::new(),
                        },
                    );
                    Some(key)
                }
            }
        } else {
            None
        };

        // In-flight ceiling — the *live* one: the adaptive controller may
        // have pulled it under the configured ceiling. The failed
        // `fetch_update` hands back the count it observed — that value
        // (< ceiling never rejects, so it is at the ceiling, never above)
        // goes into the error verbatim.
        let max = shared.limit.load(SeqCst);
        if let Err(cur) = shared
            .in_flight
            .fetch_update(SeqCst, SeqCst, |cur| (cur < max).then_some(cur + 1))
        {
            shared.journal(
                SUBMIT_LANE,
                id,
                EventKind::Shed {
                    in_flight: cur as u64,
                },
            );
            let err = shared.overloaded(cur);
            shared.metrics.shed.inc();
            shared.abort_single_flight(sf_key, &err);
            return Err(err);
        }
        shared
            .metrics
            .in_flight
            .set(shared.in_flight.load(SeqCst) as f64);
        shared.journal(SUBMIT_LANE, id, EventKind::Admitted);

        // Rotate over the owning group's worker queues with non-blocking
        // sends. The sweep start advances per request, so a sweep that
        // skips full queues does not pin later requests to the same
        // low-numbered survivors.
        let senders = self.senders.read();
        let Some(senders) = senders.as_deref() else {
            shared.in_flight.fetch_sub(1, SeqCst);
            shared.abort_single_flight(sf_key, &ServeError::ShuttingDown);
            return Err(ServeError::ShuttingDown);
        };
        let group = &shared.groups[shared.group_of(request.start)];
        let span = group.workers.clone();
        let mut job = Job {
            request,
            id,
            admitted: Stopwatch::start(),
            reply: reply_tx,
            sf_key,
        };
        let first = group.next.fetch_add(1, SeqCst);
        // Timestamp the handoff *before* the send: the dequeuing worker's
        // own clock read then always sorts at-or-after it, so the merged
        // trace keeps Enqueued before Dequeued even when the worker wins
        // the race to the journal.
        let enqueue_micros = shared.recorder.as_ref().map(|r| r.now_micros());
        for i in 0..span.len() {
            let w = span.start + (first + i) % span.len();
            match senders[w].try_send(job) {
                Ok(()) => {
                    shared.assigned[w].inc();
                    shared.metrics.submitted.inc();
                    group.submitted.inc();
                    group
                        .depth
                        .set(group.queued.fetch_add(1, SeqCst) as f64 + 1.0);
                    shared
                        .metrics
                        .queue_depth
                        .set(shared.queued.fetch_add(1, SeqCst) as f64 + 1.0);
                    if let (Some(recorder), Some(at)) = (&shared.recorder, enqueue_micros) {
                        recorder.record_at(
                            SUBMIT_LANE,
                            at,
                            id,
                            EventKind::Enqueued { worker: w as u64 },
                        );
                    }
                    return Ok(ticket);
                }
                Err(crossbeam::channel::TrySendError::Full(returned))
                | Err(crossbeam::channel::TrySendError::Disconnected(returned)) => {
                    job = returned;
                }
            }
        }
        // Every queue in the group full (or gone): shed. The decrement's
        // return value is the coherent in-flight count after this request
        // stepped back out.
        let now = shared.in_flight.fetch_sub(1, SeqCst) - 1;
        shared.metrics.in_flight.set(now as f64);
        shared.journal(
            SUBMIT_LANE,
            id,
            EventKind::Shed {
                in_flight: now as u64,
            },
        );
        let err = shared.overloaded(now);
        shared.metrics.shed.inc();
        group.shed.inc();
        shared.abort_single_flight(sf_key, &err);
        Err(err)
    }

    /// [`Self::submit`] then [`Ticket::wait`].
    pub fn query(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Drains the server: new submissions are rejected, every admitted
    /// request completes, the workers exit, and the metrics and slow-query
    /// log remain readable. Idempotent.
    pub fn shutdown(&self) {
        if !self.shared.draining.swap(true, SeqCst) {
            // First drain only — shutdown is idempotent, the journal
            // records the transition once.
            self.shared
                .journal(SUBMIT_LANE, RequestId::NONE, EventKind::Drain);
        }
        // Dropping the senders closes the queues; the channel contract
        // delivers everything already buffered before the workers see the
        // disconnect, so admitted work always finishes.
        drop(self.senders.write().take());
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            // flixcheck: allow(swallowed-result): shutdown is best-effort; a panicked worker already counted its job as failed
            let _ = handle.join();
        }
    }

    /// Blocks until no request is queued or executing. Used after
    /// open-loop (fire-and-forget) load generation to let the tail drain
    /// before reading the latency histogram.
    pub fn wait_idle(&self) {
        while self.shared.in_flight.load(SeqCst) > 0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> ServeStats {
        let m = &self.shared.metrics;
        ServeStats {
            submitted: m.submitted.get(),
            completed: m.completed.get(),
            shed: m.shed.get(),
            timed_out: m.timeouts.get(),
            collapsed: m.collapsed.get(),
            queued: self.shared.queued.load(SeqCst),
            in_flight: self.shared.in_flight.load(SeqCst),
            max_in_flight: self.shared.limit.load(SeqCst),
        }
    }

    /// The flight recorder, when this server was started with
    /// [`Self::start_traced`].
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.shared.recorder.as_ref()
    }

    /// A consistent snapshot of the journal: every lane's surviving
    /// events, merged into one timeline. `None` for an untraced server.
    /// Safe to call while the server is running — appends racing the
    /// snapshot are either fully visible or fully absent, never torn.
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.shared.recorder.as_ref().map(|r| r.snapshot())
    }

    /// End-to-end latency histogram (admission to completion).
    pub fn latency(&self) -> &Histogram {
        &self.shared.metrics.latency
    }

    /// Queue-wait histogram (admission to worker pickup).
    pub fn queue_wait(&self) -> &Histogram {
        &self.shared.metrics.queue_wait
    }

    /// The worst retained request traces, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.slow_log.worst()
    }

    /// Snapshot of the load monitor the workers feed (queries answered by
    /// the in-process evaluator; cache hits do no evaluator work and
    /// cached-miss internals are owned by the cache, so neither records).
    pub fn load(&self) -> flix::LoadMonitor {
        self.shared.load.snapshot()
    }

    /// The live backend — an `Arc`-cheap clone of the handle, sharing the
    /// engine. Queries evaluated on the clone answer identically to
    /// queries served through the server (until a swap retargets it).
    pub fn backend(&self) -> Backend {
        self.shared.backend.read().clone()
    }

    /// The backend generation: `1` for the backend the server started
    /// with, bumped by every [`Self::swap_backend`].
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(SeqCst)
    }

    /// Atomically replaces the serving backend under live traffic and
    /// returns the new generation.
    ///
    /// The swap is a write-lock store: requests admitted after it see the
    /// new backend; evaluations already running hold their own clone and
    /// finish — correctly — on the generation they started on. No request
    /// is dropped, paused, or re-queued. The worker-group topology is
    /// fixed at start, which stays correct across swaps (a [`ShardedFlix`]
    /// evaluates shards internally, so routing to any group only affects
    /// locality, never answers). The `flixserve_generation` gauge moves
    /// with the swap, and a traced server journals it as
    /// [`EventKind::Swap`].
    pub fn swap_backend(&self, backend: impl Into<Backend>) -> u64 {
        *self.shared.backend.write() = backend.into();
        let generation = self.shared.generation.fetch_add(1, SeqCst) + 1;
        self.shared.metrics.generation.set(generation as f64);
        self.shared
            .journal(SUBMIT_LANE, RequestId::NONE, EventKind::Swap { generation });
        generation
    }

    /// The serve-path metric cells (rebuild counters included) for
    /// crate-internal components that feed them.
    pub(crate) fn serve_metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Journals a control-plane event (no owning request) on the submit
    /// lane of a traced server; a no-op otherwise.
    pub(crate) fn journal_control(&self, kind: EventKind) {
        self.shared.journal(SUBMIT_LANE, RequestId::NONE, kind);
    }

    /// The load-monitor baseline the online rebuilder diffs against.
    pub(crate) fn rebuild_baseline(&self) -> &Mutex<flix::LoadMonitor> {
        &self.shared.rebuild_baseline
    }

    /// Whether the server is draining (shutdown has begun).
    pub(crate) fn is_draining(&self) -> bool {
        self.shared.draining.load(SeqCst)
    }

    /// Binds the server's live metric cells into `registry` under
    /// `flixserve_*` names tagged with `labels`: queue-depth and in-flight
    /// gauges, shed/timeout/collapse/submitted/completed counters, and the
    /// end-to-end latency and queue-wait histograms.
    pub fn publish_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        let m = &self.shared.metrics;
        for (name, help, counter) in [
            (
                "flixserve_submitted_total",
                "Requests admitted past the controller and handed to a worker queue.",
                &m.submitted,
            ),
            (
                "flixserve_completed_total",
                "Requests a worker finished answering (leaders only).",
                &m.completed,
            ),
            (
                "flixserve_shed_total",
                "Requests rejected by admission control (ceiling or full queues).",
                &m.shed,
            ),
            (
                "flixserve_timeout_total",
                "Answers cut short by their deadline (distance-ordered prefixes).",
                &m.timeouts,
            ),
            (
                "flixserve_collapsed_total",
                "Follower responses served by single-flight fan-out.",
                &m.collapsed,
            ),
        ] {
            registry.describe(name, help);
            registry.bind_counter(MetricId::with_labels(name, labels), counter);
        }
        for (name, help, gauge) in [
            (
                "flixserve_queue_depth",
                "Requests sitting in worker queues right now.",
                &m.queue_depth,
            ),
            (
                "flixserve_in_flight",
                "Admitted-but-unfinished requests right now.",
                &m.in_flight,
            ),
            (
                "flixserve_admission_limit",
                "Live in-flight ceiling; moves only when adaptive admission is on.",
                &m.admission_limit,
            ),
            (
                "flixserve_generation",
                "Backend generation: 1 at start, bumped by every hot swap.",
                &m.generation,
            ),
        ] {
            registry.describe(name, help);
            registry.bind_gauge(MetricId::with_labels(name, labels), gauge);
        }
        for (name, help, histogram) in [
            (
                "flixserve_latency_micros",
                "End-to-end request latency: admission to completion, queue wait included.",
                &m.latency,
            ),
            (
                "flixserve_queue_micros",
                "Queue wait: admission to worker pickup.",
                &m.queue_wait,
            ),
        ] {
            registry.describe(name, help);
            registry.bind_histogram(MetricId::with_labels(name, labels), histogram);
        }
        // Per-shard admission cells, one series per group, tagged with a
        // `shard` label on top of the caller's.
        if self.shared.groups.len() > 1 {
            registry.describe(
                "flixserve_shard_submitted_total",
                "Requests admitted into this shard group's queues.",
            );
            registry.describe(
                "flixserve_shard_shed_total",
                "Requests shed because this shard group's queues were full.",
            );
            registry.describe(
                "flixserve_shard_queue_depth",
                "Requests queued in this shard group right now.",
            );
            for (g, group) in self.shared.groups.iter().enumerate() {
                let shard = g.to_string();
                let mut shard_labels: Vec<(&str, &str)> = labels.to_vec();
                shard_labels.push(("shard", &shard));
                for (name, counter) in [
                    ("flixserve_shard_submitted_total", &group.submitted),
                    ("flixserve_shard_shed_total", &group.shed),
                ] {
                    registry.bind_counter(MetricId::with_labels(name, &shard_labels), counter);
                }
                registry.bind_gauge(
                    MetricId::with_labels("flixserve_shard_queue_depth", &shard_labels),
                    &group.depth,
                );
            }
        }
        for (name, help, counter) in [
            (
                "flix_rebuild_started_total",
                "Rebuild recommendations the online rebuilder acted on.",
                &m.rebuilds_started,
            ),
            (
                "flix_rebuild_completed_total",
                "Rebuilds that finished and hot-swapped into the server.",
                &m.rebuilds_completed,
            ),
            (
                "flix_rebuild_kept_total",
                "Rebuild checks that kept the current configuration.",
                &m.rebuilds_kept,
            ),
        ] {
            registry.describe(name, help);
            registry.bind_counter(MetricId::with_labels(name, labels), counter);
        }
        // Bind the *current* backend's cells. The binding captures the
        // backend live at publish time — after a hot swap, publish again
        // to bind the new generation's shard metrics.
        let backend = self.shared.backend.read().clone();
        if let Backend::Sharded(sharded) = &backend {
            sharded.publish_metrics(registry, labels);
        }
    }
}

impl Drop for FlixServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Evaluates one request on the backend. Returns the (possibly partial)
/// results, the timeout marker, and — when the evaluator ran in-process —
/// its counters for the load monitor.
///
/// `journal` is the write-only flight-recorder handle for this request's
/// worker lane (`None` when the recorder is off — no clock reads, no
/// events, bit-identical results). The sharded and cached backends journal
/// their own routing/cache/eval events inside the flix crate; the plain
/// backend and the cached-ancestors bypass have no interior decision
/// points, so this function brackets them with one eval span itself.
fn compute(
    backend: &Backend,
    req: &Request,
    journal: Option<&JournalHandle<'_>>,
) -> (Arc<Vec<QueryResult>>, bool, Option<PeeStats>) {
    let span_open = |shard: u64| {
        if let Some(j) = journal {
            j.event(EventKind::EvalStart { shard });
        }
    };
    let span_close = |results: usize| {
        if let Some(j) = journal {
            j.event(EventKind::EvalEnd {
                results: results as u64,
            });
        }
    };
    match (backend, req.axis) {
        (Backend::Cached(cached), AxisKind::Descendants) => {
            let (results, timed_out) = cached
                .find_descendants_deadline_journaled(req.start, req.target, &req.opts, journal);
            (results, timed_out, None)
        }
        (Backend::Cached(cached), AxisKind::Ancestors) => {
            span_open(SHARD_NONE);
            let out = cached
                .framework()
                .find_ancestors_outcome_journaled(req.start, req.target, &req.opts, journal);
            span_close(out.results.len());
            (Arc::new(out.results), out.timed_out, Some(out.stats))
        }
        (Backend::Plain(flix), AxisKind::Descendants) => {
            span_open(SHARD_NONE);
            let out =
                flix.find_descendants_outcome_journaled(req.start, req.target, &req.opts, journal);
            span_close(out.results.len());
            (Arc::new(out.results), out.timed_out, Some(out.stats))
        }
        (Backend::Plain(flix), AxisKind::Ancestors) => {
            span_open(SHARD_NONE);
            let out =
                flix.find_ancestors_outcome_journaled(req.start, req.target, &req.opts, journal);
            span_close(out.results.len());
            (Arc::new(out.results), out.timed_out, Some(out.stats))
        }
        (Backend::Sharded(sharded), AxisKind::Descendants) => {
            let (results, timed_out) = sharded
                .find_descendants_deadline_journaled(req.start, req.target, &req.opts, journal);
            (results, timed_out, None)
        }
        (Backend::Sharded(sharded), AxisKind::Ancestors) => {
            let out =
                sharded.find_ancestors_outcome_journaled(req.start, req.target, &req.opts, journal);
            (Arc::new(out.results), out.timed_out, Some(out.stats))
        }
    }
}

fn worker_loop(
    shared: &Shared,
    rx: &crossbeam::channel::Receiver<Job>,
    group: usize,
    worker: usize,
) {
    let group = &shared.groups[group];
    let lane = worker + 1;
    while let Ok(job) = rx.recv() {
        group
            .depth
            .set(group.queued.fetch_sub(1, SeqCst) as f64 - 1.0);
        shared
            .metrics
            .queue_depth
            .set(shared.queued.fetch_sub(1, SeqCst) as f64 - 1.0);
        shared.journal(
            lane,
            job.id,
            EventKind::Dequeued {
                worker: worker as u64,
            },
        );
        let queue_micros = job.admitted.elapsed_micros();
        // The handle pins (lane, request) so every event the evaluator
        // journals below stitches into this request's causal trace.
        let handle = shared.recorder.as_ref().map(|r| r.handle(lane, job.id));
        // Clone the live backend out of a brief read lock: the job runs
        // entirely on the generation it picked up here, so a concurrent
        // swap never changes an evaluation mid-flight.
        let backend = shared.backend.read().clone();
        let (results, timed_out, stats) = compute(&backend, &job.request, handle.as_ref());
        let total_micros = job.admitted.elapsed_micros();

        shared.metrics.queue_wait.record(queue_micros);
        shared.metrics.latency.record(total_micros);
        shared.metrics.completed.inc();
        if timed_out {
            shared.metrics.timeouts.inc();
        }
        if let Some(stats) = stats {
            shared.load.record(stats, results.len());
        }
        // Only pay for trace construction (a format! per query) when the
        // latency could actually displace a slow-log entry.
        if shared.slow_log.would_retain(total_micros) {
            let mut trace = QueryTrace::new(&format!(
                "{}//{:?} ({:?})",
                job.request.start, job.request.target, job.request.axis
            ));
            trace.tag_request(job.id);
            trace.finish(total_micros);
            shared.slow_log.offer(trace);
        }

        let response = Response {
            results,
            timed_out,
            collapsed: false,
            queue_micros,
            total_micros,
        };
        // Fan out to single-flight followers first, then answer the
        // leader. Removing the key before replying means any identical
        // request arriving from here on becomes a fresh leader.
        if let Some(key) = job.sf_key {
            let waiters = shared
                .single_flight
                .lock()
                .remove(&key)
                .map(|e| e.waiters)
                .unwrap_or_default();
            if !waiters.is_empty() {
                shared.journal(
                    lane,
                    job.id,
                    EventKind::SfLeader {
                        followers: waiters.len() as u64,
                    },
                );
            }
            for waiter in waiters {
                shared.metrics.collapsed.inc();
                let mut copy = response.clone();
                copy.collapsed = true;
                // flixcheck: allow(swallowed-result): collapsed waiter may have deadline-expired and hung up
                let _ = waiter.send(Ok(copy));
            }
        }
        // flixcheck: allow(swallowed-result): the client may have hung up after its deadline; dropping the reply is correct
        let _ = job.reply.send(Ok(response));
        shared
            .metrics
            .in_flight
            .set(shared.in_flight.fetch_sub(1, SeqCst) as f64 - 1.0);
        adapt_limit(shared, lane);
    }
}

/// The AIMD admission controller, run once per completion by whichever
/// worker finished the request. Off unless
/// [`ServeConfig::latency_target_p99_micros`] is set. Every
/// [`ADAPT_WINDOW`]-th completion compares the end-to-end latency
/// histogram's p99 estimate to the target: over → multiplicative decrease
/// (halve, floored at one in-flight slot per worker), at-or-under →
/// additive increase (one slot, capped at the configured ceiling). The
/// limit only tightens admission; it never grows past
/// [`ServeConfig::effective_max_in_flight`], so an adaptive server under
/// target behaves exactly like a fixed one.
fn adapt_limit(shared: &Shared, lane: usize) {
    let Some(target) = shared.config.latency_target_p99_micros else {
        return;
    };
    let completion = shared.completions.fetch_add(1, SeqCst) + 1;
    if completion % ADAPT_WINDOW != 0 {
        return;
    }
    let p99 = shared.metrics.latency.snapshot().p99();
    let cur = shared.limit.load(SeqCst);
    let next = if p99 > target {
        (cur / 2).max(shared.config.effective_workers())
    } else {
        (cur + 1).min(shared.config.effective_max_in_flight())
    };
    if next != cur {
        shared.limit.store(next, SeqCst);
        shared.metrics.admission_limit.set(next as f64);
        shared.journal(
            lane,
            RequestId::NONE,
            EventKind::LimitChange { limit: next as u64 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flix::FlixConfig;
    use xmlgraph::{Collection, Document, LinkTarget};

    fn tiny() -> (Arc<Flix>, TagId) {
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        let mut d0 = Document::new("a.xml");
        let r = d0.add_element(t, None);
        let k = d0.add_element(t, Some(r));
        d0.add_link(
            k,
            LinkTarget {
                document: Some("b.xml".into()),
                fragment: None,
            },
        );
        let mut d1 = Document::new("b.xml");
        d1.add_element(t, None);
        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        let cg = Arc::new(c.seal());
        let tag = cg.collection.tags.get("t").unwrap();
        (Arc::new(Flix::build(cg, FlixConfig::Naive)), tag)
    }

    #[test]
    fn serves_the_framework_answer() {
        let (flix, t) = tiny();
        let server = FlixServer::start(flix.clone(), ServeConfig::default());
        let response = server
            .query(Request::descendants(0, t, QueryOptions::default()))
            .unwrap();
        assert_eq!(
            *response.results,
            flix.find_descendants(0, t, &QueryOptions::default())
        );
        assert!(!response.timed_out);
        assert!(!response.collapsed);
        assert!(response.total_micros >= response.queue_micros);
        let stats = server.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn post_shutdown_submissions_are_refused_and_state_readable() {
        let (flix, t) = tiny();
        let server = FlixServer::start(flix, ServeConfig::default());
        server
            .query(Request::descendants(0, t, QueryOptions::default()))
            .unwrap();
        server.shutdown();
        server.shutdown(); // idempotent
        let err = server
            .submit(Request::descendants(0, t, QueryOptions::default()))
            .unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        assert_eq!(server.stats().completed, 1);
        assert_eq!(server.latency().count(), 1);
        assert_eq!(server.slow_queries().len(), 1);
    }

    #[test]
    fn default_deadline_is_applied_and_marked() {
        let (flix, t) = tiny();
        let config = ServeConfig {
            default_deadline_micros: Some(0),
            ..ServeConfig::default()
        };
        let server = FlixServer::start(flix, config);
        let response = server
            .query(Request::descendants(0, t, QueryOptions::default()))
            .unwrap();
        assert!(response.timed_out, "zero budget must expire in the queue");
        assert!(response.results.is_empty());
        assert_eq!(server.stats().timed_out, 1);
        server.shutdown();
    }

    #[test]
    fn metrics_publish_under_flixserve_names() {
        let (flix, t) = tiny();
        let server = FlixServer::start(flix, ServeConfig::default());
        let registry = MetricsRegistry::new();
        server.publish_metrics(&registry, &[("pool", "test")]);
        server
            .query(Request::descendants(0, t, QueryOptions::default()))
            .unwrap();
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains("flixserve_completed_total{pool=\"test\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("flixserve_latency_micros_count{pool=\"test\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("flixserve_in_flight{pool=\"test\"} 0"),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn cached_backend_serves_and_ancestors_bypass_cache() {
        let (flix, t) = tiny();
        let cached = Arc::new(CachedFlix::new(flix.clone(), 8));
        let server = FlixServer::start(Arc::clone(&cached), ServeConfig::default());
        for _ in 0..3 {
            let r = server
                .query(Request::descendants(0, t, QueryOptions::default()))
                .unwrap();
            assert_eq!(
                *r.results,
                flix.find_descendants(0, t, &QueryOptions::default())
            );
        }
        assert_eq!(cached.stats(), (2, 1), "two hits after the first miss");
        let anc = server
            .query(Request::ancestors(1, t, QueryOptions::default()))
            .unwrap();
        assert_eq!(
            *anc.results,
            flix.find_ancestors(1, t, &QueryOptions::default())
        );
        assert_eq!(cached.len(), 1, "ancestors do not populate the cache");
        server.shutdown();
    }

    #[test]
    fn sharded_backend_serves_oracle_answers_per_group() {
        let (flix, t) = tiny();
        let sharded = Arc::new(ShardedFlix::new(Arc::clone(&flix), 2));
        let server = FlixServer::start(Arc::clone(&sharded), ServeConfig::default());
        assert_eq!(server.shard_groups(), sharded.shard_count().min(4));
        let nodes = flix.collection().node_count() as NodeId;
        for start in 0..nodes {
            for req in [
                Request::descendants(start, t, QueryOptions::default()),
                Request::ancestors(start, t, QueryOptions::default()),
            ] {
                let got = server.query(req).unwrap();
                let want = match req.axis {
                    AxisKind::Descendants => flix.find_descendants(start, t, &req.opts),
                    AxisKind::Ancestors => flix.find_ancestors(start, t, &req.opts),
                };
                assert_eq!(*got.results, want, "start {start} {:?}", req.axis);
            }
        }
        let assigned: u64 = server.queue_assignments().iter().sum();
        assert_eq!(assigned, u64::from(nodes) * 2, "every request was assigned");
        server.shutdown();
    }

    #[test]
    fn admission_rotation_spreads_sequential_load_evenly() {
        let (flix, t) = tiny();
        let config = ServeConfig {
            workers: 4,
            single_flight: false,
            ..ServeConfig::default()
        };
        let server = FlixServer::start(flix, config);
        for _ in 0..100 {
            server
                .query(Request::descendants(0, t, QueryOptions::default()))
                .unwrap();
        }
        let assigned = server.queue_assignments();
        assert_eq!(assigned.len(), 4);
        assert_eq!(assigned.iter().sum::<u64>(), 100);
        let (lo, hi) = (
            *assigned.iter().min().unwrap(),
            *assigned.iter().max().unwrap(),
        );
        // Sequential submissions with idle queues land exactly round-robin;
        // allow a whisker of slack for a sweep that skipped a busy queue.
        assert!(
            hi - lo <= 1,
            "rotation failed to spread load: {assigned:?} (max-min {})",
            hi - lo
        );
        server.shutdown();
    }

    #[test]
    fn shed_errors_report_coherent_snapshots() {
        let (flix, t) = tiny();
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_in_flight: 2,
            single_flight: false,
            ..ServeConfig::default()
        };
        let server = Arc::new(FlixServer::start(flix, config));
        let ceiling = config.effective_max_in_flight();
        let errors: Vec<ServeError> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let server = Arc::clone(&server);
                    s.spawn(move || {
                        let mut shed = Vec::new();
                        for _ in 0..200 {
                            match server.submit(Request::descendants(0, t, QueryOptions::default()))
                            {
                                Ok(ticket) => drop(ticket.wait()),
                                Err(err) => shed.push(err),
                            }
                        }
                        shed
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert!(
            !errors.is_empty(),
            "the storm should overrun a 1-worker, capacity-1, ceiling-2 server"
        );
        for err in &errors {
            let ServeError::Overloaded { queued, in_flight } = err else {
                panic!("unexpected error under load: {err}");
            };
            assert!(
                *in_flight <= ceiling,
                "shed reported in_flight {in_flight} above the ceiling {ceiling}"
            );
            assert!(
                queued <= in_flight,
                "shed reported queued {queued} > in_flight {in_flight}"
            );
        }
        server.shutdown();
        server.wait_idle();
    }
}
