//! The slow-query log: a fixed-capacity buffer of the worst traces.
//!
//! Aggregates (histograms) tell you *that* the tail is bad; the slow-query
//! log keeps the actual [`QueryTrace`]s behind the tail so you can see
//! *why*. The buffer holds at most `capacity` entries; when full, a new
//! trace replaces the current fastest retained entry only if it is slower
//! — i.e. the log always retains the N worst queries seen so far, in
//! O(capacity) per offer with no allocation churn.

use crate::journal::RequestId;
use crate::trace::QueryTrace;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One retained slow query.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Monotone sequence number of the offer (order of arrival).
    pub seq: u64,
    /// The serve-path request that produced the trace
    /// ([`RequestId::NONE`] for traces recorded outside the serve path),
    /// so a slow-log hit can be looked up directly in the exported
    /// flight-recorder journal.
    pub request: RequestId,
    /// The full trace, including per-stage totals.
    pub trace: QueryTrace,
}

/// Fixed-capacity log retaining the N slowest queries by total latency.
#[derive(Debug)]
pub struct SlowQueryLog {
    inner: Mutex<LogInner>,
    capacity: usize,
    /// Lowest `total_micros` that could still be retained: 0 until the log
    /// fills, then one past the fastest retained entry. Lets hot paths
    /// skip building a trace (and taking the lock) for queries that could
    /// not possibly displace anything — see [`SlowQueryLog::would_retain`].
    floor: AtomicU64,
}

#[derive(Debug)]
struct LogInner {
    entries: Vec<SlowQuery>,
    next_seq: u64,
    offered: u64,
}

impl SlowQueryLog {
    /// An empty log retaining at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                next_seq: 0,
                offered: 0,
            }),
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
        }
    }

    /// Whether a finished trace with this total latency could be retained
    /// right now. A cheap (lock-free) pre-check for hot paths: when it
    /// returns `false`, [`SlowQueryLog::offer`] would reject the trace, so
    /// the caller can skip building it entirely. A `true` is advisory —
    /// a racing offer may still win — but never stays stale in the
    /// rejecting direction for a given latency once the log has settled.
    pub fn would_retain(&self, total_micros: u64) -> bool {
        total_micros >= self.floor.load(Ordering::Relaxed)
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a finished trace. Returns `true` if it was retained (always,
    /// until the log is full; afterwards only when slower than the current
    /// fastest retained entry, which it replaces).
    pub fn offer(&self, trace: QueryTrace) -> bool {
        let mut inner = self.inner.lock();
        inner.offered += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let request = trace.request();
        if inner.entries.len() < self.capacity {
            inner.entries.push(SlowQuery {
                seq,
                request,
                trace,
            });
            if inner.entries.len() == self.capacity {
                self.refresh_floor(&inner);
            }
            return true;
        }
        let min_idx = inner
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.trace.total_micros())
            .map(|(i, _)| i);
        match min_idx {
            Some(i) if inner.entries[i].trace.total_micros() < trace.total_micros() => {
                inner.entries[i] = SlowQuery {
                    seq,
                    request,
                    trace,
                };
                self.refresh_floor(&inner);
                true
            }
            _ => false,
        }
    }

    /// Re-derives the retention floor from a full entry set: one past the
    /// fastest retained entry, since `offer` only replaces on strictly
    /// slower.
    fn refresh_floor(&self, inner: &LogInner) {
        let min = inner
            .entries
            .iter()
            .map(|e| e.trace.total_micros())
            .min()
            .unwrap_or(0);
        self.floor.store(min.saturating_add(1), Ordering::Relaxed);
    }

    /// Total traces offered so far (retained or not).
    pub fn offered(&self) -> u64 {
        self.inner.lock().offered
    }

    /// Retained traces, slowest first (ties broken by arrival order).
    pub fn worst(&self) -> Vec<SlowQuery> {
        let mut entries = self.inner.lock().entries.clone();
        entries.sort_by(|a, b| {
            b.trace
                .total_micros()
                .cmp(&a.trace.total_micros())
                .then(a.seq.cmp(&b.seq))
        });
        entries
    }

    /// Drops every retained trace (sequence numbers keep counting).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        self.floor.store(0, Ordering::Relaxed);
        drop(inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(micros: u64) -> QueryTrace {
        let mut t = QueryTrace::new("q");
        t.finish(micros);
        t
    }

    #[test]
    fn retains_the_n_worst() {
        let log = SlowQueryLog::new(3);
        for micros in [10, 50, 20, 5, 90, 40] {
            log.offer(trace(micros));
        }
        let worst: Vec<u64> = log.worst().iter().map(|e| e.trace.total_micros()).collect();
        assert_eq!(worst, vec![90, 50, 40]);
        assert_eq!(log.offered(), 6);
    }

    #[test]
    fn rejects_faster_than_retained_minimum() {
        let log = SlowQueryLog::new(2);
        assert!(log.offer(trace(100)));
        assert!(log.offer(trace(200)));
        assert!(!log.offer(trace(50)));
        assert!(log.offer(trace(150)));
        let worst: Vec<u64> = log.worst().iter().map(|e| e.trace.total_micros()).collect();
        assert_eq!(worst, vec![200, 150]);
    }

    #[test]
    fn clear_empties_but_keeps_counting() {
        let log = SlowQueryLog::new(2);
        log.offer(trace(10));
        log.clear();
        assert!(log.worst().is_empty());
        log.offer(trace(20));
        assert_eq!(log.offered(), 2);
        assert_eq!(log.worst().len(), 1);
    }

    #[test]
    fn would_retain_tracks_the_retention_floor() {
        let log = SlowQueryLog::new(2);
        // Below capacity everything is retainable, even a 0µs trace.
        assert!(log.would_retain(0));
        log.offer(trace(100));
        assert!(log.would_retain(0));
        log.offer(trace(200));
        // Full: only traces strictly slower than the fastest entry pass.
        assert!(!log.would_retain(100));
        assert!(log.would_retain(101));
        log.offer(trace(150));
        assert!(!log.would_retain(150));
        assert!(log.would_retain(151));
        log.clear();
        assert!(log.would_retain(0));
    }

    #[test]
    fn capacity_floor_is_one() {
        let log = SlowQueryLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.offer(trace(5));
        log.offer(trace(9));
        assert_eq!(log.worst()[0].trace.total_micros(), 9);
    }
}
