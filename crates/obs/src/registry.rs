//! The unified metrics registry.
//!
//! A [`MetricsRegistry`] maps [`MetricId`]s (name + label pairs) to metric
//! handles. Handles are cheap clones around an `Arc`'d atomic cell, so the
//! hot path — bumping a counter, setting a gauge, recording a histogram
//! sample — is a single wait-free atomic operation with no lock in sight.
//! The registry's own mutex is only taken on the cold paths: registering a
//! metric, binding a component-owned handle, and taking a snapshot.
//!
//! Histograms use log2 buckets (`le` bounds 1, 2, 4, … 2^38, +Inf): wide
//! enough dynamic range for microsecond latencies at 40 fixed `u64` cells
//! per histogram, and quantiles (p50/p95/p99) are derivable from any
//! snapshot by cumulative walk with within-bucket interpolation.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of histogram buckets: `le` bounds `2^0 … 2^(BUCKETS-2)` plus a
/// final catch-all (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A metric's identity: a name plus ordered `(key, value)` label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name (`snake_case`, Prometheus-style).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// An unlabelled metric id.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// A labelled metric id.
    pub fn with_labels(name: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Renders the id in exposition syntax: `name` or `name{k="v",...}`,
    /// with `extra` label pairs appended (used for histogram `le` labels).
    pub fn render(&self, extra: &[(&str, &str)]) -> String {
        if self.labels.is_empty() && extra.is_empty() {
            return self.name.clone();
        }
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(&self.name);
        out.push('{');
        let mut first = true;
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
        out
    }
}

/// Escapes a label value for the text exposition (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a string for embedding in JSON output.
pub fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 8);
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (bind it later with
    /// [`MetricsRegistry::bind_counter`] to export it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic cell).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in microseconds,
/// sizes in bytes, …). Recording touches three atomic cells and nothing
/// else.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// Bucket index of a sample: the smallest `i` with `v <= 2^i`, capped at
/// the catch-all bucket.
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper `le` bound of bucket `i` (`None` for the catch-all bucket).
fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 < HISTOGRAM_BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let cells = &*self.0;
        cells.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        cells.count.fetch_add(1, Relaxed);
        cells.sum.fetch_add(v, Relaxed);
        cells.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| cells.buckets[i].load(Relaxed)),
            count: cells.count.load(Relaxed),
            sum: cells.sum.load(Relaxed),
            max: cells.max.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (log2 buckets, last is the catch-all).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact, not bucket-rounded).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimated quantile `q` in `[0, 1]`: cumulative walk over the log2
    /// buckets with linear interpolation inside the winning bucket, clamped
    /// to the exact observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = bucket_bound(i).unwrap_or(self.max.max(lower + 1));
                let frac = (target - cum) as f64 / n as f64;
                let est = lower as f64 + frac * (upper - lower) as f64;
                return (est.round() as u64).min(self.max);
            }
            cum += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of all samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Histogram>,
    help: BTreeMap<String, String>,
}

/// The metric registry: get-or-create handles by id, snapshot on demand.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-create a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::with_labels(name, labels);
        self.inner.lock().counters.entry(id).or_default().clone()
    }

    /// Binds a component-owned counter handle under `id`, preserving its
    /// accumulated value. Replaces any handle previously bound to the id.
    pub fn bind_counter(&self, id: MetricId, counter: &Counter) {
        self.inner.lock().counters.insert(id, counter.clone());
    }

    /// Binds a component-owned gauge handle under `id`, preserving its
    /// current value. Replaces any handle previously bound to the id.
    pub fn bind_gauge(&self, id: MetricId, gauge: &Gauge) {
        self.inner.lock().gauges.insert(id, gauge.clone());
    }

    /// Binds a component-owned histogram handle under `id`, preserving its
    /// accumulated samples. Replaces any handle previously bound to the id.
    pub fn bind_histogram(&self, id: MetricId, histogram: &Histogram) {
        self.inner.lock().histograms.insert(id, histogram.clone());
    }

    /// Get-or-create the gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::with_labels(name, labels);
        self.inner.lock().gauges.entry(id).or_default().clone()
    }

    /// Get-or-create the histogram `name` (no labels).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get-or-create a labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::with_labels(name, labels);
        self.inner.lock().histograms.entry(id).or_default().clone()
    }

    /// Attaches a one-line description to the metric *name* (all label
    /// variants share it). Descriptions surface as `# HELP` lines in
    /// [`MetricsSnapshot::to_prometheus`]; re-describing a name replaces
    /// the previous text.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .lock()
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// A point-in-time copy of every registered metric, sorted by id.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
            help: inner
                .help
                .iter()
                .map(|(name, text)| (name.clone(), text.clone()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by id.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge values, sorted by id.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histogram snapshots, sorted by id.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
    /// Per-name descriptions registered via [`MetricsRegistry::describe`],
    /// sorted by name.
    pub help: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one JSON object: counters and gauges as
    /// scalar maps, histograms with count/sum/max and derived percentiles.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(&id.render(&[])));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v:.3}", json_escape(&id.render(&[])));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_escape(&id.render(&[])),
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            );
        }
        out.push_str("\n  }\n}");
        out
    }

    /// The registered description for a metric name, if any.
    fn help_for(&self, name: &str) -> Option<&str> {
        self.help
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.help[i].1.as_str())
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `# HELP` line per described metric name and one `# TYPE` line
    /// per metric name, counters and gauges as single samples, histograms
    /// as cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let header = |out: &mut String, snap: &Self, name: &str, kind: &str| {
            if let Some(help) = snap.help_for(name) {
                let escaped = help.replace('\\', "\\\\").replace('\n', "\\n");
                let _ = writeln!(out, "# HELP {name} {escaped}");
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        for (id, v) in &self.counters {
            if typed.insert(&id.name) {
                header(&mut out, self, &id.name, "counter");
            }
            let _ = writeln!(out, "{} {v}", id.render(&[]));
        }
        for (id, v) in &self.gauges {
            if typed.insert(&id.name) {
                header(&mut out, self, &id.name, "gauge");
            }
            let _ = writeln!(out, "{} {v}", id.render(&[]));
        }
        for (id, h) in &self.histograms {
            if typed.insert(&id.name) {
                header(&mut out, self, &id.name, "histogram");
            }
            let bucket_id = MetricId {
                name: format!("{}_bucket", id.name),
                labels: id.labels.clone(),
            };
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cum += n;
                // Elide empty log2 buckets (other than +Inf) to keep the
                // exposition compact; cumulative values stay correct.
                if n == 0 && bucket_bound(i).is_some() {
                    continue;
                }
                let le = match bucket_bound(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "{} {cum}", bucket_id.render(&[("le", &le)]));
            }
            let _ = writeln!(out, "{}_sum{} {}", id.name, render_label_block(id), h.sum);
            let _ = writeln!(
                out,
                "{}_count{} {}",
                id.name,
                render_label_block(id),
                h.count
            );
        }
        out
    }
}

/// Renders only the `{...}` label block of an id (empty string if none).
fn render_label_block(id: &MetricId) -> String {
    let rendered = id.render(&[]);
    rendered[id.name.len()..].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.add(4);
        // Same name returns the same underlying cell.
        assert_eq!(reg.counter("requests_total").get(), 5);
        let g = reg.gauge_with("load", &[("kind", "avg")]);
        g.set(2.5);
        assert_eq!(reg.gauge_with("load", &[("kind", "avg")]).get(), 2.5);
        // Different labels are different metrics.
        reg.gauge_with("load", &[("kind", "max")]).set(9.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.len(), 2);
    }

    #[test]
    fn bind_counter_preserves_accumulated_value() {
        let owned = Counter::new();
        owned.add(7);
        let reg = MetricsRegistry::new();
        reg.bind_counter(MetricId::new("pool_hits_total"), &owned);
        owned.inc();
        assert_eq!(reg.counter("pool_hits_total").get(), 8);
    }

    #[test]
    fn bind_gauge_and_histogram_share_cells() {
        let reg = MetricsRegistry::new();
        let g = Gauge::new();
        g.set(3.0);
        reg.bind_gauge(MetricId::new("depth"), &g);
        g.set(5.0);
        assert_eq!(reg.gauge("depth").get(), 5.0);

        let h = Histogram::new();
        h.record(42);
        reg.bind_histogram(MetricId::new("lat_micros"), &h);
        h.record(7);
        assert_eq!(reg.histogram("lat_micros").count(), 2);
    }

    #[test]
    fn bucket_mapping_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1 << 20), 20);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_from_snapshot() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 100);
        assert_eq!(snap.sum, 5050);
        let p50 = snap.p50();
        // log2 buckets: the median of 1..=100 falls in bucket (32, 64];
        // interpolation keeps it in a sane band around the true 50.
        assert!((33..=64).contains(&p50), "p50 = {p50}");
        assert!(snap.p95() >= p50);
        assert!(snap.p99() >= snap.p95());
        assert!(snap.quantile(1.0) <= 100);
        assert_eq!(snap.quantile(0.0).min(1), 1);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn max_is_exact_not_bucket_rounded() {
        let h = Histogram::new();
        h.record(1000);
        assert_eq!(h.snapshot().max, 1000);
        assert!(h.snapshot().quantile(1.0) <= 1000);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter_with("hits_total", &[("cache", "query")]).add(3);
        reg.gauge("temperature").set(1.5);
        let h = reg.histogram_with("latency_micros", &[("config", "naive")]);
        for v in [1u64, 2, 100, 5000] {
            h.record(v);
        }
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hits_total counter"), "{text}");
        assert!(text.contains("hits_total{cache=\"query\"} 3"), "{text}");
        assert!(text.contains("# TYPE temperature gauge"), "{text}");
        assert!(text.contains("# TYPE latency_micros histogram"), "{text}");
        assert!(
            text.contains("latency_micros_bucket{config=\"naive\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("latency_micros_bucket{config=\"naive\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("latency_micros_sum{config=\"naive\"} 5103"),
            "{text}"
        );
        assert!(
            text.contains("latency_micros_count{config=\"naive\"} 4"),
            "{text}"
        );

        // Cumulative bucket counts never decrease and end at _count.
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("latency_micros_bucket") {
                let val: u64 = rest
                    .rsplit(' ')
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                assert!(val >= last, "bucket series must be cumulative: {text}");
                last = val;
                if rest.contains("+Inf") {
                    inf = Some(val);
                }
            }
        }
        assert_eq!(inf, Some(4), "+Inf bucket equals the sample count");

        // Every non-comment line is `name_or_labels value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            assert!(!name.is_empty(), "malformed line {line:?}");
            assert!(value.parse::<f64>().is_ok(), "malformed value in {line:?}");
        }
    }

    #[test]
    fn describe_emits_help_lines_before_type() {
        let reg = MetricsRegistry::new();
        reg.counter_with("hits_total", &[("cache", "query")]).add(3);
        reg.gauge("depth").set(2.0);
        reg.describe("hits_total", "Cache lookups answered from a stored result.");
        reg.describe("depth", "Current queue \\ depth\nacross workers.");
        let text = reg.snapshot().to_prometheus();
        assert!(
            text.contains("# HELP hits_total Cache lookups answered from a stored result."),
            "{text}"
        );
        // Help text is escaped for the exposition format.
        assert!(
            text.contains("# HELP depth Current queue \\\\ depth\\nacross workers."),
            "{text}"
        );
        let help_pos = text.find("# HELP hits_total").unwrap();
        let type_pos = text.find("# TYPE hits_total").unwrap();
        assert!(help_pos < type_pos, "{text}");
        // Undescribed metrics still get TYPE lines and only one HELP each.
        reg.counter("plain_total").inc();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE plain_total counter"), "{text}");
        assert!(!text.contains("# HELP plain_total"), "{text}");
        assert_eq!(text.matches("# HELP hits_total").count(), 1, "{text}");
    }

    #[test]
    fn json_snapshot_contains_percentiles() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").inc();
        let h = reg.histogram("lat");
        h.record(10);
        h.record(20);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a_total\": 1"), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"p50\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }

    #[test]
    fn label_values_are_escaped() {
        let id = MetricId::with_labels("m", &[("q", "a\"b\\c\nd")]);
        let rendered = id.render(&[]);
        assert_eq!(rendered, "m{q=\"a\\\"b\\\\c\\nd\"}");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
