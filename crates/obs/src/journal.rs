//! The flight recorder: per-lane lock-free event journals with causal
//! request stitching and Chrome-trace export.
//!
//! Aggregate metrics ([`crate::registry`]) answer "how is the system
//! doing"; the slow-query log answers "which queries were worst". Neither
//! can answer "what happened to *that* request, across which shards, in
//! what order" once the serve path makes per-request decisions (admit vs
//! shed, queue choice, direct/fanout/escaped routing, single-flight
//! collapse, deadline cuts). The journal records those decisions as
//! compact timestamped events:
//!
//! * [`FlightRecorder`] owns one bounded [`JournalRing`] per *lane*
//!   (conventionally: lane 0 for the submitting thread, one lane per
//!   worker). The serve path appends into its own lane, so the common
//!   case is a wait-free single-writer append with no cross-core
//!   contention. Appends from other threads into the same lane are
//!   tolerated (slot claiming is CAS-based); a lost claim drops the event
//!   and bumps the contention counter instead of spinning.
//! * Every event carries a [`RequestId`] minted at admission, so one
//!   request's events stitch into a single causal trace even when the
//!   evaluation fans out across shards.
//! * [`JournalSnapshot`] reads all lanes without stopping writers (a
//!   per-slot sequence-validation scheme rejects torn reads) and exports
//!   two ways: [`JournalSnapshot::to_chrome_trace`] emits Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing` (lanes as
//!   thread ids, evaluator spans as duration events, sheds and escapes as
//!   instants), and [`JournalSnapshot::timeline`] renders a plain-text
//!   causal timeline for one request, joinable against the
//!   [`SlowQuery`] log via the recorded id.
//!
//! Memory is strictly bounded: `lanes * capacity` slots of five `u64`s
//! each, allocated once. When a ring wraps, the oldest events are
//! overwritten and counted as dropped — recording never blocks, never
//! allocates, and costs exactly one clock read per event.

use crate::clock::Stopwatch;
use crate::registry::json_escape;
use crate::slowlog::SlowQuery;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one request across the serve path.
///
/// Minted at admission (`FlixServer::submit`) and threaded through the
/// worker loop, shard routing, evaluator, and cache, so every journal
/// event a request causes carries the same id. `RequestId::NONE` (raw 0)
/// tags events not attributable to a request (drain, admission-limit
/// changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The "no request" id used for system-level events.
    pub const NONE: RequestId = RequestId(0);

    /// Wraps a raw id. Real requests use ids >= 1; 0 is [`RequestId::NONE`].
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the [`RequestId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "-")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Shard payload sentinel: the cross-shard merge pseudo-evaluation.
pub const SHARD_MERGE: u64 = u64::MAX;
/// Shard payload sentinel: an unsharded (single-backend) evaluation.
pub const SHARD_NONE: u64 = u64::MAX - 1;

/// One journaled serve-path decision.
///
/// Kinds are compact on purpose: each encodes to a `(discriminant,
/// payload)` pair of `u64`s so a ring slot stays five words. Payload
/// semantics are per-kind (a worker index, a shard index, a result
/// count, ...); shard payloads may carry the [`SHARD_MERGE`] /
/// [`SHARD_NONE`] sentinels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The request passed admission control.
    Admitted,
    /// The request was shed; payload is the in-flight count at the time.
    Shed {
        /// In-flight requests observed when the shed decision was made.
        in_flight: u64,
    },
    /// The request was enqueued for a worker.
    Enqueued {
        /// Index of the worker whose queue accepted the request.
        worker: u64,
    },
    /// A worker dequeued the request.
    Dequeued {
        /// Index of the dequeuing worker.
        worker: u64,
    },
    /// Shard routing proved the query local: answered by one shard.
    RouteDirect {
        /// The shard that answered.
        shard: u64,
    },
    /// Shard routing chose an up-front cross-shard fan-out.
    RouteFanout {
        /// The request's home shard.
        shard: u64,
    },
    /// A local attempt escaped its shard and was re-run as a fan-out.
    RouteEscaped {
        /// The shard the evaluation escaped from.
        shard: u64,
    },
    /// An evaluator pass began.
    EvalStart {
        /// The shard being evaluated ([`SHARD_MERGE`] for the cross-shard
        /// merge, [`SHARD_NONE`] for an unsharded backend).
        shard: u64,
    },
    /// The matching evaluator pass finished.
    EvalEnd {
        /// Number of results the pass produced.
        results: u64,
    },
    /// The query cache answered from a stored result.
    CacheHit {
        /// Shard of the cache that hit ([`SHARD_NONE`] when unsharded).
        shard: u64,
    },
    /// The query cache had no usable entry.
    CacheMiss {
        /// Shard of the cache that missed ([`SHARD_NONE`] when unsharded).
        shard: u64,
    },
    /// TinyLFU admitted the new entry into a full cache.
    CacheAdmit,
    /// TinyLFU rejected the new entry (victim was more valuable).
    CacheReject,
    /// A cache victim was evicted to make room.
    CacheEvict,
    /// This request computed a result shared by single-flight followers.
    SfLeader {
        /// Number of follower requests that received the shared result.
        followers: u64,
    },
    /// This request attached to an identical in-flight computation.
    SfFollower {
        /// Raw [`RequestId`] of the leader computing the shared result.
        leader: u64,
    },
    /// The request's deadline expired mid-evaluation.
    DeadlineExpired {
        /// The total budget the deadline was created with.
        budget_micros: u64,
    },
    /// The server began draining.
    Drain,
    /// The adaptive admission controller changed the in-flight limit.
    LimitChange {
        /// The new admission limit.
        limit: u64,
    },
    /// A background index rebuild began.
    RebuildStart {
        /// Configuration discriminant chosen for the rebuild (serve-layer
        /// convention; opaque to the journal).
        config: u64,
    },
    /// The background rebuild finished building the new index.
    RebuildFinish {
        /// Wall-clock build time in microseconds.
        micros: u64,
    },
    /// A new index generation was swapped in under live traffic.
    Swap {
        /// The generation now serving new admissions.
        generation: u64,
    },
    /// Crash recovery replayed committed WAL batches.
    RecoveryReplay {
        /// Number of batches replayed over the snapshot.
        batches: u64,
    },
}

impl EventKind {
    /// Stable short name, used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admitted => "admitted",
            EventKind::Shed { .. } => "shed",
            EventKind::Enqueued { .. } => "enqueued",
            EventKind::Dequeued { .. } => "dequeued",
            EventKind::RouteDirect { .. } => "route_direct",
            EventKind::RouteFanout { .. } => "route_fanout",
            EventKind::RouteEscaped { .. } => "route_escaped",
            EventKind::EvalStart { .. } => "eval_start",
            EventKind::EvalEnd { .. } => "eval_end",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheAdmit => "cache_admit",
            EventKind::CacheReject => "cache_reject",
            EventKind::CacheEvict => "cache_evict",
            EventKind::SfLeader { .. } => "sf_leader",
            EventKind::SfFollower { .. } => "sf_follower",
            EventKind::DeadlineExpired { .. } => "deadline_expired",
            EventKind::Drain => "drain",
            EventKind::LimitChange { .. } => "limit_change",
            EventKind::RebuildStart { .. } => "rebuild_start",
            EventKind::RebuildFinish { .. } => "rebuild_finish",
            EventKind::Swap { .. } => "swap",
            EventKind::RecoveryReplay { .. } => "recovery_replay",
        }
    }

    /// Packs the kind into a `(discriminant, payload)` word pair.
    pub fn encode(self) -> (u64, u64) {
        match self {
            EventKind::Admitted => (0, 0),
            EventKind::Shed { in_flight } => (1, in_flight),
            EventKind::Enqueued { worker } => (2, worker),
            EventKind::Dequeued { worker } => (3, worker),
            EventKind::RouteDirect { shard } => (4, shard),
            EventKind::RouteFanout { shard } => (5, shard),
            EventKind::RouteEscaped { shard } => (6, shard),
            EventKind::EvalStart { shard } => (7, shard),
            EventKind::EvalEnd { results } => (8, results),
            EventKind::CacheHit { shard } => (9, shard),
            EventKind::CacheMiss { shard } => (10, shard),
            EventKind::CacheAdmit => (11, 0),
            EventKind::CacheReject => (12, 0),
            EventKind::CacheEvict => (13, 0),
            EventKind::SfLeader { followers } => (14, followers),
            EventKind::SfFollower { leader } => (15, leader),
            EventKind::DeadlineExpired { budget_micros } => (16, budget_micros),
            EventKind::Drain => (17, 0),
            EventKind::LimitChange { limit } => (18, limit),
            EventKind::RebuildStart { config } => (19, config),
            EventKind::RebuildFinish { micros } => (20, micros),
            EventKind::Swap { generation } => (21, generation),
            EventKind::RecoveryReplay { batches } => (22, batches),
        }
    }

    /// Unpacks a `(discriminant, payload)` pair; `None` for an unknown
    /// discriminant (a snapshot from a newer recorder simply skips it).
    pub fn decode(disc: u64, payload: u64) -> Option<EventKind> {
        Some(match disc {
            0 => EventKind::Admitted,
            1 => EventKind::Shed { in_flight: payload },
            2 => EventKind::Enqueued { worker: payload },
            3 => EventKind::Dequeued { worker: payload },
            4 => EventKind::RouteDirect { shard: payload },
            5 => EventKind::RouteFanout { shard: payload },
            6 => EventKind::RouteEscaped { shard: payload },
            7 => EventKind::EvalStart { shard: payload },
            8 => EventKind::EvalEnd { results: payload },
            9 => EventKind::CacheHit { shard: payload },
            10 => EventKind::CacheMiss { shard: payload },
            11 => EventKind::CacheAdmit,
            12 => EventKind::CacheReject,
            13 => EventKind::CacheEvict,
            14 => EventKind::SfLeader { followers: payload },
            15 => EventKind::SfFollower { leader: payload },
            16 => EventKind::DeadlineExpired {
                budget_micros: payload,
            },
            17 => EventKind::Drain,
            18 => EventKind::LimitChange { limit: payload },
            19 => EventKind::RebuildStart { config: payload },
            20 => EventKind::RebuildFinish { micros: payload },
            21 => EventKind::Swap {
                generation: payload,
            },
            22 => EventKind::RecoveryReplay { batches: payload },
            _ => return None,
        })
    }

    /// The payload as a named argument for exporters, if the kind has one.
    pub fn arg(self) -> Option<(&'static str, u64)> {
        match self {
            EventKind::Admitted
            | EventKind::CacheAdmit
            | EventKind::CacheReject
            | EventKind::CacheEvict
            | EventKind::Drain => None,
            EventKind::Shed { in_flight } => Some(("in_flight", in_flight)),
            EventKind::Enqueued { worker } | EventKind::Dequeued { worker } => {
                Some(("worker", worker))
            }
            EventKind::RouteDirect { shard }
            | EventKind::RouteFanout { shard }
            | EventKind::RouteEscaped { shard }
            | EventKind::EvalStart { shard }
            | EventKind::CacheHit { shard }
            | EventKind::CacheMiss { shard } => Some(("shard", shard)),
            EventKind::EvalEnd { results } => Some(("results", results)),
            EventKind::SfLeader { followers } => Some(("followers", followers)),
            EventKind::SfFollower { leader } => Some(("leader", leader)),
            EventKind::DeadlineExpired { budget_micros } => Some(("budget_micros", budget_micros)),
            EventKind::LimitChange { limit } => Some(("limit", limit)),
            EventKind::RebuildStart { config } => Some(("config", config)),
            EventKind::RebuildFinish { micros } => Some(("micros", micros)),
            EventKind::Swap { generation } => Some(("generation", generation)),
            EventKind::RecoveryReplay { batches } => Some(("batches", batches)),
        }
    }
}

/// Renders a shard payload, mapping the sentinels to readable names.
fn shard_label(shard: u64) -> String {
    match shard {
        SHARD_MERGE => "merge".to_string(),
        SHARD_NONE => "local".to_string(),
        s => format!("shard{s}"),
    }
}

/// One slot: a sequence word plus the four event words.
///
/// The sequence word encodes the slot's lifecycle: `0` = never written,
/// `2t + 1` = ticket `t` is being written, `2t + 2` = ticket `t`'s event
/// is complete. The value is strictly increasing over a slot's lifetime,
/// which is what lets readers validate against torn reads (see
/// [`JournalRing::collect`]).
#[derive(Debug)]
struct Slot {
    state: AtomicU64,
    micros: AtomicU64,
    request: AtomicU64,
    disc: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            state: AtomicU64::new(0),
            micros: AtomicU64::new(0),
            request: AtomicU64::new(0),
            disc: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// A bounded, lock-free event ring for one lane.
///
/// Writers take a ticket from `head` and claim the ticket's slot by CAS
/// on the slot's sequence word. The intended topology is single-writer
/// (one lane per worker thread), where the CAS never fails and the append
/// is wait-free; concurrent writers are still safe — a lost claim means
/// another writer overwrote the slot first, and the event is counted in
/// [`JournalRing::contended`] and dropped rather than retried, keeping
/// the path wait-free under any topology.
///
/// When the ring wraps, old events are overwritten (newest-wins);
/// [`JournalRing::dropped`] accounts for both overwrites and contention
/// losses.
#[derive(Debug)]
pub struct JournalRing {
    slots: Vec<Slot>,
    head: AtomicU64,
    contended: AtomicU64,
}

impl JournalRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one event. Returns `false` if the slot claim was lost to a
    /// concurrent writer (the event is dropped, not retried).
    pub fn append(&self, micros: u64, request: RequestId, kind: EventKind) -> bool {
        let cap = self.slots.len() as u64;
        let ticket = self.head.fetch_add(1, Ordering::SeqCst);
        let idx = usize::try_from(ticket & (cap - 1)).unwrap_or(0);
        // The slot last completed ticket `ticket - cap` (or is untouched on
        // the first lap), so its expected sequence word is exactly known.
        let expected = if ticket >= cap {
            2 * (ticket - cap) + 2
        } else {
            0
        };
        let slot = &self.slots[idx];
        if slot
            .state
            .compare_exchange(expected, 2 * ticket + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.contended.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        let (disc, payload) = kind.encode();
        slot.micros.store(micros, Ordering::SeqCst);
        slot.request.store(request.raw(), Ordering::SeqCst);
        slot.disc.store(disc, Ordering::SeqCst);
        slot.payload.store(payload, Ordering::SeqCst);
        slot.state.store(2 * ticket + 2, Ordering::SeqCst);
        true
    }

    /// Total append attempts so far (including dropped ones).
    pub fn logged(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Events lost: overwritten by ring wrap plus contention losses.
    pub fn dropped(&self) -> u64 {
        let head = self.head.load(Ordering::SeqCst);
        let overwritten = head.saturating_sub(self.slots.len() as u64);
        overwritten.saturating_add(self.contended.load(Ordering::SeqCst))
    }

    /// Appends lost to concurrent slot claims.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::SeqCst)
    }

    /// Reads every complete event currently in the ring without stopping
    /// writers. Each slot is validated by re-reading its sequence word:
    /// since the word strictly increases and any writer moves it through
    /// an odd "writing" value first, two equal even reads bracket a
    /// stable set of event words — torn reads are rejected, never
    /// surfaced. Returns `(ticket, event)` pairs in ticket order.
    fn collect(&self, lane: usize) -> Vec<(u64, JournalEvent)> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.state.load(Ordering::SeqCst);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let micros = slot.micros.load(Ordering::SeqCst);
            let request = slot.request.load(Ordering::SeqCst);
            let disc = slot.disc.load(Ordering::SeqCst);
            let payload = slot.payload.load(Ordering::SeqCst);
            let s2 = slot.state.load(Ordering::SeqCst);
            if s1 != s2 {
                continue; // overwritten while reading: reject the torn view
            }
            let ticket = (s1 - 2) / 2;
            if let Some(kind) = EventKind::decode(disc, payload) {
                out.push((
                    ticket,
                    JournalEvent {
                        micros,
                        lane,
                        seq: ticket,
                        request: RequestId::new(request),
                        kind,
                    },
                ));
            }
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out
    }
}

/// One decoded journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Microseconds since the recorder's epoch.
    pub micros: u64,
    /// Lane (ring) index the event was appended to.
    pub lane: usize,
    /// Per-lane append sequence number.
    pub seq: u64,
    /// Request the event belongs to ([`RequestId::NONE`] for system events).
    pub request: RequestId,
    /// What happened.
    pub kind: EventKind,
}

/// The flight recorder: one [`JournalRing`] per lane plus a shared epoch.
///
/// Lane 0 is conventionally the submitting thread ("submit"); lanes
/// `1..=workers` belong to worker threads (see
/// [`FlightRecorder::for_workers`]). Recording costs one clock read (the
/// epoch stopwatch) and one wait-free ring append; when no recorder is
/// installed the serve path performs neither.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Stopwatch,
    lane_names: Vec<String>,
    lanes: Vec<JournalRing>,
}

impl FlightRecorder {
    /// A recorder with one named lane per entry, each holding up to
    /// `capacity_per_lane` events.
    pub fn new(lane_names: Vec<String>, capacity_per_lane: usize) -> Self {
        let lanes = lane_names
            .iter()
            .map(|_| JournalRing::new(capacity_per_lane))
            .collect();
        Self {
            epoch: Stopwatch::start(),
            lane_names,
            lanes,
        }
    }

    /// The standard serve-path topology: lane 0 `submit`, then one
    /// `worker-i` lane per worker.
    pub fn for_workers(workers: usize, capacity_per_lane: usize) -> Self {
        let mut names = Vec::with_capacity(workers + 1);
        names.push("submit".to_string());
        for w in 0..workers {
            names.push(format!("worker-{w}"));
        }
        Self::new(names, capacity_per_lane)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Microseconds since the recorder started.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed_micros()
    }

    /// Records one event on `lane` (out-of-range lanes are ignored).
    pub fn record(&self, lane: usize, request: RequestId, kind: EventKind) {
        if let Some(ring) = self.lanes.get(lane) {
            ring.append(self.epoch.elapsed_micros(), request, kind);
        }
    }

    /// Records one event with a caller-captured timestamp (from
    /// [`Self::now_micros`]). For events whose causal moment precedes the
    /// point where recording becomes possible — e.g. a queue handoff is
    /// timestamped *before* the send, so the receiver's own clock read
    /// can never sort before it.
    pub fn record_at(&self, lane: usize, micros: u64, request: RequestId, kind: EventKind) {
        if let Some(ring) = self.lanes.get(lane) {
            ring.append(micros, request, kind);
        }
    }

    /// A copyable handle pre-bound to a lane and request, for threading
    /// through call stacks that should not know recorder topology.
    pub fn handle(&self, lane: usize, request: RequestId) -> JournalHandle<'_> {
        JournalHandle {
            recorder: self,
            lane,
            request,
        }
    }

    /// Total events appended across all lanes (including later-dropped).
    pub fn events_logged(&self) -> u64 {
        self.lanes.iter().map(|l| l.logged()).sum()
    }

    /// Total events lost across all lanes (ring wrap + contention).
    pub fn events_dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped()).sum()
    }

    /// Snapshots every lane without stopping writers, merging all events
    /// into one time-ordered view.
    pub fn snapshot(&self) -> JournalSnapshot {
        let mut events = Vec::new();
        for (lane, ring) in self.lanes.iter().enumerate() {
            events.extend(ring.collect(lane).into_iter().map(|(_, e)| e));
        }
        events.sort_by_key(|e| (e.micros, e.lane, e.seq));
        JournalSnapshot {
            lane_names: self.lane_names.clone(),
            events,
            logged: self.events_logged(),
            dropped: self.events_dropped(),
        }
    }
}

/// A copyable recorder handle pre-bound to one lane and one request.
#[derive(Debug, Clone, Copy)]
pub struct JournalHandle<'a> {
    recorder: &'a FlightRecorder,
    lane: usize,
    request: RequestId,
}

impl<'a> JournalHandle<'a> {
    /// Records `kind` on the bound lane, tagged with the bound request.
    pub fn event(&self, kind: EventKind) {
        self.recorder.record(self.lane, self.request, kind);
    }

    /// The bound request id.
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// A handle for the same lane bound to a different request.
    pub fn for_request(&self, request: RequestId) -> JournalHandle<'a> {
        JournalHandle {
            recorder: self.recorder,
            lane: self.lane,
            request,
        }
    }
}

/// A consistent, time-ordered view of every lane's events.
#[derive(Debug, Clone)]
pub struct JournalSnapshot {
    /// Lane names, indexed by [`JournalEvent::lane`].
    pub lane_names: Vec<String>,
    /// All decoded events, sorted by `(micros, lane, seq)`.
    pub events: Vec<JournalEvent>,
    /// Total events appended at snapshot time.
    pub logged: u64,
    /// Total events lost at snapshot time.
    pub dropped: u64,
}

impl JournalSnapshot {
    /// All events belonging to one request, in time order.
    pub fn request_events(&self, id: RequestId) -> Vec<JournalEvent> {
        self.events
            .iter()
            .filter(|e| e.request == id)
            .copied()
            .collect()
    }

    /// The distinct non-NONE request ids present, in first-seen order.
    pub fn request_ids(&self) -> Vec<RequestId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if !e.request.is_none() && seen.insert(e.request) {
                out.push(e.request);
            }
        }
        out
    }

    /// Exports Chrome trace-event JSON, loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Lanes become thread ids under pid 1 (named via `M` metadata
    /// events). Evaluator passes become `X` duration events by pairing
    /// each lane's `eval_start`/`eval_end` in sequence order; the
    /// enqueue→dequeue wait becomes a `queued` duration event on the
    /// dequeuing lane; every other event is an `i` instant carrying its
    /// request id and payload as args. Timestamps are the journal's
    /// epoch-relative microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };
        for (lane, name) in self.lane_names.iter().enumerate() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(name)
                ),
            );
        }
        // Pending eval_start per lane (evaluator passes nest per lane), and
        // the last enqueue time per request (for the queued-wait span).
        let mut pending_eval: Vec<Vec<&JournalEvent>> = vec![Vec::new(); self.lane_names.len()];
        let mut enqueued_at: std::collections::HashMap<RequestId, u64> =
            std::collections::HashMap::new();
        let mut by_lane: Vec<Vec<&JournalEvent>> = vec![Vec::new(); self.lane_names.len()];
        for e in &self.events {
            if e.lane < by_lane.len() {
                by_lane[e.lane].push(e);
            }
        }
        for lane_events in &mut by_lane {
            lane_events.sort_by_key(|e| e.seq);
        }
        for lane_events in &by_lane {
            for e in lane_events {
                match e.kind {
                    EventKind::EvalStart { .. } => {
                        if let Some(stack) = pending_eval.get_mut(e.lane) {
                            stack.push(e);
                        }
                    }
                    EventKind::EvalEnd { results } => {
                        let start = pending_eval.get_mut(e.lane).and_then(|s| s.pop());
                        if let Some(start) = start {
                            let shard = match start.kind {
                                EventKind::EvalStart { shard } => shard,
                                _ => SHARD_NONE,
                            };
                            let dur = e.micros.saturating_sub(start.micros);
                            push(
                                &mut out,
                                &mut first,
                                format!(
                                    "{{\"name\":\"eval {}\",\"cat\":\"eval\",\"ph\":\"X\",\
                                     \"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{dur},\
                                     \"args\":{{\"request\":{},\"results\":{results}}}}}",
                                    shard_label(shard),
                                    e.lane,
                                    start.micros,
                                    e.request.raw(),
                                ),
                            );
                        }
                    }
                    EventKind::Enqueued { .. } => {
                        enqueued_at.insert(e.request, e.micros);
                        push(&mut out, &mut first, instant_json(e));
                    }
                    EventKind::Dequeued { .. } => {
                        if let Some(t0) = enqueued_at.remove(&e.request) {
                            let dur = e.micros.saturating_sub(t0);
                            push(
                                &mut out,
                                &mut first,
                                format!(
                                    "{{\"name\":\"queued\",\"cat\":\"queue\",\"ph\":\"X\",\
                                     \"pid\":1,\"tid\":{},\"ts\":{t0},\"dur\":{dur},\
                                     \"args\":{{\"request\":{}}}}}",
                                    e.lane,
                                    e.request.raw(),
                                ),
                            );
                        }
                        push(&mut out, &mut first, instant_json(e));
                    }
                    _ => push(&mut out, &mut first, instant_json(e)),
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// A plain-text causal timeline for one request: every event the
    /// request produced, in time order, with lane and payload.
    pub fn timeline(&self, id: RequestId) -> String {
        let mut out = String::new();
        for e in self.request_events(id) {
            let lane = self
                .lane_names
                .get(e.lane)
                .map(String::as_str)
                .unwrap_or("?");
            let _ = write!(
                out,
                "{:>10}us  {:<10}  {:<16}",
                e.micros,
                lane,
                e.kind.name()
            );
            match e.kind {
                EventKind::RouteDirect { shard }
                | EventKind::RouteFanout { shard }
                | EventKind::RouteEscaped { shard }
                | EventKind::EvalStart { shard }
                | EventKind::CacheHit { shard }
                | EventKind::CacheMiss { shard } => {
                    let _ = write!(out, "  {}", shard_label(shard));
                }
                _ => {
                    if let Some((key, value)) = e.kind.arg() {
                        let _ = write!(out, "  {key}={value}");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Joins the slow-query log against the journal: for each slow query
    /// that carries a request id, renders its full causal timeline.
    pub fn worst_timelines(&self, slow: &[SlowQuery]) -> String {
        let mut out = String::new();
        for entry in slow {
            if entry.request.is_none() {
                continue;
            }
            let _ = writeln!(
                out,
                "== {} · {}us · {}",
                entry.request,
                entry.trace.total_micros(),
                entry.trace.label
            );
            out.push_str(&self.timeline(entry.request));
        }
        out
    }
}

/// Renders one event as a Chrome `i` (instant) trace event.
fn instant_json(e: &JournalEvent) -> String {
    let mut args = format!("\"request\":{}", e.request.raw());
    if let Some((key, value)) = e.kind.arg() {
        let _ = write!(args, ",\"{key}\":{value}");
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
         \"tid\":{},\"ts\":{},\"args\":{{{args}}}}}",
        e.kind.name(),
        e.lane,
        e.micros,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_every_kind() {
        let kinds = [
            EventKind::Admitted,
            EventKind::Shed { in_flight: 7 },
            EventKind::Enqueued { worker: 3 },
            EventKind::Dequeued { worker: 3 },
            EventKind::RouteDirect { shard: 1 },
            EventKind::RouteFanout { shard: 2 },
            EventKind::RouteEscaped { shard: 0 },
            EventKind::EvalStart { shard: SHARD_MERGE },
            EventKind::EvalEnd { results: 42 },
            EventKind::CacheHit { shard: SHARD_NONE },
            EventKind::CacheMiss { shard: 5 },
            EventKind::CacheAdmit,
            EventKind::CacheReject,
            EventKind::CacheEvict,
            EventKind::SfLeader { followers: 4 },
            EventKind::SfFollower { leader: 9 },
            EventKind::DeadlineExpired { budget_micros: 500 },
            EventKind::Drain,
            EventKind::LimitChange { limit: 16 },
            EventKind::RebuildStart { config: 2 },
            EventKind::RebuildFinish { micros: 1234 },
            EventKind::Swap { generation: 3 },
            EventKind::RecoveryReplay { batches: 6 },
        ];
        for kind in kinds {
            let (disc, payload) = kind.encode();
            assert_eq!(EventKind::decode(disc, payload), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::decode(999, 0), None);
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let ring = JournalRing::new(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20u64 {
            assert!(ring.append(i, RequestId::new(1), EventKind::LimitChange { limit: i }));
        }
        assert_eq!(ring.logged(), 20);
        assert_eq!(ring.dropped(), 12); // 20 appends into 8 slots
        assert_eq!(ring.contended(), 0);
        let events = ring.collect(0);
        let limits: Vec<u64> = events
            .iter()
            .map(|(_, e)| match e.kind {
                EventKind::LimitChange { limit } => limit,
                _ => u64::MAX,
            })
            .collect();
        assert_eq!(limits, (12..20).collect::<Vec<u64>>());
        // Tickets come back in append order.
        let tickets: Vec<u64> = events.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn recorder_snapshot_merges_lanes_in_time_order() {
        let rec = FlightRecorder::for_workers(2, 64);
        assert_eq!(rec.lanes(), 3);
        let id = RequestId::new(1);
        rec.record(0, id, EventKind::Admitted);
        rec.record(0, id, EventKind::Enqueued { worker: 1 });
        rec.record(2, id, EventKind::Dequeued { worker: 1 });
        rec.record(2, id, EventKind::EvalStart { shard: SHARD_NONE });
        rec.record(2, id, EventKind::EvalEnd { results: 3 });
        let snap = rec.snapshot();
        assert_eq!(snap.lane_names[0], "submit");
        assert_eq!(snap.lane_names[2], "worker-1");
        assert_eq!(snap.logged, 5);
        assert_eq!(snap.dropped, 0);
        let events = snap.request_events(id);
        assert_eq!(events.len(), 5);
        // Time-ordered (monotone micros).
        for pair in events.windows(2) {
            assert!(pair[0].micros <= pair[1].micros);
        }
        assert_eq!(snap.request_ids(), vec![id]);
    }

    #[test]
    fn chrome_export_pairs_eval_spans_and_names_lanes() {
        let rec = FlightRecorder::for_workers(1, 64);
        let id = RequestId::new(7);
        rec.record(0, id, EventKind::Admitted);
        rec.record(0, id, EventKind::Enqueued { worker: 0 });
        rec.record(1, id, EventKind::Dequeued { worker: 0 });
        rec.record(1, id, EventKind::EvalStart { shard: 2 });
        rec.record(1, id, EventKind::EvalEnd { results: 11 });
        rec.record(1, id, EventKind::RouteDirect { shard: 2 });
        let json = rec.snapshot().to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"eval shard2\""));
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"name\":\"submit\""));
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"request\":7"));
    }

    #[test]
    fn timeline_renders_request_events_with_lanes() {
        let rec = FlightRecorder::for_workers(1, 64);
        let id = RequestId::new(3);
        rec.record(0, id, EventKind::Admitted);
        rec.record(1, id, EventKind::RouteFanout { shard: 0 });
        rec.record(0, RequestId::new(4), EventKind::Admitted);
        let text = rec.snapshot().timeline(id);
        assert!(text.contains("admitted"));
        assert!(text.contains("route_fanout"));
        assert!(text.contains("submit"));
        assert!(text.contains("shard0"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn request_id_display_and_sentinel() {
        assert!(RequestId::NONE.is_none());
        assert_eq!(RequestId::NONE.to_string(), "-");
        let id = RequestId::new(12);
        assert!(!id.is_none());
        assert_eq!(id.raw(), 12);
        assert_eq!(id.to_string(), "r12");
    }
}
