//! `flixobs` — query-path observability for the FliX framework.
//!
//! The build phase has had a report layer ([`flix::report`]) since the
//! parallel-build work; this crate gives the *serving* side the same
//! visibility, which the paper's §7 self-tuning loop ("take statistics on
//! the query load into account") depends on:
//!
//! * [`MetricsRegistry`] — a registry of named [`Counter`]s, [`Gauge`]s,
//!   and log2-bucketed latency [`Histogram`]s. Handles are `Arc`-backed
//!   atomics: updating a metric is a single wait-free atomic operation;
//!   the registry mutex is touched only at registration and snapshot time.
//! * [`QueryTrace`] — per-query timed spans (queue pop → meta-index block
//!   fetch → link expansion) with the evaluator's counters attached to
//!   each span.
//! * [`SlowQueryLog`] — a fixed-capacity buffer that retains the N worst
//!   traces by latency, so the outliers that matter for tuning survive
//!   aggregation.
//! * [`FlightRecorder`] — a per-lane bounded event journal (the "flight
//!   recorder") capturing every per-request serve-path decision —
//!   admit/shed, queueing, shard routing, evaluator spans, cache
//!   outcomes, single-flight roles, deadline expiry — tagged with a
//!   [`RequestId`] so one request's events reconstruct into a causal
//!   trace, exportable as Chrome trace-event JSON or a text timeline.
//! * [`Stopwatch`] — the one sanctioned wall-clock source. The `flixcheck`
//!   lint flags `Instant::now()` anywhere else in the workspace, so ad-hoc
//!   timing cannot bypass this layer. [`Deadline`] builds per-request time
//!   budgets on top of it for the serving path.
//!
//! Snapshots export two ways: [`MetricsSnapshot::to_json`] for the bench
//! trajectory files and [`MetricsSnapshot::to_prometheus`] for a
//! Prometheus-style text exposition.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Wall-clock measurement: the workspace's only `Instant::now` call site.
pub mod clock;
/// The flight recorder: per-lane event journals with causal request
/// stitching, Chrome-trace export, and text timelines.
pub mod journal;
/// Counters, gauges, histograms, the registry, and snapshot export.
pub mod registry;
/// The fixed-capacity worst-N slow-query log.
pub mod slowlog;
/// Per-query timed spans with evaluator counters attached.
pub mod trace;

pub use clock::{Deadline, Stopwatch};
pub use journal::{
    EventKind, FlightRecorder, JournalEvent, JournalHandle, JournalRing, JournalSnapshot,
    RequestId, SHARD_MERGE, SHARD_NONE,
};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricId, MetricsRegistry, MetricsSnapshot,
};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use trace::{QueryTrace, Span, SpanCounters, SpanStage, StageTotals};
