//! The workspace's single wall-clock source.
//!
//! Every timing in the workspace goes through [`Stopwatch`]; the
//! `flixcheck` `instant-now` lint flags any other `Instant::now()` call so
//! measurements cannot silently bypass the observability layer (and so
//! there is exactly one place to patch if time ever needs to be mocked).

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
///
/// ```
/// let sw = flixobs::Stopwatch::start();
/// let _micros: u64 = sw.elapsed_micros();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed whole microseconds (saturating at `u64::MAX`).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_micros();
        let b = sw.elapsed_micros();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
