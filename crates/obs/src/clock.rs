//! The workspace's single wall-clock source.
//!
//! Every timing in the workspace goes through [`Stopwatch`]; the
//! `flixcheck` `instant-now` lint flags any other `Instant::now()` call so
//! measurements cannot silently bypass the observability layer (and so
//! there is exactly one place to patch if time ever needs to be mocked).

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
///
/// ```
/// let sw = flixobs::Stopwatch::start();
/// let _micros: u64 = sw.elapsed_micros();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed whole microseconds (saturating at `u64::MAX`).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A per-request time budget anchored at a [`Stopwatch`].
///
/// A `Deadline` is cheap to copy and cheap to check: callers poll
/// [`Deadline::expired`] at natural loop boundaries (one clock read per
/// poll) instead of arming timers. The evaluator threads a deadline
/// through its priority-queue loop so long-running queries stop at the
/// budget boundary and return the partial, distance-ordered prefix
/// produced so far.
///
/// ```
/// let d = flixobs::Deadline::within_micros(5_000_000);
/// assert!(!d.expired());
/// assert!(d.remaining_micros() <= 5_000_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    clock: Stopwatch,
    budget_micros: u64,
}

impl Deadline {
    /// A deadline `budget_micros` from now.
    pub fn within_micros(budget_micros: u64) -> Self {
        Self {
            clock: Stopwatch::start(),
            budget_micros,
        }
    }

    /// The total budget this deadline was created with.
    pub fn budget_micros(&self) -> u64 {
        self.budget_micros
    }

    /// Whether the budget has been spent.
    pub fn expired(&self) -> bool {
        self.clock.elapsed_micros() >= self.budget_micros
    }

    /// Microseconds left before expiry (0 once expired).
    pub fn remaining_micros(&self) -> u64 {
        self.budget_micros
            .saturating_sub(self.clock.elapsed_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_micros();
        let b = sw.elapsed_micros();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn zero_budget_deadline_is_expired() {
        let d = Deadline::within_micros(0);
        assert!(d.expired());
        assert_eq!(d.remaining_micros(), 0);
        assert_eq!(d.budget_micros(), 0);
    }

    #[test]
    fn generous_deadline_is_not_expired() {
        let d = Deadline::within_micros(60_000_000);
        assert!(!d.expired());
        assert!(d.remaining_micros() > 0);
    }
}
