//! Per-query traces: timed spans through the evaluator's stages.
//!
//! A [`QueryTrace`] records the inner life of one priority-queue
//! evaluation: each pop from the queue, each meta-index block fetch, each
//! link-expansion step becomes a [`Span`] carrying its wall-clock window
//! and the evaluator counters charged during it. Spans are capped at a
//! fixed capacity (queries can pop thousands of entries); once full, new
//! spans only bump a dropped-span count — but per-stage *totals* are
//! accumulated unconditionally, so [`StageTotals`] stays exact no matter
//! how long the query ran.
//!
//! Traces produced on the serve path are tagged with the request's
//! [`RequestId`] (see [`QueryTrace::tag_request`]), so a slow-log entry
//! can be joined against the flight recorder's exported journal.

use crate::journal::RequestId;

/// Which evaluator stage a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanStage {
    /// Popping the best entry off the priority queue, including the §5.1
    /// entry-point subsumption check.
    QueuePop,
    /// Materializing a result block from the meta-document's local index
    /// (the "DB round-trip" of the paper's cost model).
    BlockFetch,
    /// Expanding runtime links out of the current meta-document.
    LinkExpand,
}

impl SpanStage {
    /// Stable lower-case name (used in exports and metric labels).
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::QueuePop => "queue_pop",
            SpanStage::BlockFetch => "block_fetch",
            SpanStage::LinkExpand => "link_expand",
        }
    }

    /// All stages, in evaluation order.
    pub const ALL: [SpanStage; 3] = [
        SpanStage::QueuePop,
        SpanStage::BlockFetch,
        SpanStage::LinkExpand,
    ];

    fn index(self) -> usize {
        match self {
            SpanStage::QueuePop => 0,
            SpanStage::BlockFetch => 1,
            SpanStage::LinkExpand => 2,
        }
    }
}

/// Evaluator counters charged during one span (a delta, not a running
/// total). Mirrors `flix::PeeStats` without depending on the flix crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Queue entries popped.
    pub entries_popped: u64,
    /// Entries dropped by the §5.1 subsumption check.
    pub entries_subsumed: u64,
    /// Index rows scanned while materializing result blocks.
    pub rows_scanned: u64,
    /// Runtime links followed.
    pub links_expanded: u64,
}

impl SpanCounters {
    /// Adds another delta into this one.
    pub fn absorb(&mut self, other: &SpanCounters) {
        self.entries_popped += other.entries_popped;
        self.entries_subsumed += other.entries_subsumed;
        self.rows_scanned += other.rows_scanned;
        self.links_expanded += other.links_expanded;
    }
}

/// One timed window inside a query, relative to the trace's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The evaluator stage this span covers.
    pub stage: SpanStage,
    /// Offset from the start of the trace, in microseconds.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Counters charged during the span.
    pub counters: SpanCounters,
}

/// Always-exact per-stage aggregates (kept even when spans are dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Number of spans recorded for the stage.
    pub spans: u64,
    /// Total microseconds spent in the stage.
    pub micros: u64,
    /// Sum of all counters charged in the stage.
    pub counters: SpanCounters,
}

/// Default cap on retained spans per trace.
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

/// A per-query trace: retained spans up to a capacity, plus exact
/// per-stage totals and the query's total latency.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Free-form description of the query (axis, tags, config…).
    pub label: String,
    spans: Vec<Span>,
    capacity: usize,
    dropped: u64,
    totals: [StageTotals; 3],
    total_micros: u64,
    request: RequestId,
}

impl QueryTrace {
    /// An empty trace with the default span capacity.
    pub fn new(label: &str) -> Self {
        Self::with_capacity(label, DEFAULT_SPAN_CAPACITY)
    }

    /// An empty trace retaining at most `capacity` spans.
    pub fn with_capacity(label: &str, capacity: usize) -> Self {
        Self {
            label: label.to_string(),
            spans: Vec::new(),
            capacity,
            dropped: 0,
            totals: [StageTotals::default(); 3],
            total_micros: 0,
            request: RequestId::NONE,
        }
    }

    /// Tags the trace with the serve-path request that produced it, so it
    /// can be joined against the flight recorder's journal.
    pub fn tag_request(&mut self, request: RequestId) {
        self.request = request;
    }

    /// The request this trace belongs to ([`RequestId::NONE`] when the
    /// trace was not produced by the serve path).
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// Records one span. Past capacity the span itself is dropped (the
    /// dropped count grows), but the stage totals always absorb it.
    pub fn record(
        &mut self,
        stage: SpanStage,
        start_micros: u64,
        duration_micros: u64,
        counters: SpanCounters,
    ) {
        let t = &mut self.totals[stage.index()];
        t.spans += 1;
        t.micros += duration_micros;
        t.counters.absorb(&counters);
        if self.spans.len() < self.capacity {
            self.spans.push(Span {
                stage,
                start_micros,
                duration_micros,
                counters,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Sets the query's end-to-end latency.
    pub fn finish(&mut self, total_micros: u64) {
        self.total_micros = total_micros;
    }

    /// End-to-end latency in microseconds (0 until [`QueryTrace::finish`]).
    pub fn total_micros(&self) -> u64 {
        self.total_micros
    }

    /// Retained spans, in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans recorded past capacity (not retained, still in the totals).
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    /// Exact totals for one stage.
    pub fn stage_totals(&self, stage: SpanStage) -> StageTotals {
        self.totals[stage.index()]
    }

    /// Sum of counters across every stage.
    pub fn counters(&self) -> SpanCounters {
        let mut sum = SpanCounters::default();
        for t in &self.totals {
            sum.absorb(&t.counters);
        }
        sum
    }

    /// One-line human rendering: label, latency, per-stage breakdown.
    pub fn summary(&self) -> String {
        let mut out = format!("{} {}us", self.label, self.total_micros);
        for stage in SpanStage::ALL {
            let t = self.stage_totals(stage);
            if t.spans > 0 {
                out.push_str(&format!(" {}={}us/{}", stage.name(), t.micros, t.spans));
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!(" (+{} spans dropped)", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(popped: u64, rows: u64) -> SpanCounters {
        SpanCounters {
            entries_popped: popped,
            entries_subsumed: 0,
            rows_scanned: rows,
            links_expanded: 0,
        }
    }

    #[test]
    fn spans_and_totals_accumulate() {
        let mut trace = QueryTrace::new("q");
        trace.record(SpanStage::QueuePop, 0, 5, counters(1, 0));
        trace.record(SpanStage::BlockFetch, 5, 20, counters(0, 40));
        trace.record(SpanStage::BlockFetch, 30, 10, counters(0, 2));
        trace.finish(42);
        assert_eq!(trace.spans().len(), 3);
        assert_eq!(trace.total_micros(), 42);
        let fetch = trace.stage_totals(SpanStage::BlockFetch);
        assert_eq!(fetch.spans, 2);
        assert_eq!(fetch.micros, 30);
        assert_eq!(fetch.counters.rows_scanned, 42);
        assert_eq!(trace.counters().entries_popped, 1);
        assert_eq!(trace.stage_totals(SpanStage::LinkExpand).spans, 0);
    }

    #[test]
    fn capacity_drops_spans_but_not_totals() {
        let mut trace = QueryTrace::with_capacity("q", 2);
        for i in 0..5 {
            trace.record(SpanStage::QueuePop, i, 1, counters(1, 0));
        }
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.dropped_spans(), 3);
        let pops = trace.stage_totals(SpanStage::QueuePop);
        assert_eq!(pops.spans, 5);
        assert_eq!(pops.micros, 5);
        assert_eq!(pops.counters.entries_popped, 5);
        assert!(trace.summary().contains("+3 spans dropped"));
    }

    #[test]
    fn summary_mentions_active_stages_only() {
        let mut trace = QueryTrace::new("find//sec");
        trace.record(SpanStage::QueuePop, 0, 3, counters(1, 0));
        trace.finish(9);
        let s = trace.summary();
        assert!(s.contains("find//sec"), "{s}");
        assert!(s.contains("queue_pop=3us/1"), "{s}");
        assert!(!s.contains("block_fetch"), "{s}");
    }
}
