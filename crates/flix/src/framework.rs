//! The build phase: from a sealed collection to a queryable framework.

use crate::config::{BuildOptions, FlixConfig, StrategyKind};
use crate::mdb::{build_meta_documents, plan_build_order};
use crate::meta::{MetaDocument, MetaIndex};
use crate::report::{BuildReport, MetaBuildReport};
use flixobs::Stopwatch;
use graphcore::{pool, NodeId};
use std::sync::Arc;
use std::time::Duration;
use xmlgraph::CollectionGraph;

/// Output of one per-meta build job: everything `build_with` needs to merge
/// the meta document into the framework, independent of build order.
struct BuiltMeta {
    /// Local-to-global node mapping of the meta document.
    mapping: Vec<NodeId>,
    index: MetaIndex,
    /// PPO-removed edges, already translated to global ids.
    extra_links: Vec<(NodeId, NodeId)>,
    report: MetaBuildReport,
}

/// Builds one meta document's index. Pure with respect to the framework:
/// reads only the shared collection graph, so jobs for disjoint node sets
/// can run on any thread in any order and still produce identical output.
fn build_one(
    graph: &CollectionGraph,
    nodes: &[NodeId],
    pinned: Option<StrategyKind>,
    opts: &BuildOptions,
    hopi_threads: usize,
) -> BuiltMeta {
    let started = Stopwatch::start();
    let (sub, mapping) = graph.graph.induced_subgraph(nodes);
    let labels: Vec<u32> = mapping.iter().map(|&g| graph.tag_of(g)).collect();
    let kind = pinned.unwrap_or_else(|| opts.selector.select(&sub));
    let edges = sub.edge_count();
    let (index, extra, stages) =
        MetaIndex::build_with_threads(kind, &sub, &labels, opts.apex_refine_rounds, hopi_threads);
    let extra_links: Vec<(NodeId, NodeId)> = extra
        .into_iter()
        .map(|(lu, lv)| (mapping[lu as usize], mapping[lv as usize]))
        .collect();
    let report = MetaBuildReport {
        strategy: index.kind(),
        nodes: mapping.len(),
        edges,
        build_micros: started.elapsed_micros(),
        index_bytes: index.size_bytes(),
        dropped_links: extra_links.len(),
        stages,
    };
    BuiltMeta {
        mapping,
        index,
        extra_links,
        report,
    }
}

/// A built FliX framework: meta documents, their indexes, and the runtime
/// link table the query evaluator chases.
#[derive(Debug, Clone)]
pub struct Flix {
    graph: Arc<CollectionGraph>,
    config: FlixConfig,
    metas: Vec<Arc<MetaDocument>>,
    /// Meta document of each global node.
    meta_of: Vec<u32>,
    /// Local id of each global node within its meta document.
    local_of: Vec<u32>,
    /// Links no index covers, `(source, target)` sorted by source:
    /// cross-meta edges plus PPO-removed in-meta edges.
    runtime_links: Vec<(NodeId, NodeId)>,
    /// The same links as `(target, source)`, sorted by target.
    runtime_links_rev: Vec<(NodeId, NodeId)>,
    build_time: Duration,
    /// Observability record of the build that produced this framework.
    report: BuildReport,
}

impl Flix {
    /// Builds the framework with default [`BuildOptions`].
    pub fn build(graph: Arc<CollectionGraph>, config: FlixConfig) -> Self {
        Self::build_with(graph, config, &BuildOptions::default())
    }

    /// Builds the framework: plans meta documents, selects strategies,
    /// builds per-meta indexes on a scoped worker pool, and wires the
    /// runtime link table.
    ///
    /// Per-meta jobs touch disjoint node sets and only read the shared
    /// collection graph, so [`BuildOptions::build_threads`] changes wall
    /// clock but never the result: the merged framework (and its persisted
    /// image) is byte-identical to a sequential build.
    ///
    /// The thread budget is split between this per-meta stage and each
    /// HOPI meta document's staged cover pipeline with
    /// [`pool::split_budget`]: a monolithic plan hands the whole budget to
    /// HOPI's intra-build parallelism, many small metas saturate the
    /// budget at the per-meta level, and in between every outer worker
    /// carries its own inner share so no part of the budget is stranded.
    /// The inner share only changes wall clock, never output: HOPI covers
    /// are byte-identical at any thread count.
    pub fn build_with(
        graph: Arc<CollectionGraph>,
        config: FlixConfig,
        opts: &BuildOptions,
    ) -> Self {
        let started = Stopwatch::start();
        let n = graph.node_count();
        let plans = build_meta_documents(&graph, config);
        let planning_micros = started.elapsed_micros();

        let indexing_started = Stopwatch::start();
        // Split the budget between the per-meta level and HOPI's staged
        // pipeline: a monolithic plan keeps everything for the latter.
        let (threads, shares) = pool::split_budget(opts.resolved_build_threads(), plans.len());
        // Workers pull jobs largest-first off a shared cursor; the pool
        // returns finished metas in plan order, so scheduling is invisible.
        let built =
            pool::run_scheduled_budgeted(&shares, &plan_build_order(&plans), |mi, inner| {
                let plan = &plans[mi];
                build_one(&graph, &plan.nodes, plan.strategy, opts, inner)
            });
        let indexing_micros = indexing_started.elapsed_micros();

        let wiring_started = Stopwatch::start();
        let mut meta_of = vec![u32::MAX; n];
        let mut local_of = vec![u32::MAX; n];
        let mut metas = Vec::with_capacity(built.len());
        let mut per_meta = Vec::with_capacity(built.len());
        let mut runtime_links: Vec<(NodeId, NodeId)> = Vec::new();
        for (mi, job) in built.into_iter().enumerate() {
            for (local, &global) in job.mapping.iter().enumerate() {
                meta_of[global as usize] = mi as u32;
                local_of[global as usize] = local as u32;
            }
            // PPO-removed edges become runtime links (already global ids).
            runtime_links.extend(job.extra_links);
            per_meta.push(job.report);
            metas.push(MetaDocument {
                nodes: job.mapping,
                index: job.index,
                link_sources: Vec::new(),
                link_targets: Vec::new(),
            });
            // Arcs are applied after link wiring below.
        }

        // Every edge crossing meta documents is a runtime link.
        for (u, v) in graph.graph.edges() {
            if meta_of[u as usize] != meta_of[v as usize] {
                runtime_links.push((u, v));
            }
        }
        runtime_links.sort_unstable();
        runtime_links.dedup();
        let mut runtime_links_rev: Vec<(NodeId, NodeId)> =
            runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        runtime_links_rev.sort_unstable();

        // The per-meta L_i sets (§4.2) and their ancestor-query mirrors.
        for &(u, v) in &runtime_links {
            let (mu, mv) = (meta_of[u as usize], meta_of[v as usize]);
            metas[mu as usize].link_sources.push(local_of[u as usize]);
            metas[mv as usize].link_targets.push(local_of[v as usize]);
        }
        for m in &mut metas {
            m.link_sources.sort_unstable();
            m.link_sources.dedup();
            m.link_targets.sort_unstable();
            m.link_targets.dedup();
        }
        let wiring_micros = wiring_started.elapsed_micros();

        let build_time = started.elapsed();
        let report = BuildReport {
            config,
            threads,
            planning_micros,
            indexing_micros,
            wiring_micros,
            total_micros: build_time.as_micros() as u64,
            runtime_links: runtime_links.len(),
            per_meta,
        };
        Self {
            graph,
            config,
            metas: metas.into_iter().map(Arc::new).collect(),
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time,
            report,
        }
    }

    /// Reassembles a framework from persisted parts (see [`crate::persist`]).
    pub(crate) fn from_raw_parts(
        graph: Arc<CollectionGraph>,
        config: FlixConfig,
        metas: Vec<MetaDocument>,
        meta_of: Vec<u32>,
        local_of: Vec<u32>,
        runtime_links: Vec<(NodeId, NodeId)>,
        report: BuildReport,
    ) -> Self {
        let mut runtime_links_rev: Vec<(NodeId, NodeId)> =
            runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        runtime_links_rev.sort_unstable();
        Self {
            graph,
            config,
            metas: metas.into_iter().map(Arc::new).collect(),
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time: Duration::ZERO,
            report,
        }
    }

    /// Assembles one shard's view of a built framework (see
    /// [`crate::shard`]). The view shares the parent's meta-document
    /// `Arc`s, so per-shard indexes cost no extra index memory; `metas`
    /// is renumbered to shard-local ids so the evaluator's per-meta
    /// scratch scales with the shard, not the collection.
    ///
    /// `meta_of`/`local_of` are full collection-size maps with
    /// `u32::MAX` holes for foreign nodes: the generic evaluator reports
    /// a foreign pop as an escape instead of indexing out of bounds. The
    /// link tables are asymmetric — `runtime_links` holds every link
    /// whose *source* lies in the shard (targets may be foreign), sorted
    /// by source; `runtime_links_rev` holds every link whose *target*
    /// lies in the shard as `(target, source)`, sorted by target — so
    /// in-shard expansion sees exactly the slices the full framework
    /// would serve.
    ///
    /// A view must never be driven through the public query API: public
    /// methods assume every node resolves and would silently swallow an
    /// escape. Only [`crate::shard::ShardedFlix`] evaluates on one.
    pub(crate) fn shard_view(
        graph: Arc<CollectionGraph>,
        config: FlixConfig,
        metas: Vec<Arc<MetaDocument>>,
        meta_of: Vec<u32>,
        local_of: Vec<u32>,
        runtime_links: Vec<(NodeId, NodeId)>,
        runtime_links_rev: Vec<(NodeId, NodeId)>,
    ) -> Self {
        let report = BuildReport::empty(config);
        Self {
            graph,
            config,
            metas,
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time: Duration::ZERO,
            report,
        }
    }

    /// Incrementally extends the framework to a grown collection (built
    /// with [`CollectionGraph::extend`]): every *new* document becomes its
    /// own meta document with a selector-chosen index, existing meta
    /// documents keep their indexes untouched (only their runtime-link
    /// anchor sets are refreshed, including links from new documents into
    /// old ones and previously dangling links the new documents resolve).
    ///
    /// Grouping configurations (Maximal PPO, Unconnected HOPI) are *not*
    /// re-planned for the new documents — the paper's §7 self-tuning loop
    /// is the mechanism that decides when a full rebuild pays off; see
    /// [`crate::tuning`].
    ///
    /// # Errors
    /// If `new_graph` is not an extension of this framework's collection.
    pub fn extend(
        &self,
        new_graph: Arc<CollectionGraph>,
        opts: &BuildOptions,
    ) -> Result<Flix, String> {
        let old_n = self.graph.node_count();
        let new_n = new_graph.node_count();
        if new_n < old_n
            || new_graph.node_base[..self.graph.node_base.len()] != self.graph.node_base[..]
        {
            return Err("new graph is not an extension of the indexed collection".into());
        }
        let started = Stopwatch::start();
        let mut meta_of = self.meta_of.clone();
        let mut local_of = self.local_of.clone();
        meta_of.resize(new_n, u32::MAX);
        local_of.resize(new_n, u32::MAX);
        let mut metas: Vec<MetaDocument> = self.metas.iter().map(|m| (**m).clone()).collect();
        // PPO-removed edges of existing metas stay runtime links; the rest
        // of the table is recomputed from the extended graph below.
        let mut runtime_links: Vec<(NodeId, NodeId)> = self
            .runtime_links
            .iter()
            .copied()
            .filter(|&(u, v)| meta_of[u as usize] == meta_of[v as usize])
            .collect();

        // Carry the per-meta records of the kept metas forward so report
        // indices keep matching meta-document ids; frameworks loaded from a
        // store without report blobs get zero-cost placeholder entries.
        let mut per_meta = self.report.per_meta.clone();
        per_meta.truncate(metas.len());
        while per_meta.len() < metas.len() {
            let m = &metas[per_meta.len()];
            per_meta.push(MetaBuildReport {
                strategy: m.index.kind(),
                nodes: m.len(),
                edges: 0,
                build_micros: 0,
                index_bytes: m.index.size_bytes(),
                dropped_links: 0,
                stages: None,
            });
        }
        let old_docs = self.graph.collection.doc_count() as u32;
        for d in old_docs..new_graph.collection.doc_count() as u32 {
            let nodes: Vec<NodeId> =
                (new_graph.node_base[d as usize]..new_graph.node_base[d as usize + 1]).collect();
            let mi = metas.len() as u32;
            let job = build_one(&new_graph, &nodes, None, opts, 1);
            for (local, &global) in job.mapping.iter().enumerate() {
                meta_of[global as usize] = mi;
                local_of[global as usize] = local as u32;
            }
            runtime_links.extend(job.extra_links);
            per_meta.push(job.report);
            metas.push(MetaDocument {
                nodes: job.mapping,
                index: job.index,
                link_sources: Vec::new(),
                link_targets: Vec::new(),
            });
        }

        for (u, v) in new_graph.graph.edges() {
            if meta_of[u as usize] != meta_of[v as usize] {
                runtime_links.push((u, v));
            }
        }
        runtime_links.sort_unstable();
        runtime_links.dedup();
        let mut runtime_links_rev: Vec<(NodeId, NodeId)> =
            runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        runtime_links_rev.sort_unstable();

        for m in &mut metas {
            m.link_sources.clear();
            m.link_targets.clear();
        }
        for &(u, v) in &runtime_links {
            let (mu, mv) = (meta_of[u as usize], meta_of[v as usize]);
            metas[mu as usize].link_sources.push(local_of[u as usize]);
            metas[mv as usize].link_targets.push(local_of[v as usize]);
        }
        let mut arcs = Vec::with_capacity(metas.len());
        for (i, mut m) in metas.into_iter().enumerate() {
            m.link_sources.sort_unstable();
            m.link_sources.dedup();
            m.link_targets.sort_unstable();
            m.link_targets.dedup();
            // Reuse the existing Arc when nothing about the meta changed
            // (the common case: untouched region of the collection).
            if let Some(old) = self.metas.get(i) {
                if old.link_sources == m.link_sources && old.link_targets == m.link_targets {
                    arcs.push(Arc::clone(old));
                    continue;
                }
                // anchor sets changed: keep the old (expensive) index, swap
                // the cheap lists
                let mut refreshed = (**old).clone();
                refreshed.link_sources = m.link_sources;
                refreshed.link_targets = m.link_targets;
                arcs.push(Arc::new(refreshed));
                continue;
            }
            arcs.push(Arc::new(m));
        }

        let build_time = started.elapsed();
        let report = BuildReport {
            config: self.config,
            threads: 1,
            planning_micros: 0,
            indexing_micros: build_time.as_micros() as u64,
            wiring_micros: 0,
            total_micros: build_time.as_micros() as u64,
            runtime_links: runtime_links.len(),
            per_meta,
        };
        Ok(Flix {
            graph: new_graph,
            config: self.config,
            metas: arcs,
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time,
            report,
        })
    }

    /// The underlying collection graph.
    pub fn collection(&self) -> &CollectionGraph {
        &self.graph
    }

    /// Shared handle to the underlying collection graph.
    pub fn collection_arc(&self) -> Arc<CollectionGraph> {
        Arc::clone(&self.graph)
    }

    /// The configuration this framework was built with.
    pub fn config(&self) -> FlixConfig {
        self.config
    }

    /// Number of meta documents.
    pub fn meta_count(&self) -> usize {
        self.metas.len()
    }

    /// Meta document accessor.
    pub fn meta(&self, id: u32) -> &MetaDocument {
        &self.metas[id as usize]
    }

    /// Shared handle to a meta document (used by the generic evaluator).
    pub fn meta_arc(&self, id: u32) -> Arc<MetaDocument> {
        Arc::clone(&self.metas[id as usize])
    }

    /// Meta document containing a global node.
    pub fn meta_of(&self, node: NodeId) -> u32 {
        self.meta_of[node as usize]
    }

    /// Local id of a global node within its meta document.
    pub fn local_of(&self, node: NodeId) -> u32 {
        self.local_of[node as usize]
    }

    /// Global id of `(meta, local)`.
    pub fn global_of(&self, meta: u32, local: u32) -> NodeId {
        self.metas[meta as usize].nodes[local as usize]
    }

    /// Runtime links out of `u` (global ids).
    pub fn links_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.runtime_links.partition_point(|&(s, _)| s < u);
        let end = self.runtime_links.partition_point(|&(s, _)| s <= u);
        &self.runtime_links[start..end]
    }

    /// Runtime links into `v`, as `(target, source)` pairs.
    pub fn links_into(&self, v: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.runtime_links_rev.partition_point(|&(t, _)| t < v);
        let end = self.runtime_links_rev.partition_point(|&(t, _)| t <= v);
        &self.runtime_links_rev[start..end]
    }

    /// All runtime links, sorted by source.
    pub fn runtime_links(&self) -> &[(NodeId, NodeId)] {
        &self.runtime_links
    }

    /// The observability record of the build that produced this framework
    /// (zeroed for frameworks loaded from a store without a report blob).
    pub fn build_report(&self) -> &BuildReport {
        &self.report
    }

    /// Build statistics for reporting (Table-1 style).
    pub fn stats(&self) -> FlixStats {
        let per_meta: Vec<MetaDocStats> = self
            .metas
            .iter()
            .map(|m| MetaDocStats {
                elements: m.len(),
                strategy: m.index.kind(),
                index_bytes: m.index.size_bytes(),
                link_sources: m.link_sources.len(),
            })
            .collect();
        let mut ppo = 0;
        let mut hopi = 0;
        let mut apex = 0;
        for m in &per_meta {
            match m.strategy {
                StrategyKind::Ppo => ppo += 1,
                StrategyKind::Hopi => hopi += 1,
                StrategyKind::Apex => apex += 1,
            }
        }
        FlixStats {
            config: self.config,
            meta_docs: self.metas.len(),
            ppo_metas: ppo,
            hopi_metas: hopi,
            apex_metas: apex,
            index_bytes: per_meta.iter().map(|m| m.index_bytes).sum::<usize>()
                + self.runtime_links.len() * 16,
            runtime_links: self.runtime_links.len(),
            build_time: self.build_time,
            per_meta,
        }
    }
}

impl flixcheck::IntegrityCheck for Flix {
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("Flix");
        let n = self.graph.node_count();
        audit.check(
            "node->meta maps cover the collection",
            self.meta_of.len() == n && self.local_of.len() == n,
            || {
                format!(
                    "collection has {n} nodes, meta_of holds {}, local_of holds {}",
                    self.meta_of.len(),
                    self.local_of.len()
                )
            },
        );
        if self.meta_of.len() != n || self.local_of.len() != n {
            return audit.finish();
        }

        // The per-meta node lists and the global maps must be mutually
        // inverse: metas[meta_of[g]].nodes[local_of[g]] == g, with every
        // global node appearing in exactly one meta document.
        let mut covered = 0usize;
        let mut mismatch = None;
        for (mi, md) in self.metas.iter().enumerate() {
            for (local, &global) in md.nodes.iter().enumerate() {
                covered += 1;
                if mismatch.is_none()
                    && ((global as usize) >= n
                        || self.meta_of[global as usize] != mi as u32
                        || self.local_of[global as usize] != local as u32)
                {
                    mismatch = Some(format!(
                        "meta {mi} local {local} maps to global {global}, but the \
                         global maps say meta {} local {}",
                        self.meta_of
                            .get(global as usize)
                            .copied()
                            .unwrap_or(u32::MAX),
                        self.local_of
                            .get(global as usize)
                            .copied()
                            .unwrap_or(u32::MAX),
                    ));
                }
            }
        }
        audit.check(
            "meta node lists and global maps are mutually inverse",
            mismatch.is_none(),
            || mismatch.unwrap_or_default(),
        );
        audit.check(
            "meta documents partition the collection",
            covered == n,
            || format!("meta documents hold {covered} nodes in total, collection has {n}"),
        );

        let unsorted = self.runtime_links.windows(2).any(|w| w[0] >= w[1]);
        audit.check(
            "runtime link table is strictly sorted by (source, target)",
            !unsorted,
            || "duplicate or out-of-order entry in runtime_links".to_string(),
        );
        let mut want_rev: Vec<(NodeId, NodeId)> =
            self.runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        want_rev.sort_unstable();
        audit.check(
            "reverse link table mirrors the forward one",
            self.runtime_links_rev == want_rev,
            || {
                format!(
                    "runtime_links_rev holds {} entries, forward table implies {}",
                    self.runtime_links_rev.len(),
                    want_rev.len()
                )
            },
        );

        // Soundness: every runtime link is a real edge of the collection
        // graph (cross-meta edges and PPO-dropped in-meta edges both are).
        let phantom = self
            .runtime_links
            .iter()
            .copied()
            .find(|&(u, v)| !self.graph.graph.has_edge(u, v));
        audit.check(
            "every runtime link is an edge of the collection graph",
            phantom.is_none(),
            || {
                phantom
                    .map(|(u, v)| format!("runtime link ({u}, {v}) is not a graph edge"))
                    .unwrap_or_default()
            },
        );

        // Completeness: every graph edge is either answered by the owning
        // meta document's index or catalogued as a runtime link.
        let mut lost = None;
        for (u, v) in self.graph.graph.edges() {
            if self.runtime_links.binary_search(&(u, v)).is_ok() {
                continue;
            }
            let (mu, mv) = (self.meta_of[u as usize], self.meta_of[v as usize]);
            if mu != mv {
                lost = Some(format!(
                    "cross-meta edge ({u}, {v}) missing from the runtime link table"
                ));
                break;
            }
            let md = &self.metas[mu as usize];
            if !md
                .index
                .is_reachable(self.local_of[u as usize], self.local_of[v as usize])
            {
                lost = Some(format!(
                    "in-meta edge ({u}, {v}) neither indexed nor a runtime link"
                ));
                break;
            }
        }
        audit.check(
            "every graph edge is indexed or catalogued as a runtime link",
            lost.is_none(),
            || lost.unwrap_or_default(),
        );

        // The per-meta anchor sets are exactly the runtime-link endpoints
        // translated to local ids.
        let mut want_sources: Vec<Vec<u32>> = vec![Vec::new(); self.metas.len()];
        let mut want_targets: Vec<Vec<u32>> = vec![Vec::new(); self.metas.len()];
        for &(u, v) in &self.runtime_links {
            want_sources[self.meta_of[u as usize] as usize].push(self.local_of[u as usize]);
            want_targets[self.meta_of[v as usize] as usize].push(self.local_of[v as usize]);
        }
        let mut bad_anchor = None;
        for (mi, md) in self.metas.iter().enumerate() {
            for (what, have, want) in [
                ("link_sources", &md.link_sources, &mut want_sources[mi]),
                ("link_targets", &md.link_targets, &mut want_targets[mi]),
            ] {
                want.sort_unstable();
                want.dedup();
                if have != want && bad_anchor.is_none() {
                    bad_anchor = Some(format!(
                        "meta {mi} {what}: {} anchors recorded, link table implies {}",
                        have.len(),
                        want.len()
                    ));
                }
            }
        }
        audit.check(
            "per-meta anchor sets match the runtime link table",
            bad_anchor.is_none(),
            || bad_anchor.unwrap_or_default(),
        );

        // Finally, every meta document must pass its own (deep) audit.
        let mut bad_meta = None;
        for (mi, md) in self.metas.iter().enumerate() {
            if let Err(err) = md.integrity_check() {
                bad_meta = Some(format!("meta {mi}: {err}"));
                break;
            }
        }
        audit.check(
            "every meta document passes its own audit",
            bad_meta.is_none(),
            || bad_meta.unwrap_or_default(),
        );
        audit.finish()
    }
}

/// Aggregate build statistics.
#[derive(Debug, Clone)]
pub struct FlixStats {
    /// The configuration.
    pub config: FlixConfig,
    /// Number of meta documents.
    pub meta_docs: usize,
    /// Meta documents indexed with PPO.
    pub ppo_metas: usize,
    /// Meta documents indexed with HOPI.
    pub hopi_metas: usize,
    /// Meta documents indexed with APEX.
    pub apex_metas: usize,
    /// Total index footprint (all meta indexes + the runtime link table).
    pub index_bytes: usize,
    /// Number of runtime links.
    pub runtime_links: usize,
    /// Wall-clock build time.
    pub build_time: Duration,
    /// Per-meta-document breakdown.
    pub per_meta: Vec<MetaDocStats>,
}

/// Statistics for one meta document.
#[derive(Debug, Clone, Copy)]
pub struct MetaDocStats {
    /// Element count.
    pub elements: usize,
    /// Strategy used.
    pub strategy: StrategyKind,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// Number of link-source elements (`L_i`).
    pub link_sources: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::{Collection, Document, LinkTarget};

    /// Two linked tree documents plus one cyclic document.
    fn sample() -> Arc<CollectionGraph> {
        let mut c = Collection::new();
        let a = c.tags.intern("a");
        let b = c.tags.intern("b");

        let mut d0 = Document::new("d0.xml");
        let r0 = d0.add_element(a, None);
        let k0 = d0.add_element(b, Some(r0));
        d0.add_element(b, Some(k0));
        d0.add_link(
            k0,
            LinkTarget {
                document: Some("d1.xml".into()),
                fragment: None,
            },
        );

        let mut d1 = Document::new("d1.xml");
        let r1 = d1.add_element(a, None);
        d1.add_element(b, Some(r1));

        let mut d2 = Document::new("d2.xml");
        let r2 = d2.add_element(a, None);
        let x = d2.add_element(b, Some(r2));
        let y = d2.add_element(b, Some(x));
        d2.add_anchor("x", x);
        d2.add_link(
            y,
            LinkTarget {
                document: None,
                fragment: Some("x".into()),
            },
        );
        d2.add_link(
            y,
            LinkTarget {
                document: Some("d0.xml".into()),
                fragment: None,
            },
        );

        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        c.add_document(d2).unwrap();
        Arc::new(c.seal())
    }

    #[test]
    fn naive_build_wires_links() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        assert_eq!(flix.meta_count(), 3);
        // cross-doc links: d0 -> d1 and d2 -> d0 are runtime links
        assert_eq!(
            flix.runtime_links().len(),
            2,
            "intra link of d2 stays inside its meta index"
        );
        let out = flix.links_out_of(cg.global(0, 1));
        assert_eq!(out, &[(1, 3)]);
        let into = flix.links_into(3);
        assert_eq!(into, &[(3, 1)]);
    }

    #[test]
    fn node_id_round_trip() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        for u in 0..cg.node_count() as NodeId {
            let m = flix.meta_of(u);
            let l = flix.local_of(u);
            assert_eq!(flix.global_of(m, l), u);
        }
    }

    #[test]
    fn naive_selector_assigns_ppo_to_trees() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let stats = flix.stats();
        // d0 and d1 are trees -> PPO; d2 has an intra link creating a
        // diamond -> non-forest -> HOPI
        assert_eq!(stats.ppo_metas, 2);
        assert_eq!(stats.hopi_metas, 1);
        assert!(stats.index_bytes > 0);
        assert!(stats.per_meta.len() == 3);
    }

    #[test]
    fn monolithic_has_no_runtime_links() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Monolithic(StrategyKind::Hopi));
        assert_eq!(flix.meta_count(), 1);
        assert!(flix.runtime_links().is_empty());
    }

    #[test]
    fn maximal_ppo_merges_linked_trees() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::MaximalPpo);
        // d0 + d1 grouped (link targets d1's root), d2 separate
        assert_eq!(flix.meta_count(), 2);
        let stats = flix.stats();
        assert_eq!(stats.ppo_metas, 2, "MaximalPpo pins PPO everywhere");
    }

    #[test]
    fn link_sources_and_targets_populated() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let m0 = flix.meta_of(cg.global(0, 1));
        let md = flix.meta(m0);
        assert!(md.link_sources.contains(&flix.local_of(cg.global(0, 1))));
        let m1 = flix.meta_of(cg.global(1, 0));
        assert!(flix
            .meta(m1)
            .link_targets
            .contains(&flix.local_of(cg.global(1, 0))));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let cg = sample();
        for config in [
            FlixConfig::Naive,
            FlixConfig::MaximalPpo,
            FlixConfig::UnconnectedHopi { partition_size: 3 },
        ] {
            let seq = BuildOptions {
                build_threads: 1,
                ..BuildOptions::default()
            };
            let par = BuildOptions {
                build_threads: 4,
                ..BuildOptions::default()
            };
            let a = Flix::build_with(cg.clone(), config, &seq);
            let b = Flix::build_with(cg.clone(), config, &par);
            assert_eq!(a.meta_of, b.meta_of, "{config}");
            assert_eq!(a.local_of, b.local_of, "{config}");
            assert_eq!(a.runtime_links, b.runtime_links, "{config}");
            assert_eq!(a.runtime_links_rev, b.runtime_links_rev, "{config}");
            assert_eq!(a.meta_count(), b.meta_count(), "{config}");
            for mi in 0..a.meta_count() as u32 {
                let (ma, mb) = (a.meta(mi), b.meta(mi));
                assert_eq!(ma.nodes, mb.nodes, "{config} meta {mi}");
                assert_eq!(ma.index.kind(), mb.index.kind(), "{config} meta {mi}");
                assert_eq!(ma.link_sources, mb.link_sources, "{config} meta {mi}");
                assert_eq!(ma.link_targets, mb.link_targets, "{config} meta {mi}");
            }
        }
    }

    #[test]
    fn build_report_records_every_meta() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let r = flix.build_report();
        assert_eq!(r.config, FlixConfig::Naive);
        assert!(r.threads >= 1);
        assert_eq!(r.per_meta.len(), flix.meta_count());
        assert_eq!(r.runtime_links, flix.runtime_links().len());
        let s = flix.stats();
        assert_eq!(
            r.strategy_counts(),
            (s.ppo_metas, s.hopi_metas, s.apex_metas)
        );
        assert_eq!(
            r.index_bytes() + flix.runtime_links().len() * 16,
            s.index_bytes,
            "report and stats agree on the index footprint"
        );
        for (mi, m) in r.per_meta.iter().enumerate() {
            assert_eq!(m.nodes, flix.meta(mi as u32).len(), "meta {mi}");
            assert_eq!(m.strategy, flix.meta(mi as u32).index.kind(), "meta {mi}");
        }
    }

    #[test]
    fn extend_carries_report_forward() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let t = cg.collection.tags.get("a").unwrap();
        let mut d = Document::new("d3.xml");
        let r = d.add_element(t, None);
        d.add_element(t, Some(r));
        let grown = Arc::new(cg.extend(vec![d]).unwrap());
        let bigger = flix.extend(grown, &BuildOptions::default()).unwrap();
        let report = bigger.build_report();
        assert_eq!(report.per_meta.len(), bigger.meta_count());
        assert_eq!(
            report.per_meta[..flix.meta_count()],
            flix.build_report().per_meta[..],
            "kept metas keep their original build records"
        );
        assert_eq!(report.runtime_links, bigger.runtime_links().len());
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Naive);
        flix.integrity_check().unwrap();

        // Global maps pointing at the wrong meta document.
        let mut bad = flix.clone();
        bad.meta_of[0] = bad.meta_of[0].wrapping_add(1);
        let err = bad.integrity_check().unwrap_err();
        assert!(err.to_string().contains("mutually inverse"), "{err}");

        // A runtime link that is not a graph edge.
        let mut bad = flix.clone();
        bad.runtime_links.clear();
        bad.runtime_links_rev.clear();
        let err = bad.integrity_check().unwrap_err();
        assert!(
            err.to_string()
                .contains("missing from the runtime link table"),
            "{err}"
        );

        // A phantom link no graph edge backs.
        let mut bad = flix.clone();
        let n = bad.graph.node_count() as NodeId;
        bad.runtime_links.push((n - 1, n - 1));
        bad.runtime_links.sort_unstable();
        bad.runtime_links_rev = bad.runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        bad.runtime_links_rev.sort_unstable();
        let err = bad.integrity_check().unwrap_err();
        assert!(err.to_string().contains("not a graph edge"), "{err}");

        // An anchor set that forgot a link source.
        let mut bad = flix.clone();
        let mi = bad.meta_of[bad.runtime_links[0].0 as usize] as usize;
        let mut md = (*bad.metas[mi]).clone();
        md.link_sources.clear();
        bad.metas[mi] = Arc::new(md);
        let err = bad.integrity_check().unwrap_err();
        assert!(err.to_string().contains("anchor sets"), "{err}");
    }
}
