//! The build phase: from a sealed collection to a queryable framework.

use crate::config::{BuildOptions, FlixConfig, StrategyKind};
use crate::mdb::build_meta_documents;
use crate::meta::{MetaDocument, MetaIndex};
use graphcore::NodeId;
use std::sync::Arc;
use std::time::Duration;
use xmlgraph::CollectionGraph;

/// A built FliX framework: meta documents, their indexes, and the runtime
/// link table the query evaluator chases.
#[derive(Debug)]
pub struct Flix {
    graph: Arc<CollectionGraph>,
    config: FlixConfig,
    metas: Vec<Arc<MetaDocument>>,
    /// Meta document of each global node.
    meta_of: Vec<u32>,
    /// Local id of each global node within its meta document.
    local_of: Vec<u32>,
    /// Links no index covers, `(source, target)` sorted by source:
    /// cross-meta edges plus PPO-removed in-meta edges.
    runtime_links: Vec<(NodeId, NodeId)>,
    /// The same links as `(target, source)`, sorted by target.
    runtime_links_rev: Vec<(NodeId, NodeId)>,
    build_time: Duration,
}

impl Flix {
    /// Builds the framework with default [`BuildOptions`].
    pub fn build(graph: Arc<CollectionGraph>, config: FlixConfig) -> Self {
        Self::build_with(graph, config, &BuildOptions::default())
    }

    /// Builds the framework: plans meta documents, selects strategies,
    /// builds per-meta indexes, and wires the runtime link table.
    pub fn build_with(
        graph: Arc<CollectionGraph>,
        config: FlixConfig,
        opts: &BuildOptions,
    ) -> Self {
        let started = std::time::Instant::now();
        let n = graph.node_count();
        let plans = build_meta_documents(&graph, config);
        let mut meta_of = vec![u32::MAX; n];
        let mut local_of = vec![u32::MAX; n];
        let mut metas = Vec::with_capacity(plans.len());
        let mut runtime_links: Vec<(NodeId, NodeId)> = Vec::new();

        for (mi, plan) in plans.into_iter().enumerate() {
            let (sub, mapping) = graph.graph.induced_subgraph(&plan.nodes);
            for (local, &global) in mapping.iter().enumerate() {
                meta_of[global as usize] = mi as u32;
                local_of[global as usize] = local as u32;
            }
            let labels: Vec<u32> = mapping
                .iter()
                .map(|&g| graph.tag_of(g))
                .collect();
            let kind = plan
                .strategy
                .unwrap_or_else(|| opts.selector.select(&sub));
            let (index, extra) = MetaIndex::build(kind, &sub, &labels, opts.apex_refine_rounds);
            // PPO-removed edges become runtime links, in global ids.
            for (lu, lv) in extra {
                runtime_links.push((mapping[lu as usize], mapping[lv as usize]));
            }
            metas.push(MetaDocument {
                nodes: mapping,
                index,
                link_sources: Vec::new(),
                link_targets: Vec::new(),
            });
            // Arcs are applied after link wiring below.
        }

        // Every edge crossing meta documents is a runtime link.
        for (u, v) in graph.graph.edges() {
            if meta_of[u as usize] != meta_of[v as usize] {
                runtime_links.push((u, v));
            }
        }
        runtime_links.sort_unstable();
        runtime_links.dedup();
        let mut runtime_links_rev: Vec<(NodeId, NodeId)> =
            runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        runtime_links_rev.sort_unstable();

        // The per-meta L_i sets (§4.2) and their ancestor-query mirrors.
        for &(u, v) in &runtime_links {
            let (mu, mv) = (meta_of[u as usize], meta_of[v as usize]);
            metas[mu as usize].link_sources.push(local_of[u as usize]);
            metas[mv as usize].link_targets.push(local_of[v as usize]);
        }
        for m in &mut metas {
            m.link_sources.sort_unstable();
            m.link_sources.dedup();
            m.link_targets.sort_unstable();
            m.link_targets.dedup();
        }

        Self {
            graph,
            config,
            metas: metas.into_iter().map(Arc::new).collect(),
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time: started.elapsed(),
        }
    }

    /// Reassembles a framework from persisted parts (see [`crate::persist`]).
    pub(crate) fn from_raw_parts(
        graph: Arc<CollectionGraph>,
        config: FlixConfig,
        metas: Vec<MetaDocument>,
        meta_of: Vec<u32>,
        local_of: Vec<u32>,
        runtime_links: Vec<(NodeId, NodeId)>,
    ) -> Self {
        let mut runtime_links_rev: Vec<(NodeId, NodeId)> =
            runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        runtime_links_rev.sort_unstable();
        Self {
            graph,
            config,
            metas: metas.into_iter().map(Arc::new).collect(),
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time: Duration::ZERO,
        }
    }

    /// Incrementally extends the framework to a grown collection (built
    /// with [`CollectionGraph::extend`]): every *new* document becomes its
    /// own meta document with a selector-chosen index, existing meta
    /// documents keep their indexes untouched (only their runtime-link
    /// anchor sets are refreshed, including links from new documents into
    /// old ones and previously dangling links the new documents resolve).
    ///
    /// Grouping configurations (Maximal PPO, Unconnected HOPI) are *not*
    /// re-planned for the new documents — the paper's §7 self-tuning loop
    /// is the mechanism that decides when a full rebuild pays off; see
    /// [`crate::tuning`].
    ///
    /// # Errors
    /// If `new_graph` is not an extension of this framework's collection.
    pub fn extend(
        &self,
        new_graph: Arc<CollectionGraph>,
        opts: &BuildOptions,
    ) -> Result<Flix, String> {
        let old_n = self.graph.node_count();
        let new_n = new_graph.node_count();
        if new_n < old_n
            || new_graph.node_base[..self.graph.node_base.len()] != self.graph.node_base[..]
        {
            return Err("new graph is not an extension of the indexed collection".into());
        }
        let started = std::time::Instant::now();
        let mut meta_of = self.meta_of.clone();
        let mut local_of = self.local_of.clone();
        meta_of.resize(new_n, u32::MAX);
        local_of.resize(new_n, u32::MAX);
        let mut metas: Vec<MetaDocument> =
            self.metas.iter().map(|m| (**m).clone()).collect();
        // PPO-removed edges of existing metas stay runtime links; the rest
        // of the table is recomputed from the extended graph below.
        let mut runtime_links: Vec<(NodeId, NodeId)> = self
            .runtime_links
            .iter()
            .copied()
            .filter(|&(u, v)| meta_of[u as usize] == meta_of[v as usize])
            .collect();

        let old_docs = self.graph.collection.doc_count() as u32;
        for d in old_docs..new_graph.collection.doc_count() as u32 {
            let nodes: Vec<NodeId> =
                (new_graph.node_base[d as usize]..new_graph.node_base[d as usize + 1]).collect();
            let (sub, mapping) = new_graph.graph.induced_subgraph(&nodes);
            let mi = metas.len() as u32;
            for (local, &global) in mapping.iter().enumerate() {
                meta_of[global as usize] = mi;
                local_of[global as usize] = local as u32;
            }
            let labels: Vec<u32> = mapping.iter().map(|&g| new_graph.tag_of(g)).collect();
            let kind = opts.selector.select(&sub);
            let (index, extra) = MetaIndex::build(kind, &sub, &labels, opts.apex_refine_rounds);
            for (lu, lv) in extra {
                runtime_links.push((mapping[lu as usize], mapping[lv as usize]));
            }
            metas.push(MetaDocument {
                nodes: mapping,
                index,
                link_sources: Vec::new(),
                link_targets: Vec::new(),
            });
        }

        for (u, v) in new_graph.graph.edges() {
            if meta_of[u as usize] != meta_of[v as usize] {
                runtime_links.push((u, v));
            }
        }
        runtime_links.sort_unstable();
        runtime_links.dedup();
        let mut runtime_links_rev: Vec<(NodeId, NodeId)> =
            runtime_links.iter().map(|&(u, v)| (v, u)).collect();
        runtime_links_rev.sort_unstable();

        for m in &mut metas {
            m.link_sources.clear();
            m.link_targets.clear();
        }
        for &(u, v) in &runtime_links {
            let (mu, mv) = (meta_of[u as usize], meta_of[v as usize]);
            metas[mu as usize].link_sources.push(local_of[u as usize]);
            metas[mv as usize].link_targets.push(local_of[v as usize]);
        }
        let mut arcs = Vec::with_capacity(metas.len());
        for (i, mut m) in metas.into_iter().enumerate() {
            m.link_sources.sort_unstable();
            m.link_sources.dedup();
            m.link_targets.sort_unstable();
            m.link_targets.dedup();
            // Reuse the existing Arc when nothing about the meta changed
            // (the common case: untouched region of the collection).
            if let Some(old) = self.metas.get(i) {
                if old.link_sources == m.link_sources && old.link_targets == m.link_targets {
                    arcs.push(Arc::clone(old));
                    continue;
                }
                // anchor sets changed: keep the old (expensive) index, swap
                // the cheap lists
                let mut refreshed = (**old).clone();
                refreshed.link_sources = m.link_sources;
                refreshed.link_targets = m.link_targets;
                arcs.push(Arc::new(refreshed));
                continue;
            }
            arcs.push(Arc::new(m));
        }

        Ok(Flix {
            graph: new_graph,
            config: self.config,
            metas: arcs,
            meta_of,
            local_of,
            runtime_links,
            runtime_links_rev,
            build_time: started.elapsed(),
        })
    }

    /// The underlying collection graph.
    pub fn collection(&self) -> &CollectionGraph {
        &self.graph
    }

    /// Shared handle to the underlying collection graph.
    pub fn collection_arc(&self) -> Arc<CollectionGraph> {
        Arc::clone(&self.graph)
    }

    /// The configuration this framework was built with.
    pub fn config(&self) -> FlixConfig {
        self.config
    }

    /// Number of meta documents.
    pub fn meta_count(&self) -> usize {
        self.metas.len()
    }

    /// Meta document accessor.
    pub fn meta(&self, id: u32) -> &MetaDocument {
        &self.metas[id as usize]
    }

    /// Shared handle to a meta document (used by the generic evaluator).
    pub fn meta_arc(&self, id: u32) -> Arc<MetaDocument> {
        Arc::clone(&self.metas[id as usize])
    }

    /// Meta document containing a global node.
    pub fn meta_of(&self, node: NodeId) -> u32 {
        self.meta_of[node as usize]
    }

    /// Local id of a global node within its meta document.
    pub fn local_of(&self, node: NodeId) -> u32 {
        self.local_of[node as usize]
    }

    /// Global id of `(meta, local)`.
    pub fn global_of(&self, meta: u32, local: u32) -> NodeId {
        self.metas[meta as usize].nodes[local as usize]
    }

    /// Runtime links out of `u` (global ids).
    pub fn links_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.runtime_links.partition_point(|&(s, _)| s < u);
        let end = self.runtime_links.partition_point(|&(s, _)| s <= u);
        &self.runtime_links[start..end]
    }

    /// Runtime links into `v`, as `(target, source)` pairs.
    pub fn links_into(&self, v: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.runtime_links_rev.partition_point(|&(t, _)| t < v);
        let end = self.runtime_links_rev.partition_point(|&(t, _)| t <= v);
        &self.runtime_links_rev[start..end]
    }

    /// All runtime links, sorted by source.
    pub fn runtime_links(&self) -> &[(NodeId, NodeId)] {
        &self.runtime_links
    }

    /// Build statistics for reporting (Table-1 style).
    pub fn stats(&self) -> FlixStats {
        let per_meta: Vec<MetaDocStats> = self
            .metas
            .iter()
            .map(|m| MetaDocStats {
                elements: m.len(),
                strategy: m.index.kind(),
                index_bytes: m.index.size_bytes(),
                link_sources: m.link_sources.len(),
            })
            .collect();
        let mut ppo = 0;
        let mut hopi = 0;
        let mut apex = 0;
        for m in &per_meta {
            match m.strategy {
                StrategyKind::Ppo => ppo += 1,
                StrategyKind::Hopi => hopi += 1,
                StrategyKind::Apex => apex += 1,
            }
        }
        FlixStats {
            config: self.config,
            meta_docs: self.metas.len(),
            ppo_metas: ppo,
            hopi_metas: hopi,
            apex_metas: apex,
            index_bytes: per_meta.iter().map(|m| m.index_bytes).sum::<usize>()
                + self.runtime_links.len() * 16,
            runtime_links: self.runtime_links.len(),
            build_time: self.build_time,
            per_meta,
        }
    }
}

/// Aggregate build statistics.
#[derive(Debug, Clone)]
pub struct FlixStats {
    /// The configuration.
    pub config: FlixConfig,
    /// Number of meta documents.
    pub meta_docs: usize,
    /// Meta documents indexed with PPO.
    pub ppo_metas: usize,
    /// Meta documents indexed with HOPI.
    pub hopi_metas: usize,
    /// Meta documents indexed with APEX.
    pub apex_metas: usize,
    /// Total index footprint (all meta indexes + the runtime link table).
    pub index_bytes: usize,
    /// Number of runtime links.
    pub runtime_links: usize,
    /// Wall-clock build time.
    pub build_time: Duration,
    /// Per-meta-document breakdown.
    pub per_meta: Vec<MetaDocStats>,
}

/// Statistics for one meta document.
#[derive(Debug, Clone, Copy)]
pub struct MetaDocStats {
    /// Element count.
    pub elements: usize,
    /// Strategy used.
    pub strategy: StrategyKind,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// Number of link-source elements (`L_i`).
    pub link_sources: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::{Collection, Document, LinkTarget};

    /// Two linked tree documents plus one cyclic document.
    fn sample() -> Arc<CollectionGraph> {
        let mut c = Collection::new();
        let a = c.tags.intern("a");
        let b = c.tags.intern("b");

        let mut d0 = Document::new("d0.xml");
        let r0 = d0.add_element(a, None);
        let k0 = d0.add_element(b, Some(r0));
        d0.add_element(b, Some(k0));
        d0.add_link(
            k0,
            LinkTarget {
                document: Some("d1.xml".into()),
                fragment: None,
            },
        );

        let mut d1 = Document::new("d1.xml");
        let r1 = d1.add_element(a, None);
        d1.add_element(b, Some(r1));

        let mut d2 = Document::new("d2.xml");
        let r2 = d2.add_element(a, None);
        let x = d2.add_element(b, Some(r2));
        let y = d2.add_element(b, Some(x));
        d2.add_anchor("x", x);
        d2.add_link(
            y,
            LinkTarget {
                document: None,
                fragment: Some("x".into()),
            },
        );
        d2.add_link(
            y,
            LinkTarget {
                document: Some("d0.xml".into()),
                fragment: None,
            },
        );

        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        c.add_document(d2).unwrap();
        Arc::new(c.seal())
    }

    #[test]
    fn naive_build_wires_links() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        assert_eq!(flix.meta_count(), 3);
        // cross-doc links: d0 -> d1 and d2 -> d0 are runtime links
        assert_eq!(
            flix.runtime_links().len(),
            2,
            "intra link of d2 stays inside its meta index"
        );
        let out = flix.links_out_of(cg.global(0, 1));
        assert_eq!(out, &[(1, 3)]);
        let into = flix.links_into(3);
        assert_eq!(into, &[(3, 1)]);
    }

    #[test]
    fn node_id_round_trip() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        for u in 0..cg.node_count() as NodeId {
            let m = flix.meta_of(u);
            let l = flix.local_of(u);
            assert_eq!(flix.global_of(m, l), u);
        }
    }

    #[test]
    fn naive_selector_assigns_ppo_to_trees() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let stats = flix.stats();
        // d0 and d1 are trees -> PPO; d2 has an intra link creating a
        // diamond -> non-forest -> HOPI
        assert_eq!(stats.ppo_metas, 2);
        assert_eq!(stats.hopi_metas, 1);
        assert!(stats.index_bytes > 0);
        assert!(stats.per_meta.len() == 3);
    }

    #[test]
    fn monolithic_has_no_runtime_links() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Monolithic(StrategyKind::Hopi));
        assert_eq!(flix.meta_count(), 1);
        assert!(flix.runtime_links().is_empty());
    }

    #[test]
    fn maximal_ppo_merges_linked_trees() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::MaximalPpo);
        // d0 + d1 grouped (link targets d1's root), d2 separate
        assert_eq!(flix.meta_count(), 2);
        let stats = flix.stats();
        assert_eq!(stats.ppo_metas, 2, "MaximalPpo pins PPO everywhere");
    }

    #[test]
    fn link_sources_and_targets_populated() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let m0 = flix.meta_of(cg.global(0, 1));
        let md = flix.meta(m0);
        assert!(md
            .link_sources
            .contains(&flix.local_of(cg.global(0, 1))));
        let m1 = flix.meta_of(cg.global(1, 0));
        assert!(flix
            .meta(m1)
            .link_targets
            .contains(&flix.local_of(cg.global(1, 0))));
    }
}
