//! Vague queries with semantic and structural relaxation (paper §1.1).
//!
//! The paper motivates FliX with XXL-style queries such as
//! `//~movie[...]//~actor`: tag names match *similar* tags (from an
//! ontology) with a similarity score, and the child axis is relaxed to
//! descendants-or-self with relevance decaying in path length. This module
//! implements that scoring layer on top of the [`crate::pee`] evaluator:
//! the ontology is a pluggable [`TagSimilarity`] table, and the relevance
//! of a match is `sim(tag) * decay^(distance - 1)`, optionally discounted
//! once more per traversed link (the paper's "information within one
//! document is more coherent" refinement).

use crate::framework::Flix;
use crate::pee::QueryOptions;
use graphcore::{Distance, NodeId};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// A similarity table: for a query tag name, the data tag names that may
/// match it and their scores in `(0, 1]`.
///
/// The identity similarity (`tag` matches itself at 1.0) is implicit.
#[derive(Debug, Clone, Default)]
pub struct TagSimilarity {
    table: HashMap<String, Vec<(String, f64)>>,
}

impl TagSimilarity {
    /// Empty table: only exact tag matches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that query tag `query` also matches data tag `data` with
    /// similarity `sim`.
    ///
    /// # Panics
    /// If `sim` is not in `(0, 1]`.
    pub fn add(&mut self, query: &str, data: &str, sim: f64) -> &mut Self {
        assert!(sim > 0.0 && sim <= 1.0, "similarity must be in (0, 1]");
        self.table
            .entry(query.to_string())
            .or_default()
            .push((data.to_string(), sim));
        self
    }

    /// All data tags matching `query`, including the identity match.
    pub fn expansions(&self, query: &str) -> Vec<(String, f64)> {
        let mut out = vec![(query.to_string(), 1.0)];
        if let Some(list) = self.table.get(query) {
            for (data, sim) in list {
                if data != query {
                    out.push((data.clone(), *sim));
                }
            }
        }
        out
    }
}

/// A vague descendants query: start element, target tag *name* (relaxed
/// through the similarity table).
#[derive(Debug, Clone)]
pub struct VagueQuery {
    /// Start element (global id).
    pub start: NodeId,
    /// Target tag name (before relaxation).
    pub target: String,
    /// Results below this relevance are dropped.
    pub min_score: f64,
    /// Maximum number of results (best-first).
    pub top_k: usize,
}

/// One scored result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredResult {
    /// The matching element.
    pub node: NodeId,
    /// Hop distance from the start element.
    pub distance: Distance,
    /// The data tag that matched (may differ from the query tag).
    pub matched_tag: String,
    /// Relevance in `(0, 1]`.
    pub score: f64,
}

/// Evaluator combining tag similarity with distance-decayed relevance.
#[derive(Debug, Clone)]
pub struct VagueEvaluator {
    /// The ontology-derived similarity table.
    pub sims: TagSimilarity,
    /// Per-hop relevance decay in `(0, 1]`; a direct child scores the full
    /// tag similarity, each further hop multiplies by this factor.
    pub distance_decay: f64,
}

impl VagueEvaluator {
    /// Creates an evaluator with the given decay.
    pub fn new(sims: TagSimilarity, distance_decay: f64) -> Self {
        assert!(
            distance_decay > 0.0 && distance_decay <= 1.0,
            "decay must be in (0, 1]"
        );
        Self {
            sims,
            distance_decay,
        }
    }

    /// Relevance of a match at `distance` with tag similarity `sim`.
    pub fn score(&self, sim: f64, distance: Distance) -> f64 {
        sim * self.distance_decay.powi(distance.saturating_sub(1) as i32)
    }

    /// Evaluates `start ~// target` over `flix`, returning results sorted
    /// by descending relevance (ties by distance, then node id).
    pub fn evaluate(&self, flix: &Flix, q: &VagueQuery) -> Vec<ScoredResult> {
        let tags = &flix.collection().collection.tags;
        // The smallest relevance still admissible bounds the search depth:
        // sim * decay^(d-1) >= min_score  =>  d <= 1 + log(min/sim)/log(decay)
        let mut best: HashMap<NodeId, ScoredResult> = HashMap::new();
        for (data_tag, sim) in self.sims.expansions(&q.target) {
            let Some(tag_id) = tags.get(&data_tag) else {
                continue; // tag not in this collection
            };
            let max_distance = if self.distance_decay < 1.0 && q.min_score > 0.0 {
                let d = 1.0 + (q.min_score / sim).ln() / self.distance_decay.ln();
                if d < 1.0 {
                    continue; // even a direct child scores below the floor
                }
                Some(d.floor() as Distance)
            } else {
                None
            };
            let opts = QueryOptions {
                max_distance,
                ..QueryOptions::default()
            };
            flix.for_each_descendant(q.start, tag_id, &opts, |r| {
                let score = self.score(sim, r.distance);
                if score >= q.min_score {
                    let entry = best.entry(r.node);
                    match entry {
                        std::collections::hash_map::Entry::Occupied(mut o) => {
                            if score > o.get().score {
                                o.insert(ScoredResult {
                                    node: r.node,
                                    distance: r.distance,
                                    matched_tag: data_tag.clone(),
                                    score,
                                });
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(ScoredResult {
                                node: r.node,
                                distance: r.distance,
                                matched_tag: data_tag.clone(),
                                score,
                            });
                        }
                    }
                }
                ControlFlow::Continue(())
            });
        }
        let mut out: Vec<ScoredResult> = best.into_values().collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.distance.cmp(&b.distance))
                .then(a.node.cmp(&b.node))
        });
        out.truncate(q.top_k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlixConfig;
    use std::sync::Arc;
    use xmlgraph::{Collection, Document};

    /// movie(0) -> cast(1) -> actor(2)
    ///          -> follows(3) -> science-fiction(4) -> cast(5) -> actor(6)
    fn movies() -> Arc<xmlgraph::CollectionGraph> {
        let mut c = Collection::new();
        let movie = c.tags.intern("movie");
        let cast = c.tags.intern("cast");
        let actor = c.tags.intern("actor");
        let follows = c.tags.intern("follows");
        let scifi = c.tags.intern("science-fiction");
        let mut d = Document::new("m.xml");
        let m = d.add_element(movie, None);
        let c1 = d.add_element(cast, Some(m));
        d.add_element(actor, Some(c1));
        let f = d.add_element(follows, Some(m));
        let s = d.add_element(scifi, Some(f));
        let c2 = d.add_element(cast, Some(s));
        d.add_element(actor, Some(c2));
        c.add_document(d).unwrap();
        Arc::new(c.seal())
    }

    #[test]
    fn expansion_includes_identity() {
        let mut sims = TagSimilarity::new();
        sims.add("movie", "science-fiction", 0.9);
        let e = sims.expansions("movie");
        assert_eq!(e[0], ("movie".to_string(), 1.0));
        assert_eq!(e[1], ("science-fiction".to_string(), 0.9));
        assert_eq!(sims.expansions("actor").len(), 1);
    }

    #[test]
    fn decay_ranks_near_matches_higher() {
        let cg = movies();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let eval = VagueEvaluator::new(TagSimilarity::new(), 0.8);
        let res = eval.evaluate(
            &flix,
            &VagueQuery {
                start: 0,
                target: "actor".into(),
                min_score: 0.0,
                top_k: 10,
            },
        );
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].node, 2, "direct cast actor first");
        assert!(res[0].score > res[1].score);
        // distance 2 => decay^1, distance 4 => decay^3
        assert!((res[0].score - 0.8).abs() < 1e-9);
        assert!((res[1].score - 0.8f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn tag_similarity_finds_scifi_as_movie() {
        let cg = movies();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let mut sims = TagSimilarity::new();
        sims.add("movie", "science-fiction", 0.9);
        let eval = VagueEvaluator::new(sims, 0.8);
        let res = eval.evaluate(
            &flix,
            &VagueQuery {
                start: 0,
                target: "movie".into(),
                min_score: 0.0,
                top_k: 10,
            },
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].node, 4);
        assert_eq!(res[0].matched_tag, "science-fiction");
        // sim 0.9 at distance 2: 0.9 * 0.8
        assert!((res[0].score - 0.72).abs() < 1e-9);
    }

    #[test]
    fn min_score_prunes_and_bounds_depth() {
        let cg = movies();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let eval = VagueEvaluator::new(TagSimilarity::new(), 0.5);
        let res = eval.evaluate(
            &flix,
            &VagueQuery {
                start: 0,
                target: "actor".into(),
                min_score: 0.3,
                top_k: 10,
            },
        );
        // far actor scores 0.5^3 = 0.125 < 0.3 -> dropped
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].node, 2);
    }

    #[test]
    fn top_k_truncates() {
        let cg = movies();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let eval = VagueEvaluator::new(TagSimilarity::new(), 0.9);
        let res = eval.evaluate(
            &flix,
            &VagueQuery {
                start: 0,
                target: "actor".into(),
                min_score: 0.0,
                top_k: 1,
            },
        );
        assert_eq!(res.len(), 1);
    }

    #[test]
    #[should_panic(expected = "similarity must be")]
    fn invalid_similarity_rejected() {
        TagSimilarity::new().add("a", "b", 1.5);
    }
}
