//! FliX — a flexible framework for indexing complex, interlinked XML
//! document collections (Schenkel, EDBT 2004 Workshops).
//!
//! Existing path indexes each fit one structural regime: the pre/postorder
//! index (PPO) is unbeatable on trees but cannot handle links; HOPI's
//! 2-hop labels handle arbitrary link graphs but grow large and expensive
//! to build; APEX summaries are compact but evaluate the
//! descendants-or-self axis by traversal. Real collections mix all these
//! regimes. FliX therefore:
//!
//! 1. partitions the collection into **meta documents** (§4.1, [`mdb`]),
//! 2. picks the best **indexing strategy** per meta document (§4.1,
//!    [`config::StrategySelector`]),
//! 3. builds one index per meta document, remembering the links no index
//!    covers (§4.2, [`framework::Flix::build`]),
//! 4. answers `a//B` queries with a priority-queue evaluator that chases
//!    the remaining links at run time and streams results in approximately
//!    ascending distance order (§5, [`pee`]).
//!
//! The crate also includes the paper's §1 motivation layer: vague queries
//! with tag-similarity and distance-decayed relevance scoring ([`vague`]),
//! and persistence of built frameworks into a [`pagestore`] blob store
//! ([`persist`]).
//!
//! # Quick start
//!
//! ```
//! use flix::{Flix, FlixConfig, QueryOptions};
//! use std::sync::Arc;
//!
//! // Build a tiny two-document collection with one cross-document link.
//! let mut coll = xmlgraph::Collection::new();
//! let mut tags = std::collections::HashMap::new();
//! for name in ["paper", "sec", "cite"] {
//!     tags.insert(name, coll.tags.intern(name));
//! }
//! let mut d1 = xmlgraph::Document::new("a.xml");
//! let root = d1.add_element(tags["paper"], None);
//! let sec = d1.add_element(tags["sec"], Some(root));
//! let cite = d1.add_element(tags["cite"], Some(sec));
//! d1.add_link(cite, xmlgraph::LinkTarget {
//!     document: Some("b.xml".into()),
//!     fragment: None,
//! });
//! let mut d2 = xmlgraph::Document::new("b.xml");
//! d2.add_element(tags["paper"], None);
//! coll.add_document(d1).unwrap();
//! coll.add_document(d2).unwrap();
//!
//! let graph = Arc::new(coll.seal());
//! let flix = Flix::build(graph.clone(), FlixConfig::Naive);
//! // All `paper` descendants of a.xml's root — including b.xml's root,
//! // reached through the citation link.
//! let results = flix.find_descendants(graph.doc_root(0), tags["paper"],
//!                                     &QueryOptions::default());
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].node, graph.doc_root(1));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Query-result caching layered over a built framework.
pub mod cache;
/// Framework configuration and per-meta-document strategy selection.
pub mod config;
/// Disk-resident query execution over a persisted framework.
pub mod diskexec;
/// The in-memory FliX framework: build, stats, and accessors.
pub mod framework;
/// Meta-document partitioning of the collection graph (§4.1).
pub mod mdb;
/// Per-meta-document index wrappers and the link catalogs.
pub mod meta;
/// Query-path observability: registered metrics and the slow-query log.
pub mod obs;
/// The priority-queue query evaluator chasing runtime links (§5).
pub mod pee;
/// Persistence of built frameworks into a `pagestore` blob store.
pub mod persist;
/// Multi-step path query plans over the framework.
pub mod query;
/// Build observability: per-meta and aggregate build reports.
pub mod report;
/// Sharded serving: per-shard index views with cross-shard merge.
pub mod shard;
/// Top-k aggregation (NRA) over scored result streams.
pub mod topk;
/// Workload monitoring and reconfiguration recommendations.
pub mod tuning;
/// Vague queries: tag similarity and distance-decayed scoring (§1).
pub mod vague;

pub use cache::{CacheStats, CachedFlix};
pub use config::{BuildOptions, FlixConfig, StrategyKind, StrategySelector};
pub use diskexec::{DiskExecStats, DiskFlix};
pub use framework::{Flix, FlixStats, MetaDocStats};
pub use meta::{MetaDocument, MetaIndex};
pub use obs::QueryPathMetrics;
pub use pee::{PeeStats, QueryOptions, QueryOutcome, QueryResult, ResultStream};
pub use query::{PathQuery, QueryBinding, QueryEngine};
pub use report::{BuildReport, MetaBuildReport};
pub use shard::{ShardPlan, ShardStats, ShardedFlix, ShardedStats};
pub use topk::{top_k_nra, Aggregation, TopKResult};
pub use tuning::{LoadMonitor, Recommendation, SharedLoadMonitor};
pub use vague::{ScoredResult, TagSimilarity, VagueEvaluator, VagueQuery};
