//! The Path Expression Evaluator (paper §5, Fig. 4).
//!
//! `findDescendantsByName(a, B)` keeps a priority queue `IE` of entry
//! elements ordered by a lower bound on their distance from the start
//! element. Popping an entry `e`: answer the query inside `e`'s meta
//! document from its index (one *block* of results, ascending in-meta
//! distance), then push the targets of all runtime links reachable from
//! `e` with priority `dist(a,e) + dist(e,link) + 1`. Results therefore
//! stream in *approximately* ascending global distance — exactly the
//! trade-off §6 quantifies with the error-rate experiment.
//!
//! Duplicate elimination follows §5.1: instead of remembering every result,
//! the evaluator remembers only the *entry points* per meta document. An
//! entry reachable from an earlier entry of the same meta document is
//! subsumed and dropped; a result reachable from an earlier entry has
//! already been returned and is skipped.

use crate::framework::Flix;
use flixobs::journal::{EventKind, JournalHandle};
use flixobs::{Deadline, QueryTrace, SpanCounters, SpanStage, Stopwatch};
use graphcore::{Distance, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::ControlFlow;
use xmlgraph::TagId;

/// One query answer: a node and its (approximate) distance from the start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueryResult {
    /// Distance from the query's start element (hop count; link hops cost
    /// one extra, matching Fig. 4).
    pub distance: Distance,
    /// The matching element (global id).
    pub node: NodeId,
}

/// Options controlling query evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Stop once the queue's lower bound exceeds this distance.
    pub max_distance: Option<Distance>,
    /// Stop after this many results.
    pub max_results: Option<usize>,
    /// Whether the start element itself may match (descendant-or-self vs.
    /// strict descendant semantics).
    pub include_start: bool,
    /// Return results in *exactly* ascending distance order instead of the
    /// default approximate (block-streamed) order. This implements the
    /// paper's §7 optimisation sketch: results are held back until the
    /// queue's lower bound proves no shorter result can still appear. It
    /// costs memory (buffered results plus an emitted set) and delays the
    /// first results.
    pub exact_order: bool,
    /// Per-request time budget, checked once per queue pop (no clock reads
    /// when unset). On expiry the evaluation stops and the results emitted
    /// so far stand as a partial prefix of the full answer; the outcome
    /// variants report the cut via their `timed_out` marker.
    pub deadline: Option<Deadline>,
}

impl QueryOptions {
    /// Top-k convenience constructor.
    pub fn top_k(k: usize) -> Self {
        Self {
            max_results: Some(k),
            ..Self::default()
        }
    }

    /// Distance-threshold convenience constructor.
    pub fn within(d: Distance) -> Self {
        Self {
            max_distance: Some(d),
            ..Self::default()
        }
    }

    /// Exactly-sorted convenience constructor (§7 optimisation).
    pub fn exact() -> Self {
        Self {
            exact_order: true,
            ..Self::default()
        }
    }

    /// Attaches a per-request deadline.
    pub fn with_deadline(self, deadline: Deadline) -> Self {
        Self {
            deadline: Some(deadline),
            ..self
        }
    }
}

/// A collected query answer plus its termination status, for callers that
/// need to distinguish a complete answer from a deadline-cut prefix (the
/// serving path does; plain [`Flix::find_descendants`] ignores deadlines).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The (possibly partial) results, in the evaluator's streamed order.
    pub results: Vec<QueryResult>,
    /// True when the deadline expired before the evaluation finished. The
    /// results are then the prefix an untimed evaluation would have emitted
    /// first — still distance-ordered under `exact_order`.
    pub timed_out: bool,
    /// Evaluation counters.
    pub stats: PeeStats,
}

/// Evaluation counters, exposed for the benchmark harness and for cost
/// models that emulate the paper's database-backed deployment (every entry
/// pop is one index lookup — a database round trip in the original
/// implementation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeeStats {
    /// Entries popped from the priority queue and answered (meta-document
    /// index lookups).
    pub entries_popped: usize,
    /// Entries dropped by the §5.1 subsumption check.
    pub entries_subsumed: usize,
    /// Index rows touched (or elements traversed, for APEX) while
    /// materialising meta-document blocks — row fetches in the paper's
    /// database-backed deployment, charged when the block is built.
    pub block_results_scanned: usize,
    /// Runtime links pushed into the queue.
    pub links_expanded: usize,
}

impl PeeStats {
    /// Adds `other`'s counters into `self` — used to combine the two sides
    /// of a bidirectional connection test into one per-query record.
    pub fn absorb(&mut self, other: PeeStats) {
        self.entries_popped += other.entries_popped;
        self.entries_subsumed += other.entries_subsumed;
        self.block_results_scanned += other.block_results_scanned;
        self.links_expanded += other.links_expanded;
    }
}

impl From<PeeStats> for SpanCounters {
    fn from(s: PeeStats) -> Self {
        SpanCounters {
            entries_popped: s.entries_popped as u64,
            entries_subsumed: s.entries_subsumed as u64,
            rows_scanned: s.block_results_scanned as u64,
            links_expanded: s.links_expanded as u64,
        }
    }
}

/// Counter delta between two evaluator snapshots, for span attribution.
fn counters_since(before: &PeeStats, after: &PeeStats) -> SpanCounters {
    SpanCounters {
        entries_popped: (after.entries_popped - before.entries_popped) as u64,
        entries_subsumed: (after.entries_subsumed - before.entries_subsumed) as u64,
        rows_scanned: (after.block_results_scanned - before.block_results_scanned) as u64,
        links_expanded: (after.links_expanded - before.links_expanded) as u64,
    }
}

/// Direction of an axis evaluation.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Axis {
    /// Forward reachability (`a//B`).
    Descendants,
    /// Backward reachability.
    Ancestors,
}

/// The node universe an evaluation runs over: the full framework, or one
/// shard's view of it (see [`crate::shard`]). The evaluator in
/// [`evaluate_axis_space`] is generic over this trait, so the sharded and
/// unsharded paths execute the *same* loop over the same meta-document
/// data — which is what makes their result streams byte-identical.
pub(crate) trait MetaSpace {
    /// Number of meta documents in this space.
    fn meta_count(&self) -> usize;
    /// `(meta, local)` of a global node, or `None` when the node lies
    /// outside this space (a shard view popped a cross-shard link target).
    fn resolve(&self, node: NodeId) -> Option<(u32, u32)>;
    /// Meta document accessor (ids are space-local).
    fn meta(&self, id: u32) -> &crate::meta::MetaDocument;
    /// Global id of `(meta, local)`.
    fn global_of(&self, meta: u32, local: u32) -> NodeId;
    /// Runtime links out of `u` (global ids) known to this space.
    fn links_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)];
    /// Runtime links into `v`, as `(target, source)` pairs.
    fn links_into(&self, v: NodeId) -> &[(NodeId, NodeId)];
}

impl MetaSpace for Flix {
    fn meta_count(&self) -> usize {
        Flix::meta_count(self)
    }

    fn resolve(&self, node: NodeId) -> Option<(u32, u32)> {
        // A full framework maps every node; shard views built by
        // `Flix::shard_view` leave `u32::MAX` holes for foreign nodes.
        let meta = Flix::meta_of(self, node);
        (meta != u32::MAX).then(|| (meta, Flix::local_of(self, node)))
    }

    fn meta(&self, id: u32) -> &crate::meta::MetaDocument {
        Flix::meta(self, id)
    }

    fn global_of(&self, meta: u32, local: u32) -> NodeId {
        Flix::global_of(self, meta, local)
    }

    fn links_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        Flix::links_out_of(self, u)
    }

    fn links_into(&self, v: NodeId) -> &[(NodeId, NodeId)] {
        Flix::links_into(self, v)
    }
}

/// How a space-generic evaluation ended.
pub(crate) enum EvalEnd {
    /// The evaluation ran to completion (or was cut by its deadline /
    /// result cap / distance bound — the same exits the unsharded
    /// evaluator has).
    Done {
        /// True when the deadline expired before the evaluation finished.
        timed_out: bool,
    },
    /// The queue surfaced a node the space cannot resolve: a shard view
    /// popped a cross-shard link target. Everything emitted so far must be
    /// discarded and the query re-run over a space that covers the node
    /// (the sharded fan-out path does exactly that).
    Escaped,
}

impl Flix {
    /// `a//B`: all descendants of `start` with tag `target`, streamed to
    /// `emit` in approximately ascending distance order. `emit` may stop
    /// the evaluation early by returning [`ControlFlow::Break`].
    pub fn for_each_descendant(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        emit: impl FnMut(QueryResult) -> ControlFlow<()>,
    ) {
        self.evaluate_axis(&[(start, 0)], target, opts, Axis::Descendants, emit);
    }

    /// Like [`Self::for_each_descendant`], but the callback also receives a
    /// snapshot of the evaluation counters at emission time, and the final
    /// counters are returned. Used by the benchmark harness to attribute
    /// per-result costs (the paper's deployment paid one database round
    /// trip per entry pop).
    pub fn for_each_descendant_traced(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        emit: impl FnMut(QueryResult, PeeStats) -> ControlFlow<()>,
    ) -> PeeStats {
        let mut stats = PeeStats::default();
        self.evaluate_axis_traced(
            &[(start, 0)],
            target,
            opts,
            Axis::Descendants,
            &mut stats,
            None,
            emit,
        );
        stats
    }

    /// Like [`Self::for_each_descendant_traced`], but additionally records
    /// timed spans (queue pop → block fetch → link expansion) into `trace`
    /// and stamps the query's end-to-end latency via
    /// [`QueryTrace::finish`]. Tracing only observes the evaluation: the
    /// result stream is identical with and without it (proven by test).
    pub fn for_each_descendant_with_trace(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        trace: &mut QueryTrace,
        emit: impl FnMut(QueryResult, PeeStats) -> ControlFlow<()>,
    ) -> PeeStats {
        let sw = Stopwatch::start();
        let mut stats = PeeStats::default();
        self.evaluate_axis_traced(
            &[(start, 0)],
            target,
            opts,
            Axis::Descendants,
            &mut stats,
            Some(trace),
            emit,
        );
        trace.finish(sw.elapsed_micros());
        stats
    }

    /// `a//B` collected into a vector, with a full per-query trace and the
    /// final evaluation counters.
    pub fn find_descendants_with_trace(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        trace: &mut QueryTrace,
    ) -> (Vec<QueryResult>, PeeStats) {
        let mut out = Vec::new();
        let stats = self.for_each_descendant_with_trace(start, target, opts, trace, |r, _| {
            out.push(r);
            ControlFlow::Continue(())
        });
        (out, stats)
    }

    /// `a//B` collected into a vector.
    pub fn find_descendants(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Vec<QueryResult> {
        let mut out = Vec::new();
        self.for_each_descendant(start, target, opts, |r| {
            out.push(r);
            ControlFlow::Continue(())
        });
        out
    }

    /// `a//B` collected into a vector along with the `timed_out` marker and
    /// the evaluation counters — the deadline-aware entry point used by the
    /// serving path.
    pub fn find_descendants_outcome(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> QueryOutcome {
        self.axis_outcome_journaled(start, target, opts, Axis::Descendants, None)
    }

    /// [`Self::find_descendants_outcome`] with flight-recorder events:
    /// evaluator span boundaries and deadline expiry are journaled under
    /// the handle's request. The journal is write-only — the result
    /// stream is byte-identical to the unjournaled call.
    pub fn find_descendants_outcome_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        self.axis_outcome_journaled(start, target, opts, Axis::Descendants, journal)
    }

    /// Ancestors variant of [`Self::find_descendants_outcome`].
    pub fn find_ancestors_outcome(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> QueryOutcome {
        self.axis_outcome_journaled(start, target, opts, Axis::Ancestors, None)
    }

    /// Ancestors variant of [`Self::find_descendants_outcome_journaled`].
    pub fn find_ancestors_outcome_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        self.axis_outcome_journaled(start, target, opts, Axis::Ancestors, journal)
    }

    /// Shared body of the outcome entry points.
    fn axis_outcome_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        axis: Axis,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        let mut stats = PeeStats::default();
        let mut results = Vec::new();
        let end = evaluate_axis_space(
            self,
            &[(start, 0)],
            target,
            opts,
            axis,
            &mut stats,
            None,
            journal,
            |r, _| {
                results.push(r);
                ControlFlow::Continue(())
            },
        );
        let timed_out = match end {
            EvalEnd::Done { timed_out } => timed_out,
            // A full framework resolves every node; see
            // `evaluate_axis_traced`.
            EvalEnd::Escaped => false,
        };
        QueryOutcome {
            results,
            timed_out,
            stats,
        }
    }

    /// Ancestors variant: all elements with tag `target` from which `start`
    /// is reachable.
    pub fn find_ancestors(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Vec<QueryResult> {
        let mut out = Vec::new();
        self.evaluate_axis(&[(start, 0)], target, opts, Axis::Ancestors, |r| {
            out.push(r);
            ControlFlow::Continue(())
        });
        out
    }

    /// `A//B` (§5.2): descendants with tag `target` of *any* element with
    /// tag `source`. Every source element seeds the queue at priority 0;
    /// distances are minima over the seeds.
    pub fn find_descendants_of_type(
        &self,
        source: TagId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Vec<QueryResult> {
        let seeds: Vec<(NodeId, Distance)> = self
            .collection()
            .nodes_with_tag(source)
            .iter()
            .map(|&u| (u, 0))
            .collect();
        let mut out = Vec::new();
        // A//B includes matches that are (non-strict) descendants of a
        // *different* source element, so self-matching is handled by the
        // multi-seed include-self semantics below.
        let opts = QueryOptions {
            include_start: opts.include_start,
            ..*opts
        };
        self.evaluate_axis(&seeds, target, &opts, Axis::Descendants, |r| {
            out.push(r);
            ControlFlow::Continue(())
        });
        out
    }

    /// Connection test `a//b` (§5.2): is `to` reachable from `from`, and at
    /// what (approximate) distance? Stops as soon as the queue's lower
    /// bound proves no shorter connection exists, or the threshold in
    /// `opts.max_distance` is passed.
    pub fn connection_test(
        &self,
        from: NodeId,
        to: NodeId,
        opts: &QueryOptions,
    ) -> Option<Distance> {
        self.connection_test_traced(from, to, opts).0
    }

    /// [`Self::connection_test`] plus the evaluation counters, so the §7
    /// load monitor can account connection workloads like axis queries
    /// (every pop is an index lookup, every distance probe a row fetch).
    pub fn connection_test_traced(
        &self,
        from: NodeId,
        to: NodeId,
        opts: &QueryOptions,
    ) -> (Option<Distance>, PeeStats) {
        let mut stats = PeeStats::default();
        if from == to {
            return (Some(0), stats);
        }
        let to_meta = self.meta_of(to);
        let to_local = self.local_of(to);
        let mut best: Option<Distance> = None;
        let mut queue: BinaryHeap<Reverse<(Distance, NodeId)>> = BinaryHeap::new();
        let mut entries: Vec<Vec<u32>> = vec![Vec::new(); self.meta_count()];
        queue.push(Reverse((0, from)));
        while let Some(Reverse((d, e))) = queue.pop() {
            if opts.deadline.is_some_and(|dl| dl.expired()) {
                break; // budget spent: the best candidate so far stands
            }
            if let Some(b) = best {
                if d >= b {
                    break; // no remaining entry can improve the answer
                }
            }
            if let Some(limit) = opts.max_distance {
                if d > limit {
                    break;
                }
            }
            let meta = self.meta_of(e);
            let local = self.local_of(e);
            let md = self.meta(meta);
            if entries[meta as usize]
                .iter()
                .any(|&p| md.index.is_reachable(p, local))
            {
                stats.entries_subsumed += 1;
                continue; // subsumed by an earlier entry
            }
            stats.entries_popped += 1;
            if meta == to_meta {
                // one in-meta distance probe = one row fetch
                stats.block_results_scanned += 1;
                if let Some(dd) = md.index.distance(local, to_local) {
                    let cand = d + dd;
                    if best.map_or(true, |b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            for (ls, dls) in md.reachable_link_sources(local) {
                let global_src = self.global_of(meta, ls);
                for &(_, tgt) in self.links_out_of(global_src) {
                    stats.links_expanded += 1;
                    queue.push(Reverse((d + dls + 1, tgt)));
                }
            }
            entries[meta as usize].push(local);
        }
        (
            best.filter(|&b| opts.max_distance.map_or(true, |m| b <= m)),
            stats,
        )
    }

    /// Bidirectional connection test (§5.2's sketched optimisation): one
    /// search walks forward from `from` over descendants, a second walks
    /// backward from `to` over ancestors, popping entries alternately. The
    /// first side to *confirm* a connection (its queue lower bound can no
    /// longer improve its best candidate) answers; if both exhaust without
    /// finding one, the elements are not connected. Depending on the fan-in
    /// and fan-out around the endpoints either side may finish orders of
    /// magnitude earlier than a one-sided search.
    pub fn connection_test_bidirectional(
        &self,
        from: NodeId,
        to: NodeId,
        opts: &QueryOptions,
    ) -> Option<Distance> {
        self.connection_test_bidirectional_traced(from, to, opts).0
    }

    /// [`Self::connection_test_bidirectional`] plus the combined counters
    /// of both search directions.
    pub fn connection_test_bidirectional_traced(
        &self,
        from: NodeId,
        to: NodeId,
        opts: &QueryOptions,
    ) -> (Option<Distance>, PeeStats) {
        if from == to {
            return (Some(0), PeeStats::default());
        }
        let mut fwd = ConnectionSearch::new(self, from, to, Axis::Descendants, opts.max_distance);
        let mut bwd = ConnectionSearch::new(self, to, from, Axis::Ancestors, opts.max_distance);
        let combined = |fwd: &ConnectionSearch<'_>, bwd: &ConnectionSearch<'_>| {
            let mut s = fwd.stats;
            s.absorb(bwd.stats);
            s
        };
        loop {
            if opts.deadline.is_some_and(|dl| dl.expired()) {
                // Budget spent: report the better unconfirmed candidate.
                let best = fwd.best.into_iter().chain(bwd.best).min();
                return (best, combined(&fwd, &bwd));
            }
            match fwd.step() {
                SearchStep::Confirmed(d) => return (Some(d), combined(&fwd, &bwd)),
                SearchStep::Exhausted => {
                    // forward saw everything reachable: its verdict is final
                    return (fwd.best, combined(&fwd, &bwd));
                }
                SearchStep::Progress => {}
            }
            match bwd.step() {
                SearchStep::Confirmed(d) => return (Some(d), combined(&fwd, &bwd)),
                SearchStep::Exhausted => {
                    return (bwd.best, combined(&fwd, &bwd));
                }
                SearchStep::Progress => {}
            }
        }
    }

    /// Shared axis evaluator (Fig. 4 generalised over direction and
    /// multiple seeds).
    fn evaluate_axis(
        &self,
        seeds: &[(NodeId, Distance)],
        target: TagId,
        opts: &QueryOptions,
        axis: Axis,
        mut emit: impl FnMut(QueryResult) -> ControlFlow<()>,
    ) {
        let mut stats = PeeStats::default();
        self.evaluate_axis_traced(seeds, target, opts, axis, &mut stats, None, |r, _| emit(r));
    }

    /// The instrumented core of the evaluator, for the full framework.
    /// Returns whether the evaluation was cut by the deadline in `opts`.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_axis_traced(
        &self,
        seeds: &[(NodeId, Distance)],
        target: TagId,
        opts: &QueryOptions,
        axis: Axis,
        stats: &mut PeeStats,
        trace: Option<&mut QueryTrace>,
        emit: impl FnMut(QueryResult, PeeStats) -> ControlFlow<()>,
    ) -> bool {
        match evaluate_axis_space(self, seeds, target, opts, axis, stats, trace, None, emit) {
            EvalEnd::Done { timed_out } => timed_out,
            // A full framework resolves every node, so the evaluation can
            // never escape; shard views only evaluate through
            // `crate::shard`, which handles the escape itself.
            EvalEnd::Escaped => false,
        }
    }
}

/// The instrumented core of the evaluator (Fig. 4 generalised over
/// direction, multiple seeds, and the node universe).
///
/// With `trace` set, every queue pop (including the §5.1 subsumption
/// check), meta-index block materialisation, and link-expansion step is
/// recorded as a timed span carrying the counter deltas charged during
/// it. The trace is write-only from the evaluator's point of view — no
/// branch of the algorithm consults it — so the emitted result stream
/// is bit-identical with tracing on and off.
///
/// The priority queue orders entries by `(distance, node)` — the heap is a
/// *set* of keyed entries, so any space presenting the same meta documents
/// and link tables drives the loop through the same pop sequence. A shard
/// view presents exactly the full framework's data for its own metas, which
/// is why a run that never escapes is byte-identical to the unsharded one.
///
/// `journal` follows the same write-only discipline as `trace`: with it
/// set, a deadline cut is recorded as a flight-recorder event; with it
/// unset no journal (and no extra clock read) is touched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_axis_space<S: MetaSpace + ?Sized>(
    space: &S,
    seeds: &[(NodeId, Distance)],
    target: TagId,
    opts: &QueryOptions,
    axis: Axis,
    stats: &mut PeeStats,
    mut trace: Option<&mut QueryTrace>,
    journal: Option<&JournalHandle<'_>>,
    mut emit: impl FnMut(QueryResult, PeeStats) -> ControlFlow<()>,
) -> EvalEnd {
    let trace_clock = trace.as_ref().map(|_| Stopwatch::start());
    let mut queue: BinaryHeap<Reverse<(Distance, NodeId, bool)>> = BinaryHeap::new();
    let mut entries: Vec<Vec<u32>> = vec![Vec::new(); space.meta_count()];
    let mut returned = 0usize;
    // Exact-order machinery (§7 optimisation): results are buffered and
    // released only once the queue's lower bound proves them final.
    // `best` deduplicates by node with the minimum distance; stale heap
    // entries are dropped lazily.
    let mut hold: BinaryHeap<Reverse<(Distance, NodeId)>> = BinaryHeap::new();
    let mut best: std::collections::HashMap<NodeId, Distance> = std::collections::HashMap::new();
    let mut emitted: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    // Exact mode replaces §5.1 subsumption with Dijkstra-style entry
    // settling: every entry node is processed once, at its minimal
    // queue distance — reachability subsumption could hide shorter
    // paths that enter a meta document through a different element.
    let mut settled: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for &(s, d) in seeds {
        // the bool marks seed entries, whose self-match behaviour is
        // governed by `include_start`
        queue.push(Reverse((d, s, true)));
    }
    let mut timed_out = false;
    while let Some(Reverse((d, e, is_seed))) = queue.pop() {
        // Deadline check: one clock read per pop, none when unset. The
        // emitted prefix stands; nothing buffered is released.
        if opts.deadline.is_some_and(|dl| dl.expired()) {
            if let Some(j) = journal {
                j.event(EventKind::DeadlineExpired {
                    budget_micros: opts.deadline.map(|dl| dl.budget_micros()).unwrap_or(0),
                });
            }
            timed_out = true;
            break;
        }
        // Release buffered results that no future entry can beat: every
        // path through a remaining entry costs at least `d`.
        if opts.exact_order {
            while let Some(&Reverse((bd, bn))) = hold.peek() {
                if bd > d {
                    break;
                }
                hold.pop();
                if best.get(&bn) != Some(&bd) || !emitted.insert(bn) {
                    continue; // stale or already emitted
                }
                if let ControlFlow::Break(()) = emit(
                    QueryResult {
                        distance: bd,
                        node: bn,
                    },
                    *stats,
                ) {
                    return EvalEnd::Done { timed_out: false };
                }
                returned += 1;
                if opts.max_results.is_some_and(|k| returned >= k) {
                    return EvalEnd::Done { timed_out: false };
                }
            }
        }
        if let Some(limit) = opts.max_distance {
            if d > limit {
                break;
            }
        }
        let pop_t0 = trace_clock.map(|c| c.elapsed_micros());
        let pop_before = *stats;
        let Some((meta, local)) = space.resolve(e) else {
            // The node lives outside this space: a shard view chased a
            // cross-shard link. The caller falls back to a space that
            // covers it; nothing emitted so far may be kept.
            return EvalEnd::Escaped;
        };
        let md = space.meta(meta);

        // §5.1 duplicate elimination, step 1: drop subsumed entries.
        // (Exact mode settles per entry node instead — see above.)
        let subsumed = if opts.exact_order {
            !settled.insert(e)
        } else {
            entries[meta as usize].iter().any(|&p| match axis {
                Axis::Descendants => md.index.is_reachable(p, local),
                Axis::Ancestors => md.index.is_reachable(local, p),
            })
        };
        if subsumed {
            stats.entries_subsumed += 1;
        } else {
            stats.entries_popped += 1;
        }
        if let (Some(tr), Some(c), Some(t0)) = (trace.as_deref_mut(), trace_clock, pop_t0) {
            tr.record(
                SpanStage::QueuePop,
                t0,
                c.elapsed_micros().saturating_sub(t0),
                counters_since(&pop_before, stats),
            );
        }
        if subsumed {
            continue;
        }

        // Answer the block within this meta document. The whole block
        // is materialised before any result is emitted, so its lookup
        // work is charged up front.
        let include_self = if is_seed { opts.include_start } else { true };
        let fetch_t0 = trace_clock.map(|c| c.elapsed_micros());
        let fetch_before = *stats;
        let block = match axis {
            Axis::Descendants => {
                let (block, work) =
                    md.index
                        .descendants_by_label_counted(local, target, include_self);
                stats.block_results_scanned += work;
                block
            }
            Axis::Ancestors => {
                let (block, work) =
                    md.index
                        .ancestors_by_label_counted(local, target, include_self);
                stats.block_results_scanned += work;
                block
            }
        };
        // The span covers only the block materialisation, not the emit
        // callbacks below — client time is not evaluator time.
        if let (Some(tr), Some(c), Some(t0)) = (trace.as_deref_mut(), trace_clock, fetch_t0) {
            tr.record(
                SpanStage::BlockFetch,
                t0,
                c.elapsed_micros().saturating_sub(t0),
                counters_since(&fetch_before, stats),
            );
        }
        for (r, dr) in block {
            // §5.1 step 2: skip results an earlier entry already
            // returned. (Exact mode dedups through the best map.)
            let seen = !opts.exact_order
                && entries[meta as usize].iter().any(|&p| match axis {
                    Axis::Descendants => md.index.is_reachable(p, r),
                    Axis::Ancestors => md.index.is_reachable(r, p),
                });
            if seen {
                continue;
            }
            let total = d + dr;
            if opts.max_distance.is_some_and(|m| total > m) {
                continue;
            }
            let node = space.global_of(meta, r);
            if opts.exact_order {
                if emitted.contains(&node) {
                    continue;
                }
                let cur = best.entry(node).or_insert(Distance::MAX);
                if total < *cur {
                    *cur = total;
                    hold.push(Reverse((total, node)));
                }
                continue;
            }
            let result = QueryResult {
                distance: total,
                node,
            };
            if let ControlFlow::Break(()) = emit(result, *stats) {
                return EvalEnd::Done { timed_out: false };
            }
            returned += 1;
            if opts.max_results.is_some_and(|k| returned >= k) {
                return EvalEnd::Done { timed_out: false };
            }
        }

        // Expand runtime links (Fig. 4's `findReachableLinks`).
        let link_t0 = trace_clock.map(|c| c.elapsed_micros());
        let link_before = *stats;
        match axis {
            Axis::Descendants => {
                for (ls, dls) in md.reachable_link_sources(local) {
                    let global_src = space.global_of(meta, ls);
                    for &(_, tgt) in space.links_out_of(global_src) {
                        stats.links_expanded += 1;
                        queue.push(Reverse((d + dls + 1, tgt, false)));
                    }
                }
            }
            Axis::Ancestors => {
                for (lt, dlt) in md.reaching_link_targets(local) {
                    let global_tgt = space.global_of(meta, lt);
                    for &(_, src) in space.links_into(global_tgt) {
                        stats.links_expanded += 1;
                        queue.push(Reverse((d + dlt + 1, src, false)));
                    }
                }
            }
        }
        if let (Some(tr), Some(c), Some(t0)) = (trace.as_deref_mut(), trace_clock, link_t0) {
            tr.record(
                SpanStage::LinkExpand,
                t0,
                c.elapsed_micros().saturating_sub(t0),
                counters_since(&link_before, stats),
            );
        }
        entries[meta as usize].push(local);
    }
    // Queue drained: everything still buffered is final; drain in order.
    // Not so on a deadline cut — a shorter result could still have
    // appeared — so the buffer is dropped and the emitted prefix stands.
    if opts.exact_order && !timed_out {
        while let Some(Reverse((bd, bn))) = hold.pop() {
            if best.get(&bn) != Some(&bd) || !emitted.insert(bn) {
                continue;
            }
            if let ControlFlow::Break(()) = emit(
                QueryResult {
                    distance: bd,
                    node: bn,
                },
                *stats,
            ) {
                return EvalEnd::Done { timed_out: false };
            }
            returned += 1;
            if opts.max_results.is_some_and(|k| returned >= k) {
                return EvalEnd::Done { timed_out: false };
            }
        }
    }
    EvalEnd::Done { timed_out }
}

/// Outcome of one step of a [`ConnectionSearch`].
enum SearchStep {
    /// The search proved its best candidate distance cannot improve.
    Confirmed(Distance),
    /// The queue ran dry; `best` holds the final verdict for this side.
    Exhausted,
    /// One entry processed, keep stepping.
    Progress,
}

/// One direction of a (possibly bidirectional) connection test, advanced
/// one entry pop at a time.
struct ConnectionSearch<'f> {
    flix: &'f Flix,
    target: NodeId,
    axis: Axis,
    max_distance: Option<Distance>,
    queue: BinaryHeap<Reverse<(Distance, NodeId)>>,
    entries: Vec<Vec<u32>>,
    best: Option<Distance>,
    stats: PeeStats,
}

impl<'f> ConnectionSearch<'f> {
    fn new(
        flix: &'f Flix,
        start: NodeId,
        target: NodeId,
        axis: Axis,
        max_distance: Option<Distance>,
    ) -> Self {
        let mut queue = BinaryHeap::new();
        queue.push(Reverse((0, start)));
        Self {
            flix,
            target,
            axis,
            max_distance,
            queue,
            entries: vec![Vec::new(); flix.meta_count()],
            best: None,
            stats: PeeStats::default(),
        }
    }

    fn step(&mut self) -> SearchStep {
        let Some(Reverse((d, e))) = self.queue.pop() else {
            return SearchStep::Exhausted;
        };
        if let Some(b) = self.best {
            if d >= b {
                return SearchStep::Confirmed(b);
            }
        }
        if self.max_distance.is_some_and(|m| d > m) {
            return SearchStep::Exhausted;
        }
        let meta = self.flix.meta_of(e);
        let local = self.flix.local_of(e);
        let md = self.flix.meta(meta);
        let subsumed = self.entries[meta as usize]
            .iter()
            .any(|&p| match self.axis {
                Axis::Descendants => md.index.is_reachable(p, local),
                Axis::Ancestors => md.index.is_reachable(local, p),
            });
        if subsumed {
            self.stats.entries_subsumed += 1;
            return SearchStep::Progress;
        }
        self.stats.entries_popped += 1;
        if meta == self.flix.meta_of(self.target) {
            self.stats.block_results_scanned += 1;
            let t_local = self.flix.local_of(self.target);
            let found = match self.axis {
                Axis::Descendants => md.index.distance(local, t_local),
                Axis::Ancestors => md.index.distance(t_local, local),
            };
            if let Some(dd) = found {
                let cand = d + dd;
                if self.max_distance.map_or(true, |m| cand <= m)
                    && self.best.map_or(true, |b| cand < b)
                {
                    self.best = Some(cand);
                }
            }
        }
        match self.axis {
            Axis::Descendants => {
                for (ls, dls) in md.reachable_link_sources(local) {
                    let src = self.flix.global_of(meta, ls);
                    for &(_, tgt) in self.flix.links_out_of(src) {
                        self.stats.links_expanded += 1;
                        self.queue.push(Reverse((d + dls + 1, tgt)));
                    }
                }
            }
            Axis::Ancestors => {
                for (lt, dlt) in md.reaching_link_targets(local) {
                    let tgt = self.flix.global_of(meta, lt);
                    for &(_, src) in self.flix.links_into(tgt) {
                        self.stats.links_expanded += 1;
                        self.queue.push(Reverse((d + dlt + 1, src)));
                    }
                }
            }
        }
        self.entries[meta as usize].push(local);
        SearchStep::Progress
    }
}

/// A streamed result list, fed by a background evaluator thread.
///
/// This is the paper's §3.1 client decoupling: "a multithreaded
/// architecture where the client thread reads from a list in which FliX
/// inserts the results". Dropping the stream cancels the evaluation.
pub struct ResultStream {
    receiver: crossbeam::channel::Receiver<QueryResult>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ResultStream {
    /// Spawns a background evaluation of `start // target`.
    pub fn spawn(
        flix: std::sync::Arc<Flix>,
        start: NodeId,
        target: TagId,
        opts: QueryOptions,
    ) -> Self {
        // Bounded so a slow client applies backpressure to the evaluator
        // instead of buffering an arbitrarily large result list.
        let (tx, rx) = crossbeam::channel::bounded(1024);
        let handle = std::thread::spawn(move || {
            flix.for_each_descendant(start, target, &opts, |r| {
                if tx.send(r).is_err() {
                    ControlFlow::Break(()) // client hung up: cancel
                } else {
                    ControlFlow::Continue(())
                }
            });
        });
        Self {
            receiver: rx,
            handle: Some(handle),
        }
    }

    /// Non-blocking poll for the next result.
    pub fn try_next(&self) -> Option<QueryResult> {
        self.receiver.try_recv().ok()
    }
}

impl Iterator for ResultStream {
    type Item = QueryResult;

    fn next(&mut self) -> Option<QueryResult> {
        self.receiver.recv().ok()
    }
}

impl Drop for ResultStream {
    fn drop(&mut self) {
        // Disconnect first so the producer sees the hang-up, then join.
        let (tx, rx) = crossbeam::channel::bounded(0);
        drop(tx);
        self.receiver = rx;
        if let Some(h) = self.handle.take() {
            // flixcheck: allow(swallowed-result): a worker panic already surfaced as a disconnected channel; the join error adds nothing
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlixConfig, StrategyKind};
    use std::sync::Arc;
    use xmlgraph::{Collection, CollectionGraph, Document, LinkTarget};

    /// d0: a(0) -> b(1) -> c(2)   with 2 --link--> d1 root
    /// d1: a(3) -> b(4)           with 4 --link--> d2 root
    /// d2: b(5) -> a(6)
    fn chain3() -> Arc<CollectionGraph> {
        let mut c = Collection::new();
        let a = c.tags.intern("a");
        let b = c.tags.intern("b");
        let ct = c.tags.intern("c");

        let mut d0 = Document::new("d0.xml");
        let r = d0.add_element(a, None);
        let k = d0.add_element(b, Some(r));
        let l = d0.add_element(ct, Some(k));
        d0.add_link(
            l,
            LinkTarget {
                document: Some("d1.xml".into()),
                fragment: None,
            },
        );

        let mut d1 = Document::new("d1.xml");
        let r1 = d1.add_element(a, None);
        let k1 = d1.add_element(b, Some(r1));
        d1.add_link(
            k1,
            LinkTarget {
                document: Some("d2.xml".into()),
                fragment: None,
            },
        );

        let mut d2 = Document::new("d2.xml");
        let r2 = d2.add_element(b, None);
        d2.add_element(a, Some(r2));

        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        c.add_document(d2).unwrap();
        Arc::new(c.seal())
    }

    fn all_configs() -> Vec<FlixConfig> {
        vec![
            FlixConfig::Naive,
            FlixConfig::MaximalPpo,
            FlixConfig::UnconnectedHopi { partition_size: 4 },
            FlixConfig::Hybrid { partition_size: 4 },
            FlixConfig::Monolithic(StrategyKind::Hopi),
            FlixConfig::Monolithic(StrategyKind::Apex),
        ]
    }

    #[test]
    fn descendants_cross_documents_all_configs() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let mut res = flix.find_descendants(0, b, &QueryOptions::default());
            res.sort();
            let nodes: Vec<NodeId> = res.iter().map(|r| r.node).collect();
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 4, 5], "config {config}");
        }
    }

    #[test]
    fn distances_cross_link_hops() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        // Monolithic HOPI sees the raw union graph: link hop costs 1.
        let flix = Flix::build(cg.clone(), FlixConfig::Monolithic(StrategyKind::Hopi));
        let mut res = flix.find_descendants(0, b, &QueryOptions::default());
        res.sort_by_key(|r| r.node);
        assert_eq!(
            res[0],
            QueryResult {
                distance: 1,
                node: 1
            }
        );
        assert_eq!(
            res[1],
            QueryResult {
                distance: 4,
                node: 4
            }
        );
        assert_eq!(
            res[2],
            QueryResult {
                distance: 5,
                node: 5
            }
        );
        // FliX configurations report the same distances here: link hops
        // cost dist(e,l) + 1, matching the union-graph edge.
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let mut res2 = flix.find_descendants(0, b, &QueryOptions::default());
        res2.sort_by_key(|r| r.node);
        assert_eq!(res, res2);
    }

    #[test]
    fn include_start_toggles_self_match() {
        let cg = chain3();
        let a = cg.collection.tags.get("a").unwrap();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let without = flix.find_descendants(0, a, &QueryOptions::default());
        assert!(without.iter().all(|r| r.node != 0));
        let with = flix.find_descendants(
            0,
            a,
            &QueryOptions {
                include_start: true,
                ..QueryOptions::default()
            },
        );
        assert!(with.contains(&QueryResult {
            distance: 0,
            node: 0
        }));
    }

    #[test]
    fn top_k_and_threshold() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        assert_eq!(
            flix.find_descendants(0, b, &QueryOptions::top_k(2)).len(),
            2
        );
        let near = flix.find_descendants(0, b, &QueryOptions::within(4));
        let nodes: Vec<NodeId> = near.iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![1, 4], "node 5 is at distance 5");
    }

    #[test]
    fn connection_tests_all_configs() {
        let cg = chain3();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            assert_eq!(
                flix.connection_test(0, 6, &QueryOptions::default()),
                Some(6),
                "0 -> 6 via two links, config {config}"
            );
            assert_eq!(
                flix.connection_test(0, 0, &QueryOptions::default()),
                Some(0)
            );
            assert_eq!(
                flix.connection_test(6, 0, &QueryOptions::default()),
                None,
                "no backward path, config {config}"
            );
            assert_eq!(
                flix.connection_test(0, 6, &QueryOptions::within(3)),
                None,
                "threshold cuts off, config {config}"
            );
        }
    }

    #[test]
    fn ancestors_cross_documents() {
        let cg = chain3();
        let a = cg.collection.tags.get("a").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let res = flix.find_ancestors(5, a, &QueryOptions::default());
            let mut nodes: Vec<NodeId> = res.iter().map(|r| r.node).collect();
            nodes.sort_unstable();
            assert_eq!(nodes, vec![0, 3], "config {config}");
        }
    }

    #[test]
    fn type_query_spans_all_starts() {
        let cg = chain3();
        let a = cg.collection.tags.get("a").unwrap();
        let ct = cg.collection.tags.get("c").unwrap();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        // A//C: only d0's c element qualifies, reachable from a(0)
        let res = flix.find_descendants_of_type(a, ct, &QueryOptions::default());
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].node, 2);
    }

    #[test]
    fn no_duplicates_with_cyclic_links() {
        // d0 -> d1 -> d0 cycle of links
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        for i in 0..2 {
            let mut d = Document::new(format!("d{i}.xml"));
            let r = d.add_element(t, None);
            let k = d.add_element(t, Some(r));
            d.add_link(
                k,
                LinkTarget {
                    document: Some(format!("d{}.xml", 1 - i)),
                    fragment: None,
                },
            );
            c.add_document(d).unwrap();
        }
        let cg = Arc::new(c.seal());
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let res = flix.find_descendants(0, t, &QueryOptions::default());
            let mut nodes: Vec<NodeId> = res.iter().map(|r| r.node).collect();
            nodes.sort_unstable();
            let mut dedup = nodes.clone();
            dedup.dedup();
            assert_eq!(nodes, dedup, "duplicates under {config}");
            assert_eq!(nodes, vec![1, 2, 3], "coverage under {config}");
        }
    }

    #[test]
    fn streamed_results_arrive_and_cancel() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        let flix = Arc::new(Flix::build(cg, FlixConfig::Naive));
        let stream = ResultStream::spawn(flix.clone(), 0, b, QueryOptions::default());
        let collected: Vec<QueryResult> = stream.collect();
        assert_eq!(collected.len(), 3);
        // early cancel: take one result and drop the stream
        let mut stream = ResultStream::spawn(flix, 0, b, QueryOptions::default());
        let first = stream.next().unwrap();
        assert_eq!(first.node, 1);
        drop(stream); // must not hang
    }

    #[test]
    fn exact_order_mode_is_perfectly_sorted_with_exact_distances() {
        // a corpus with enough cross-links that approximate order differs
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        for i in 0..6u32 {
            let mut d = Document::new(format!("x{i}.xml"));
            let r = d.add_element(t, None);
            let k = d.add_element(t, Some(r));
            let k2 = d.add_element(t, Some(k));
            let _ = k2;
            for j in 0..6u32 {
                if j != i && (i + j) % 3 == 0 {
                    d.add_link(
                        k,
                        LinkTarget {
                            document: Some(format!("x{j}.xml")),
                            fragment: None,
                        },
                    );
                }
            }
            c.add_document(d).unwrap();
        }
        let cg = Arc::new(c.seal());
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let exact = flix.find_descendants(0, t, &QueryOptions::exact());
            assert!(
                exact.windows(2).all(|w| w[0].distance <= w[1].distance),
                "not sorted under {config}"
            );
            // distances are the true union-graph minima
            let bfs = graphcore::bfs_distances(&cg.graph, 0);
            for r in &exact {
                assert_eq!(r.distance, bfs[r.node as usize], "config {config}");
            }
            // same node set as the approximate mode
            let mut approx: Vec<NodeId> = flix
                .find_descendants(0, t, &QueryOptions::default())
                .iter()
                .map(|r| r.node)
                .collect();
            approx.sort_unstable();
            let mut exact_nodes: Vec<NodeId> = exact.iter().map(|r| r.node).collect();
            exact_nodes.sort_unstable();
            assert_eq!(approx, exact_nodes, "config {config}");
        }
    }

    #[test]
    fn exact_order_respects_top_k_and_threshold() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let opts = QueryOptions {
            exact_order: true,
            max_results: Some(2),
            ..QueryOptions::default()
        };
        let top2 = flix.find_descendants(0, b, &opts);
        assert_eq!(top2.len(), 2);
        assert_eq!(
            top2[0],
            QueryResult {
                distance: 1,
                node: 1
            }
        );
        let opts = QueryOptions {
            exact_order: true,
            max_distance: Some(4),
            ..QueryOptions::default()
        };
        let near = flix.find_descendants(0, b, &opts);
        assert!(near.iter().all(|r| r.distance <= 4));
        assert_eq!(near.len(), 2);
    }

    #[test]
    fn bidirectional_connection_matches_unidirectional() {
        let cg = chain3();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            for from in 0..7u32 {
                for to in 0..7u32 {
                    let uni = flix.connection_test(from, to, &QueryOptions::default());
                    let bi = flix.connection_test_bidirectional(from, to, &QueryOptions::default());
                    assert_eq!(uni.is_some(), bi.is_some(), "{from}->{to} under {config}");
                    if let (Some(a), Some(b)) = (uni, bi) {
                        // both are approximate; they must agree on the
                        // exact distance here because chain3 has unique
                        // paths
                        assert_eq!(a, b, "{from}->{to} under {config}");
                    }
                }
            }
        }
    }

    #[test]
    fn connection_tests_report_stats_to_the_load_monitor() {
        use crate::tuning::LoadMonitor;
        let cg = chain3();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            if flix.meta_count() == 1 {
                continue; // one meta document: nothing crosses links
            }
            let mut monitor = LoadMonitor::new();

            let (dist, stats) = flix.connection_test_traced(0, 6, &QueryOptions::default());
            assert_eq!(dist, Some(6), "config {config}");
            assert!(stats.entries_popped > 0, "config {config}: {stats:?}");
            assert!(stats.links_expanded > 0, "config {config}: {stats:?}");
            assert!(
                stats.block_results_scanned > 0,
                "config {config}: {stats:?}"
            );
            monitor.record(stats, usize::from(dist.is_some()));

            let (dist, stats) =
                flix.connection_test_bidirectional_traced(0, 6, &QueryOptions::default());
            assert_eq!(dist, Some(6), "config {config}");
            assert!(stats.entries_popped > 0, "config {config}: {stats:?}");
            assert!(stats.links_expanded > 0, "config {config}: {stats:?}");
            monitor.record(stats, usize::from(dist.is_some()));

            assert_eq!(monitor.queries(), 2);
            assert!(monitor.avg_lookups() > 0.0, "config {config}");
            assert!(monitor.avg_links() > 0.0, "config {config}");
        }
    }

    #[test]
    fn traced_connection_tests_agree_with_untraced() {
        let cg = chain3();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            for from in 0..7u32 {
                for to in 0..7u32 {
                    let plain = flix.connection_test(from, to, &QueryOptions::default());
                    let (traced, _) =
                        flix.connection_test_traced(from, to, &QueryOptions::default());
                    assert_eq!(plain, traced, "{from}->{to} under {config}");
                }
            }
        }
    }

    #[test]
    fn ancestor_blocks_charge_scanned_work() {
        let cg = chain3();
        let a = cg.collection.tags.get("a").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let mut stats = PeeStats::default();
            let mut out = Vec::new();
            flix.evaluate_axis_traced(
                &[(5, 0)],
                a,
                &QueryOptions::default(),
                Axis::Ancestors,
                &mut stats,
                None,
                |r, _| {
                    out.push(r);
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(out.len(), 2, "config {config}");
            // counted symmetry: the work charged covers at least the rows
            // returned, exactly like the descendants direction
            assert!(
                stats.block_results_scanned >= out.len(),
                "config {config}: scanned {} < returned {}",
                stats.block_results_scanned,
                out.len()
            );
        }
    }

    #[test]
    fn stats_reflect_work_done_when_emit_breaks_early() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            // Full evaluation, for reference.
            let mut full = PeeStats::default();
            flix.for_each_descendant_traced(0, b, &QueryOptions::default(), |r, s| {
                full = s;
                let _ = r;
                ControlFlow::Continue(())
            });
            // Break after the first result: counters must reflect the work
            // actually performed up to the break — at least one pop and the
            // rows of the first materialised block — but no more than the
            // full run, and critically *not* zero.
            let mut early = PeeStats::default();
            let mut seen = 0usize;
            flix.for_each_descendant_traced(0, b, &QueryOptions::default(), |_, s| {
                early = s;
                seen += 1;
                ControlFlow::Break(())
            });
            assert_eq!(seen, 1, "config {config}");
            assert!(early.entries_popped >= 1, "config {config}: {early:?}");
            assert!(
                early.block_results_scanned >= 1,
                "config {config}: {early:?}"
            );
            assert!(
                early.entries_popped <= full.entries_popped,
                "config {config}"
            );
            assert!(
                early.block_results_scanned <= full.block_results_scanned,
                "config {config}"
            );
        }
    }

    #[test]
    fn stats_under_exact_order_charge_work_not_results() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            // top-1 in exact mode: the evaluator must keep popping until
            // the queue bound proves the first result final, so the work
            // counters exceed what one returned result alone would charge.
            let opts = QueryOptions {
                exact_order: true,
                max_results: Some(1),
                ..QueryOptions::default()
            };
            let mut stats = PeeStats::default();
            let mut results = Vec::new();
            flix.for_each_descendant_traced(0, b, &opts, |r, s| {
                stats = s;
                results.push(r);
                ControlFlow::Continue(())
            });
            assert_eq!(results.len(), 1, "config {config}");
            assert!(stats.entries_popped >= 1, "config {config}: {stats:?}");
            assert!(
                stats.block_results_scanned >= results.len(),
                "config {config}: counters must cover the work done, got {stats:?}"
            );
        }
    }

    #[test]
    fn traced_evaluation_matches_untraced_and_records_spans() {
        use flixobs::{QueryTrace, SpanStage};
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let plain = flix.find_descendants(0, b, &QueryOptions::default());
            let mut trace = QueryTrace::new("0//b");
            let (traced, stats) =
                flix.find_descendants_with_trace(0, b, &QueryOptions::default(), &mut trace);
            assert_eq!(plain, traced, "config {config}");
            // Span counters reconcile exactly with the evaluator counters.
            let c = trace.counters();
            assert_eq!(c.entries_popped, stats.entries_popped as u64, "{config}");
            assert_eq!(
                c.rows_scanned, stats.block_results_scanned as u64,
                "{config}"
            );
            assert_eq!(c.links_expanded, stats.links_expanded as u64, "{config}");
            assert_eq!(
                trace.stage_totals(SpanStage::QueuePop).spans,
                (stats.entries_popped + stats.entries_subsumed) as u64,
                "one pop span per queue entry processed, config {config}"
            );
            assert_eq!(
                trace.stage_totals(SpanStage::BlockFetch).spans,
                stats.entries_popped as u64,
                "one fetch span per answered entry, config {config}"
            );
        }
    }

    #[test]
    fn zero_budget_deadline_times_out_with_empty_prefix() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        for config in all_configs() {
            let flix = Flix::build(cg.clone(), config);
            let opts = QueryOptions::default().with_deadline(Deadline::within_micros(0));
            let out = flix.find_descendants_outcome(0, b, &opts);
            assert!(out.timed_out, "config {config}");
            assert!(out.results.is_empty(), "config {config}");
            // exact mode must not release its unproven buffer either
            let opts = QueryOptions::exact().with_deadline(Deadline::within_micros(0));
            let out = flix.find_descendants_outcome(0, b, &opts);
            assert!(out.timed_out, "config {config}");
            assert!(out.results.is_empty(), "config {config}");
        }
    }

    #[test]
    fn generous_deadline_completes_with_full_answer() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let full = flix.find_descendants(0, b, &QueryOptions::default());
        let opts = QueryOptions::default().with_deadline(Deadline::within_micros(60_000_000));
        let out = flix.find_descendants_outcome(0, b, &opts);
        assert!(!out.timed_out);
        assert_eq!(out.results, full);
        assert!(out.stats.entries_popped > 0);

        let a = cg.collection.tags.get("a").unwrap();
        let anc = flix.find_ancestors(5, a, &QueryOptions::default());
        let out = flix.find_ancestors_outcome(5, a, &opts);
        assert!(!out.timed_out);
        assert_eq!(out.results, anc);
    }

    #[test]
    fn connection_tests_respect_deadlines() {
        let cg = chain3();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let expired = QueryOptions::default().with_deadline(Deadline::within_micros(0));
        // from == to answers before the evaluation loop even starts
        assert_eq!(flix.connection_test(0, 0, &expired), Some(0));
        // an expired budget yields no confirmed connection
        assert_eq!(flix.connection_test(0, 6, &expired), None);
        assert_eq!(flix.connection_test_bidirectional(0, 6, &expired), None);
        let generous = QueryOptions::default().with_deadline(Deadline::within_micros(60_000_000));
        assert_eq!(flix.connection_test(0, 6, &generous), Some(6));
        assert_eq!(flix.connection_test_bidirectional(0, 6, &generous), Some(6));
    }

    #[test]
    fn results_within_meta_block_are_distance_sorted() {
        let cg = chain3();
        let b = cg.collection.tags.get("b").unwrap();
        let flix = Flix::build(cg, FlixConfig::Monolithic(StrategyKind::Hopi));
        let res = flix.find_descendants(0, b, &QueryOptions::default());
        assert!(res.windows(2).all(|w| w[0].distance <= w[1].distance));
    }
}
