//! Disk-resident query execution — the paper's actual deployment.
//!
//! The prototype in the paper keeps every index in database tables and
//! loads what a query needs per lookup; §6's absolute numbers are
//! dominated by exactly that I/O. [`DiskFlix`] reproduces the deployment:
//! the manifest (node→meta maps and the runtime-link table — the
//! "catalogue") stays in memory, while meta-document indexes live in a
//! [`pagestore::BlobStore`] and are loaded on demand into a bounded LRU
//! index cache. Every entry pop that misses the cache pays real page reads
//! through the buffer pool, so the experiment harness can report true I/O
//! counts instead of a cost model.

use crate::framework::Flix;
use crate::meta::MetaDocument;
use crate::pee::{QueryOptions, QueryResult};
use graphcore::{Distance, NodeId};
use pagestore::BlobStore;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use xmlgraph::TagId;

#[derive(Serialize, Deserialize)]
struct DiskManifest {
    meta_count: usize,
    meta_of: Vec<u32>,
    local_of: Vec<u32>,
    meta_nodes_base: Vec<NodeId>, // unused placeholder for format evolution
    runtime_links: Vec<(NodeId, NodeId)>,
}

/// I/O-level counters of a [`DiskFlix`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskExecStats {
    /// Meta-document index loads served from the LRU cache.
    pub cache_hits: u64,
    /// Meta-document index loads that had to read the blob store.
    pub cache_misses: u64,
}

/// A query engine over indexes resident in a blob store.
pub struct DiskFlix {
    store: BlobStore,
    name: String,
    meta_of: Vec<u32>,
    local_of: Vec<u32>,
    runtime_links: Vec<(NodeId, NodeId)>,
    meta_count: usize,
    cache: Mutex<LruCache>,
    hits: flixobs::Counter,
    misses: flixobs::Counter,
}

struct LruCache {
    capacity: usize,
    map: HashMap<u32, (Arc<MetaDocument>, u64)>,
    tick: u64,
}

impl DiskFlix {
    /// Persists `flix` into `store` under `name` and opens a disk-resident
    /// engine over it with an index cache of `cache_capacity` meta
    /// documents.
    pub fn save_and_open(
        flix: &Flix,
        mut store: BlobStore,
        name: &str,
        cache_capacity: usize,
    ) -> Result<Self, String> {
        assert!(cache_capacity >= 1, "cache needs at least one slot");
        let n = flix.collection().node_count();
        let manifest = DiskManifest {
            meta_count: flix.meta_count(),
            meta_of: (0..n).map(|u| flix.meta_of(u as NodeId)).collect(),
            local_of: (0..n).map(|u| flix.local_of(u as NodeId)).collect(),
            meta_nodes_base: Vec::new(),
            runtime_links: flix.runtime_links().to_vec(),
        };
        let bytes = pagestore::to_bytes(&manifest).map_err(|e| e.to_string())?;
        store
            .put(&format!("{name}/disk-manifest"), &bytes)
            .map_err(|e| e.to_string())?;
        for mi in 0..flix.meta_count() as u32 {
            let bytes = pagestore::to_bytes(flix.meta(mi)).map_err(|e| e.to_string())?;
            store
                .put(&format!("{name}/meta-{mi}"), &bytes)
                .map_err(|e| e.to_string())?;
        }
        Self::open(store, name, cache_capacity)
    }

    /// Opens a previously saved disk-resident engine.
    pub fn open(store: BlobStore, name: &str, cache_capacity: usize) -> Result<Self, String> {
        let bytes = store
            .get(&format!("{name}/disk-manifest"))
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no disk framework named {name:?}"))?;
        let manifest: DiskManifest = pagestore::from_bytes(&bytes).map_err(|e| e.to_string())?;
        Ok(Self {
            store,
            name: name.to_string(),
            meta_of: manifest.meta_of,
            local_of: manifest.local_of,
            runtime_links: manifest.runtime_links,
            meta_count: manifest.meta_count,
            cache: Mutex::new(LruCache {
                capacity: cache_capacity,
                map: HashMap::new(),
                tick: 0,
            }),
            hits: flixobs::Counter::new(),
            misses: flixobs::Counter::new(),
        })
    }

    /// Loads (or fetches from cache) one meta document's index.
    ///
    /// # Errors
    /// If the blob is missing from the store or fails to decode — either
    /// means the persisted framework is corrupt.
    fn load_meta(&self, id: u32) -> Result<Arc<MetaDocument>, String> {
        {
            let mut cache = self.cache.lock();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some((md, stamp)) = cache.map.get_mut(&id) {
                *stamp = tick;
                self.hits.inc();
                return Ok(Arc::clone(md));
            }
        }
        self.misses.inc();
        let bytes = self
            .store
            .get(&format!("{}/meta-{id}", self.name))
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("meta document {id} missing from store"))?;
        let md: MetaDocument = pagestore::from_bytes(&bytes)
            .map_err(|e| format!("meta document {id} does not decode: {e}"))?;
        let md = Arc::new(md);
        let mut cache = self.cache.lock();
        if cache.map.len() >= cache.capacity {
            if let Some(victim) = cache
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k)
            {
                cache.map.remove(&victim);
            }
        }
        let tick = cache.tick;
        cache.map.insert(id, (Arc::clone(&md), tick));
        Ok(md)
    }

    fn links_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.runtime_links.partition_point(|&(s, _)| s < u);
        let end = self.runtime_links.partition_point(|&(s, _)| s <= u);
        &self.runtime_links[start..end]
    }

    /// Number of meta documents.
    pub fn meta_count(&self) -> usize {
        self.meta_count
    }

    /// Cache counters.
    pub fn stats(&self) -> DiskExecStats {
        DiskExecStats {
            cache_hits: self.hits.get(),
            cache_misses: self.misses.get(),
        }
    }

    /// `a//B` over disk-resident indexes: the Fig. 4 loop with each entry
    /// pop loading its meta document through the cache.
    ///
    /// # Errors
    /// If a meta-document blob is missing or corrupt.
    ///
    /// # Panics
    /// If `opts.exact_order` is set: the disk engine implements only the
    /// approximate (block-streamed) ordering. Use the in-memory engine for
    /// exactly sorted results rather than silently degrading.
    pub fn find_descendants(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Result<Vec<QueryResult>, String> {
        assert!(
            !opts.exact_order,
            "DiskFlix implements approximate ordering only; use Flix for exact_order"
        );
        let mut out = Vec::new();
        let mut queue: BinaryHeap<Reverse<(Distance, NodeId, bool)>> = BinaryHeap::new();
        let mut entries: Vec<Vec<u32>> = vec![Vec::new(); self.meta_count];
        queue.push(Reverse((0, start, true)));
        while let Some(Reverse((d, e, is_seed))) = queue.pop() {
            if opts.max_distance.is_some_and(|m| d > m) {
                break;
            }
            let meta = self.meta_of[e as usize];
            let local = self.local_of[e as usize];
            let md = self.load_meta(meta)?;
            if entries[meta as usize]
                .iter()
                .any(|&p| md.index.is_reachable(p, local))
            {
                continue;
            }
            let include_self = if is_seed { opts.include_start } else { true };
            for (r, dr) in md.index.descendants_by_label(local, target, include_self) {
                let seen = entries[meta as usize]
                    .iter()
                    .any(|&p| md.index.is_reachable(p, r));
                if seen {
                    continue;
                }
                let total = d + dr;
                if opts.max_distance.is_some_and(|m| total > m) {
                    continue;
                }
                out.push(QueryResult {
                    distance: total,
                    node: md.nodes[r as usize],
                });
                if opts.max_results.is_some_and(|k| out.len() >= k) {
                    return Ok(out);
                }
            }
            for (ls, dls) in md.reachable_link_sources(local) {
                let src = md.nodes[ls as usize];
                for &(_, tgt) in self.links_out_of(src) {
                    queue.push(Reverse((d + dls + 1, tgt, false)));
                }
            }
            entries[meta as usize].push(local);
        }
        Ok(out)
    }

    /// Connection test over disk-resident indexes.
    ///
    /// # Errors
    /// If a meta-document blob is missing or corrupt.
    pub fn connection_test(
        &self,
        from: NodeId,
        to: NodeId,
        opts: &QueryOptions,
    ) -> Result<Option<Distance>, String> {
        if from == to {
            return Ok(Some(0));
        }
        let to_meta = self.meta_of[to as usize];
        let to_local = self.local_of[to as usize];
        let mut best: Option<Distance> = None;
        let mut queue: BinaryHeap<Reverse<(Distance, NodeId)>> = BinaryHeap::new();
        let mut entries: Vec<Vec<u32>> = vec![Vec::new(); self.meta_count];
        queue.push(Reverse((0, from)));
        while let Some(Reverse((d, e))) = queue.pop() {
            if best.is_some_and(|b| d >= b) {
                break;
            }
            if opts.max_distance.is_some_and(|m| d > m) {
                break;
            }
            let meta = self.meta_of[e as usize];
            let local = self.local_of[e as usize];
            let md = self.load_meta(meta)?;
            if entries[meta as usize]
                .iter()
                .any(|&p| md.index.is_reachable(p, local))
            {
                continue;
            }
            if meta == to_meta {
                if let Some(dd) = md.index.distance(local, to_local) {
                    let cand = d + dd;
                    if best.map_or(true, |b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            for (ls, dls) in md.reachable_link_sources(local) {
                let src = md.nodes[ls as usize];
                for &(_, tgt) in self.links_out_of(src) {
                    queue.push(Reverse((d + dls + 1, tgt)));
                }
            }
            entries[meta as usize].push(local);
        }
        Ok(best.filter(|&b| opts.max_distance.map_or(true, |m| b <= m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlixConfig;
    use pagestore::{BufferPool, DiskManager, MemDisk};
    use workloads::{descendant_queries, generate_dblp, DblpConfig};

    fn setup(cache: usize) -> (Arc<xmlgraph::CollectionGraph>, Flix, DiskFlix, Arc<MemDisk>) {
        let cg = Arc::new(generate_dblp(&DblpConfig::tiny(33)).seal());
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let disk = Arc::new(MemDisk::new());
        // a deliberately tiny pool so blob reloads must touch the disk
        let pool = Arc::new(BufferPool::new(disk.clone(), 4));
        let store = BlobStore::new(pool);
        let dflix = DiskFlix::save_and_open(&flix, store, "fw", cache).unwrap();
        (cg, flix, dflix, disk)
    }

    #[test]
    fn disk_answers_match_in_memory() {
        let (cg, flix, dflix, _) = setup(16);
        for q in descendant_queries(&cg, 8, 44) {
            let mem = flix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
            let dsk = dflix
                .find_descendants(q.start, q.target_tag, &QueryOptions::default())
                .unwrap();
            assert_eq!(mem, dsk);
        }
    }

    #[test]
    fn connection_tests_match() {
        let (cg, flix, dflix, _) = setup(16);
        for p in workloads::connection_pairs(&cg, 12, 9) {
            assert_eq!(
                flix.connection_test(p.from, p.to, &QueryOptions::default()),
                dflix
                    .connection_test(p.from, p.to, &QueryOptions::default())
                    .unwrap()
            );
        }
    }

    #[test]
    fn small_cache_causes_reloads() {
        let (cg, _, dflix, disk) = setup(2);
        let before = disk.stats().reads;
        for q in descendant_queries(&cg, 6, 45) {
            let _ = dflix.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        }
        let st = dflix.stats();
        assert!(st.cache_misses > 0, "tiny cache must miss");
        assert!(
            disk.stats().reads > before,
            "misses must hit the disk through the pool"
        );
        // a larger cache over the same workload misses less
        let (cg2, _, dflix2, _) = setup(64);
        for q in descendant_queries(&cg2, 6, 45) {
            let _ = dflix2.find_descendants(q.start, q.target_tag, &QueryOptions::default());
        }
        let st2 = dflix2.stats();
        assert!(st2.cache_misses <= st.cache_misses);
    }

    #[test]
    fn open_missing_name_errors() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 8));
        let store = BlobStore::new(pool);
        assert!(DiskFlix::open(store, "nope", 4).is_err());
    }
}
