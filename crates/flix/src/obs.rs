//! Query-path observability glue (§7's "statistics on the query load").
//!
//! [`QueryPathMetrics`] bundles the metric handles one observed workload
//! needs — a latency histogram, per-stage time counters, and the evaluator
//! counters — together with a [`SlowQueryLog`] that retains the worst
//! traces. All handles come from a shared [`MetricsRegistry`], labelled by
//! the caller (typically `config` and `workload`), so one registry
//! snapshot compares every backend strategy side by side.
//!
//! Observation never perturbs evaluation: the observed entry points run
//! the same evaluator code path with a write-only trace attached, and a
//! test in `tests/observability.rs` proves the result stream is identical
//! with and without it.

use crate::framework::Flix;
use crate::pee::{PeeStats, QueryOptions, QueryResult};
use flixobs::{
    Counter, Histogram, MetricsRegistry, QueryTrace, SlowQuery, SlowQueryLog, SpanStage, Stopwatch,
};
use graphcore::{Distance, NodeId};
use xmlgraph::TagId;

/// Default number of worst traces the slow-query log retains.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 8;

/// Metric handles plus the slow-query log for one observed query path.
pub struct QueryPathMetrics {
    latency: Histogram,
    stage_micros: [(SpanStage, Counter); 3],
    queries: Counter,
    results: Counter,
    entries_popped: Counter,
    entries_subsumed: Counter,
    rows_scanned: Counter,
    links_expanded: Counter,
    slow_log: SlowQueryLog,
}

impl QueryPathMetrics {
    /// Registers the query-path metrics under `labels` in `registry` and
    /// attaches a slow-query log of [`DEFAULT_SLOW_LOG_CAPACITY`].
    pub fn register(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> Self {
        Self::register_with_slow_capacity(registry, labels, DEFAULT_SLOW_LOG_CAPACITY)
    }

    /// [`Self::register`] with an explicit slow-query log capacity.
    pub fn register_with_slow_capacity(
        registry: &MetricsRegistry,
        labels: &[(&str, &str)],
        slow_capacity: usize,
    ) -> Self {
        let stage_counter = |stage: SpanStage| {
            let mut stage_labels: Vec<(&str, &str)> = labels.to_vec();
            stage_labels.push(("stage", stage.name()));
            (
                stage,
                registry.counter_with("flix_query_stage_micros_total", &stage_labels),
            )
        };
        Self {
            latency: registry.histogram_with("flix_query_latency_micros", labels),
            stage_micros: [
                stage_counter(SpanStage::QueuePop),
                stage_counter(SpanStage::BlockFetch),
                stage_counter(SpanStage::LinkExpand),
            ],
            queries: registry.counter_with("flix_queries_total", labels),
            results: registry.counter_with("flix_results_total", labels),
            entries_popped: registry.counter_with("flix_entries_popped_total", labels),
            entries_subsumed: registry.counter_with("flix_entries_subsumed_total", labels),
            rows_scanned: registry.counter_with("flix_rows_scanned_total", labels),
            links_expanded: registry.counter_with("flix_links_expanded_total", labels),
            slow_log: SlowQueryLog::new(slow_capacity),
        }
    }

    /// `a//B` with full observation: evaluates with a trace attached,
    /// records latency and per-stage times, accumulates the evaluator
    /// counters, and offers the trace to the slow-query log.
    pub fn find_descendants(
        &self,
        flix: &Flix,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        label: &str,
    ) -> (Vec<QueryResult>, PeeStats) {
        let mut trace = QueryTrace::new(label);
        let (results, stats) = flix.find_descendants_with_trace(start, target, opts, &mut trace);
        for (stage, counter) in &self.stage_micros {
            counter.add(trace.stage_totals(*stage).micros);
        }
        self.record(trace.total_micros(), &stats, results.len());
        self.slow_log.offer(trace);
        (results, stats)
    }

    /// Observed connection test `a//b`: latency and counters are recorded;
    /// no spans exist on this path, so only a latency-bearing trace is
    /// offered to the slow-query log.
    pub fn connection_test(
        &self,
        flix: &Flix,
        from: NodeId,
        to: NodeId,
        opts: &QueryOptions,
        label: &str,
    ) -> (Option<Distance>, PeeStats) {
        let sw = Stopwatch::start();
        let (dist, stats) = flix.connection_test_traced(from, to, opts);
        let mut trace = QueryTrace::new(label);
        trace.finish(sw.elapsed_micros());
        self.record(trace.total_micros(), &stats, usize::from(dist.is_some()));
        self.slow_log.offer(trace);
        (dist, stats)
    }

    /// Records one finished query into the aggregate metrics (used by the
    /// observed entry points above; callable directly for custom paths).
    pub fn record(&self, latency_micros: u64, stats: &PeeStats, results: usize) {
        self.latency.record(latency_micros);
        self.queries.inc();
        self.results.add(results as u64);
        self.entries_popped.add(stats.entries_popped as u64);
        self.entries_subsumed.add(stats.entries_subsumed as u64);
        self.rows_scanned.add(stats.block_results_scanned as u64);
        self.links_expanded.add(stats.links_expanded as u64);
    }

    /// The latency histogram handle (for percentile reporting).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Queries recorded so far.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// The worst retained traces, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.worst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlixConfig;
    use std::sync::Arc;
    use xmlgraph::{Collection, Document, LinkTarget};

    fn tiny() -> (Arc<Flix>, TagId) {
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        let mut d0 = Document::new("a.xml");
        let r = d0.add_element(t, None);
        let k = d0.add_element(t, Some(r));
        d0.add_link(
            k,
            LinkTarget {
                document: Some("b.xml".into()),
                fragment: None,
            },
        );
        let mut d1 = Document::new("b.xml");
        d1.add_element(t, None);
        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        let cg = Arc::new(c.seal());
        let tag = cg.collection.tags.get("t").unwrap();
        (Arc::new(Flix::build(cg, FlixConfig::Naive)), tag)
    }

    #[test]
    fn observed_queries_feed_registry_and_slow_log() {
        let (flix, t) = tiny();
        let registry = MetricsRegistry::new();
        let obs = QueryPathMetrics::register(&registry, &[("config", "naive")]);
        let (results, stats) = obs.find_descendants(&flix, 0, t, &QueryOptions::default(), "0//t");
        assert_eq!(
            results,
            flix.find_descendants(0, t, &QueryOptions::default())
        );
        assert!(stats.entries_popped > 0);
        assert_eq!(obs.queries(), 1);
        assert_eq!(obs.latency().count(), 1);
        let snap = registry.snapshot();
        let text = snap.to_prometheus();
        assert!(
            text.contains("flix_queries_total{config=\"naive\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("flix_query_latency_micros_count{config=\"naive\"} 1"),
            "{text}"
        );
        let slow = obs.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace.label, "0//t");
        assert!(
            slow[0].trace.stage_totals(SpanStage::QueuePop).spans > 0,
            "trace carries evaluator spans"
        );
    }

    #[test]
    fn observed_connection_test_matches_plain() {
        let (flix, _) = tiny();
        let registry = MetricsRegistry::new();
        let obs = QueryPathMetrics::register(&registry, &[]);
        let (dist, _) = obs.connection_test(&flix, 0, 2, &QueryOptions::default(), "0->2");
        assert_eq!(dist, flix.connection_test(0, 2, &QueryOptions::default()));
        assert_eq!(obs.queries(), 1);
        assert_eq!(registry.counter("flix_results_total").get(), 1);
    }
}
