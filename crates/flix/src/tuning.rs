//! Self-tuning (paper §7): watch the query load and recognise when the
//! meta-document choice has gone stale.
//!
//! "If it turns out in the query evaluation engine that most queries have
//! to follow many links, then the choice of meta documents is no longer
//! optimal for the current query load. In this case, the build phase
//! should start again, taking statistics on the query load into account."
//!
//! [`LoadMonitor`] accumulates [`PeeStats`] per query; [`LoadMonitor::
//! recommend`] turns the aggregate into a rebuild recommendation: many
//! entry pops per query mean results are scattered over meta documents
//! (make them bigger), while single-pop queries over an oversized
//! monolithic index suggest partitioning would shed index size for free.

use crate::config::{FlixConfig, StrategyKind};
use crate::pee::PeeStats;
use crate::report::BuildReport;
use flixobs::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Aggregated query-load statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LoadMonitor {
    queries: u64,
    entries_popped: u64,
    entries_subsumed: u64,
    block_results_scanned: u64,
    links_expanded: u64,
    results: u64,
}

/// The monitor's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recommendation {
    /// The configuration still fits the load.
    Keep,
    /// Rebuild with the suggested configuration.
    Rebuild {
        /// Suggested replacement configuration.
        suggestion: FlixConfig,
        /// Human-readable justification.
        reason: String,
    },
}

impl LoadMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluated query.
    pub fn record(&mut self, stats: PeeStats, results: usize) {
        self.queries += 1;
        self.entries_popped += stats.entries_popped as u64;
        self.entries_subsumed += stats.entries_subsumed as u64;
        self.block_results_scanned += stats.block_results_scanned as u64;
        self.links_expanded += stats.links_expanded as u64;
        self.results += results as u64;
    }

    /// Number of queries observed.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The load observed since `baseline` was captured: every counter is
    /// the saturating difference between `self` and `baseline`. This is how
    /// a long-running server windows its monitor without resetting it —
    /// snapshot once, keep serving, and ask `current.since(&snapshot)` for
    /// the traffic that arrived in between. Saturation (rather than
    /// wrap-around) means a stale baseline from before a monitor swap
    /// degrades to "no load observed" instead of garbage averages.
    pub fn since(&self, baseline: &LoadMonitor) -> LoadMonitor {
        LoadMonitor {
            queries: self.queries.saturating_sub(baseline.queries),
            entries_popped: self.entries_popped.saturating_sub(baseline.entries_popped),
            entries_subsumed: self
                .entries_subsumed
                .saturating_sub(baseline.entries_subsumed),
            block_results_scanned: self
                .block_results_scanned
                .saturating_sub(baseline.block_results_scanned),
            links_expanded: self.links_expanded.saturating_sub(baseline.links_expanded),
            results: self.results.saturating_sub(baseline.results),
        }
    }

    /// Mean meta-document lookups per query.
    pub fn avg_lookups(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.entries_popped + self.entries_subsumed) as f64 / self.queries as f64
        }
    }

    /// Mean runtime links chased per query.
    pub fn avg_links(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.links_expanded as f64 / self.queries as f64
        }
    }

    /// Mean index rows scanned per query (row fetches in the paper's
    /// database-backed deployment).
    pub fn avg_rows_scanned(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.block_results_scanned as f64 / self.queries as f64
        }
    }

    /// Index rows scanned per returned result — the selectivity of the
    /// current meta-document layout. This is the load monitor's proxy for
    /// the paper's DB round-trip cost: a high ratio means each lookup
    /// fetches many rows that never become answers. Result-less loads are
    /// normalised per query instead, so wasted scans still register.
    pub fn rows_per_result(&self) -> f64 {
        if self.results > 0 {
            self.block_results_scanned as f64 / self.results as f64
        } else {
            self.avg_rows_scanned()
        }
    }

    /// Publishes the monitor's aggregates as `flix_load_*` gauges, so a
    /// metrics snapshot carries the same signals [`Self::recommend`] acts
    /// on.
    pub fn publish(&self, registry: &MetricsRegistry) {
        registry.gauge("flix_load_queries").set(self.queries as f64);
        registry
            .gauge("flix_load_avg_lookups")
            .set(self.avg_lookups());
        registry.gauge("flix_load_avg_links").set(self.avg_links());
        registry
            .gauge("flix_load_avg_rows_scanned")
            .set(self.avg_rows_scanned());
        registry
            .gauge("flix_load_rows_per_result")
            .set(self.rows_per_result());
    }

    /// Verdict for the current configuration.
    ///
    /// `min_queries` guards against deciding on too small a sample.
    pub fn recommend(&self, current: FlixConfig, min_queries: u64) -> Recommendation {
        if self.queries < min_queries {
            return Recommendation::Keep;
        }
        let lookups = self.avg_lookups();
        // Most queries follow many links: meta documents are too small for
        // this load (§7's trigger condition).
        if lookups > 8.0 {
            let suggestion = grown(current);
            if suggestion == current {
                return Recommendation::Keep;
            }
            return Recommendation::Rebuild {
                suggestion,
                reason: format!(
                    "queries average {lookups:.1} meta-document lookups; larger meta documents \
                     would answer them in fewer hops"
                ),
            };
        }
        // Each returned result costs many fetched index rows: the layout's
        // selectivity is poor — the DB-round-trip cost the paper's
        // deployment pays per row fetch. APEX's structural summary scans
        // candidate elements, so swap it for HOPI's two-hop labels first;
        // otherwise larger meta documents amortise the scans.
        let rows = self.rows_per_result();
        if rows > 32.0 {
            let suggestion = match current {
                FlixConfig::Monolithic(StrategyKind::Apex) => {
                    FlixConfig::Monolithic(StrategyKind::Hopi)
                }
                other => grown(other),
            };
            if suggestion != current {
                return Recommendation::Rebuild {
                    suggestion,
                    reason: format!(
                        "queries scan {rows:.1} index rows per returned result; a more \
                         selective index layout would cut the row-fetch cost"
                    ),
                };
            }
        }
        // Queries stay within one meta document but the index is the
        // all-in-one HOPI: partitioning sheds label size with no query-time
        // penalty for this load.
        if lookups <= 1.5 && current == FlixConfig::Monolithic(StrategyKind::Hopi) {
            return Recommendation::Rebuild {
                suggestion: FlixConfig::UnconnectedHopi {
                    partition_size: 20_000,
                },
                reason: format!(
                    "queries average {lookups:.1} lookups; a partitioned index would answer \
                     the same load with a fraction of the label storage"
                ),
            };
        }
        Recommendation::Keep
    }

    /// [`Self::recommend`], with the rebuild justification grounded in what
    /// the last build actually cost: a rebuild recommendation cites the
    /// measured build time, the meta-document count, and the costliest
    /// single meta document from `report`, so the operator can weigh the
    /// query-time win against the rebuild price.
    pub fn recommend_with_report(
        &self,
        current: FlixConfig,
        min_queries: u64,
        report: &BuildReport,
    ) -> Recommendation {
        match self.recommend(current, min_queries) {
            Recommendation::Keep => Recommendation::Keep,
            Recommendation::Rebuild { suggestion, reason } => {
                let mut reason = format!(
                    "{reason}; last build took {:.1} ms over {} meta documents",
                    report.total_micros as f64 / 1_000.0,
                    report.per_meta.len(),
                );
                if let Some((mi, costliest)) = report.costliest_meta() {
                    reason.push_str(&format!(
                        " (costliest: meta {mi}, {} over {} elements in {:.1} ms)",
                        costliest.strategy,
                        costliest.nodes,
                        costliest.build_micros as f64 / 1_000.0,
                    ));
                }
                Recommendation::Rebuild { suggestion, reason }
            }
        }
    }
}

/// A [`LoadMonitor`] that server workers can feed concurrently: each
/// counter is an atomic cell, so recording a query is a handful of relaxed
/// adds with no `&mut` access or lock. [`SharedLoadMonitor::snapshot`]
/// materialises a plain [`LoadMonitor`] for `recommend`/`publish`.
#[derive(Debug, Default)]
pub struct SharedLoadMonitor {
    queries: flixobs::Counter,
    entries_popped: flixobs::Counter,
    entries_subsumed: flixobs::Counter,
    block_results_scanned: flixobs::Counter,
    links_expanded: flixobs::Counter,
    results: flixobs::Counter,
}

impl SharedLoadMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluated query; callable from any thread.
    pub fn record(&self, stats: PeeStats, results: usize) {
        self.queries.inc();
        self.entries_popped.add(stats.entries_popped as u64);
        self.entries_subsumed.add(stats.entries_subsumed as u64);
        self.block_results_scanned
            .add(stats.block_results_scanned as u64);
        self.links_expanded.add(stats.links_expanded as u64);
        self.results.add(results as u64);
    }

    /// A point-in-time [`LoadMonitor`] over everything recorded so far.
    pub fn snapshot(&self) -> LoadMonitor {
        LoadMonitor {
            queries: self.queries.get(),
            entries_popped: self.entries_popped.get(),
            entries_subsumed: self.entries_subsumed.get(),
            block_results_scanned: self.block_results_scanned.get(),
            links_expanded: self.links_expanded.get(),
            results: self.results.get(),
        }
    }
}

/// The "make meta documents bigger" ladder shared by the rebuild triggers.
fn grown(current: FlixConfig) -> FlixConfig {
    match current {
        FlixConfig::Naive => FlixConfig::MaximalPpo,
        FlixConfig::MaximalPpo => FlixConfig::UnconnectedHopi {
            partition_size: 5_000,
        },
        FlixConfig::UnconnectedHopi { partition_size } => FlixConfig::UnconnectedHopi {
            partition_size: partition_size.saturating_mul(4),
        },
        FlixConfig::Hybrid { partition_size } => FlixConfig::Hybrid {
            partition_size: partition_size.saturating_mul(4),
        },
        FlixConfig::Monolithic(k) => FlixConfig::Monolithic(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(popped: usize, links: usize) -> PeeStats {
        PeeStats {
            entries_popped: popped,
            entries_subsumed: 0,
            block_results_scanned: 0,
            links_expanded: links,
        }
    }

    fn stats_rows(popped: usize, rows: usize) -> PeeStats {
        PeeStats {
            entries_popped: popped,
            entries_subsumed: 0,
            block_results_scanned: rows,
            links_expanded: 0,
        }
    }

    #[test]
    fn too_few_queries_keep() {
        let mut m = LoadMonitor::new();
        m.record(stats(100, 300), 5);
        assert_eq!(m.recommend(FlixConfig::Naive, 10), Recommendation::Keep);
    }

    #[test]
    fn link_heavy_load_triggers_rebuild_chain() {
        let mut m = LoadMonitor::new();
        for _ in 0..20 {
            m.record(stats(40, 120), 10);
        }
        match m.recommend(FlixConfig::Naive, 10) {
            Recommendation::Rebuild { suggestion, .. } => {
                assert_eq!(suggestion, FlixConfig::MaximalPpo)
            }
            r => panic!("expected rebuild, got {r:?}"),
        }
        match m.recommend(
            FlixConfig::UnconnectedHopi {
                partition_size: 5_000,
            },
            10,
        ) {
            Recommendation::Rebuild { suggestion, .. } => assert_eq!(
                suggestion,
                FlixConfig::UnconnectedHopi {
                    partition_size: 20_000
                }
            ),
            r => panic!("expected rebuild, got {r:?}"),
        }
    }

    #[test]
    fn local_load_keeps_partitioned_config() {
        let mut m = LoadMonitor::new();
        for _ in 0..20 {
            m.record(stats(1, 0), 10);
        }
        assert_eq!(
            m.recommend(
                FlixConfig::UnconnectedHopi {
                    partition_size: 5_000
                },
                10
            ),
            Recommendation::Keep
        );
    }

    #[test]
    fn local_load_shrinks_monolithic_hopi() {
        let mut m = LoadMonitor::new();
        for _ in 0..20 {
            m.record(stats(1, 0), 10);
        }
        match m.recommend(FlixConfig::Monolithic(StrategyKind::Hopi), 10) {
            Recommendation::Rebuild { suggestion, .. } => assert_eq!(
                suggestion,
                FlixConfig::UnconnectedHopi {
                    partition_size: 20_000
                }
            ),
            r => panic!("expected rebuild, got {r:?}"),
        }
    }

    #[test]
    fn report_grounds_rebuild_reason_in_measured_costs() {
        use crate::report::MetaBuildReport;
        let mut m = LoadMonitor::new();
        for _ in 0..20 {
            m.record(stats(40, 120), 10);
        }
        let mut report = BuildReport::empty(FlixConfig::Naive);
        report.total_micros = 12_500;
        report.per_meta = vec![
            MetaBuildReport {
                strategy: StrategyKind::Ppo,
                nodes: 10,
                edges: 9,
                build_micros: 2_000,
                index_bytes: 80,
                dropped_links: 0,
                stages: None,
            },
            MetaBuildReport {
                strategy: StrategyKind::Hopi,
                nodes: 400,
                edges: 900,
                build_micros: 9_000,
                index_bytes: 4_000,
                dropped_links: 3,
                stages: None,
            },
        ];
        match m.recommend_with_report(FlixConfig::Naive, 10, &report) {
            Recommendation::Rebuild { suggestion, reason } => {
                assert_eq!(suggestion, FlixConfig::MaximalPpo);
                assert!(reason.contains("12.5 ms"), "{reason}");
                assert!(reason.contains("2 meta documents"), "{reason}");
                assert!(
                    reason.contains("meta 1, HOPI over 400 elements"),
                    "{reason}"
                );
            }
            r => panic!("expected rebuild, got {r:?}"),
        }
        // Keep verdicts pass through untouched.
        let quiet = LoadMonitor::new();
        assert_eq!(
            quiet.recommend_with_report(FlixConfig::Naive, 10, &report),
            Recommendation::Keep
        );
    }

    #[test]
    fn averages() {
        let mut m = LoadMonitor::new();
        m.record(stats(4, 6), 2);
        m.record(stats(2, 0), 1);
        assert_eq!(m.queries(), 2);
        assert!((m.avg_lookups() - 3.0).abs() < 1e-9);
        assert!((m.avg_links() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rows_scanned_are_accumulated_not_dropped() {
        let mut m = LoadMonitor::new();
        m.record(stats_rows(1, 100), 2);
        m.record(stats_rows(1, 50), 1);
        assert!((m.avg_rows_scanned() - 75.0).abs() < 1e-9);
        assert!((m.rows_per_result() - 50.0).abs() < 1e-9);
        // Result-less load: normalise per query, so waste still shows.
        let mut empty = LoadMonitor::new();
        empty.record(stats_rows(1, 40), 0);
        assert!((empty.rows_per_result() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn poor_selectivity_triggers_rebuild() {
        let mut m = LoadMonitor::new();
        for _ in 0..20 {
            // 1 lookup per query (below the link trigger), but 100 rows
            // fetched per returned result.
            m.record(stats_rows(1, 200), 2);
        }
        match m.recommend(FlixConfig::Naive, 10) {
            Recommendation::Rebuild { suggestion, reason } => {
                assert_eq!(suggestion, FlixConfig::MaximalPpo);
                assert!(reason.contains("rows per returned result"), "{reason}");
            }
            r => panic!("expected rebuild, got {r:?}"),
        }
        // APEX's element scans are the canonical cause: suggest HOPI.
        match m.recommend(FlixConfig::Monolithic(StrategyKind::Apex), 10) {
            Recommendation::Rebuild { suggestion, .. } => {
                assert_eq!(suggestion, FlixConfig::Monolithic(StrategyKind::Hopi));
            }
            r => panic!("expected rebuild, got {r:?}"),
        }
        // Monolithic HOPI has nowhere to grow on this trigger; the
        // single-lookup load falls through to the §7 shrink advice instead.
        match m.recommend(FlixConfig::Monolithic(StrategyKind::Hopi), 10) {
            Recommendation::Rebuild { suggestion, .. } => assert_eq!(
                suggestion,
                FlixConfig::UnconnectedHopi {
                    partition_size: 20_000
                }
            ),
            r => panic!("expected shrink rebuild, got {r:?}"),
        }
    }

    #[test]
    fn good_selectivity_keeps() {
        let mut m = LoadMonitor::new();
        for _ in 0..20 {
            m.record(stats_rows(2, 10), 8);
        }
        assert_eq!(m.recommend(FlixConfig::Naive, 10), Recommendation::Keep);
    }

    #[test]
    fn shared_monitor_matches_sequential_recording() {
        let shared = std::sync::Arc::new(SharedLoadMonitor::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        shared.record(stats_rows(2, 10), 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = shared.snapshot();
        let mut sequential = LoadMonitor::new();
        for _ in 0..200 {
            sequential.record(stats_rows(2, 10), 3);
        }
        assert_eq!(snap.queries(), sequential.queries());
        assert_eq!(snap.avg_lookups(), sequential.avg_lookups());
        assert_eq!(snap.avg_rows_scanned(), sequential.avg_rows_scanned());
        assert_eq!(snap.rows_per_result(), sequential.rows_per_result());
    }

    #[test]
    fn publish_exports_load_gauges() {
        let mut m = LoadMonitor::new();
        m.record(stats_rows(4, 80), 2);
        let registry = MetricsRegistry::new();
        m.publish(&registry);
        assert_eq!(registry.gauge("flix_load_queries").get(), 1.0);
        assert_eq!(registry.gauge("flix_load_avg_lookups").get(), 4.0);
        assert_eq!(registry.gauge("flix_load_avg_rows_scanned").get(), 80.0);
        assert_eq!(registry.gauge("flix_load_rows_per_result").get(), 40.0);
    }
}
