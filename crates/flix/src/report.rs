//! Build observability: what the build phase did, per meta document and in
//! aggregate.
//!
//! [`BuildReport`] is produced by every [`crate::framework::Flix`] build. It
//! records the strategy chosen for each meta document, its size, its index
//! build cost and footprint, plus stage timings and the parallelism the
//! scoped worker pool achieved. The bench harness renders it as the human
//! build table and as `BENCH_build.json`; the §7 self-tuning loop uses it to
//! justify rebuild recommendations with real per-meta costs.

use crate::config::{FlixConfig, StrategyKind};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Build record for one meta document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaBuildReport {
    /// Strategy the meta document was indexed with.
    pub strategy: StrategyKind,
    /// Elements in the meta document's subgraph.
    pub nodes: usize,
    /// Edges of the meta document's subgraph.
    pub edges: usize,
    /// Wall-clock build time of this meta document's index, in microseconds
    /// (an integer so reports serialize deterministically).
    pub build_micros: u64,
    /// Estimated index footprint in bytes.
    pub index_bytes: usize,
    /// Runtime links this meta document contributed (PPO-removed edges).
    pub dropped_links: usize,
    /// Per-stage breakdown of the staged HOPI cover pipeline (rank /
    /// merge / cover timings, partition and border counts). `None` for
    /// PPO- and APEX-backed meta documents.
    pub stages: Option<hopi::StageReport>,
}

impl MetaBuildReport {
    /// The build time as a [`Duration`].
    pub fn build_time(&self) -> Duration {
        Duration::from_micros(self.build_micros)
    }
}

/// Aggregate report of one framework build: stage timings, parallelism, and
/// the per-meta-document breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildReport {
    /// The configuration that was built.
    pub config: FlixConfig,
    /// Worker threads used for the index-build stage.
    pub threads: usize,
    /// Wall-clock microseconds spent planning meta documents (§4.1).
    pub planning_micros: u64,
    /// Wall-clock microseconds of the (parallel) index-build stage.
    pub indexing_micros: u64,
    /// Wall-clock microseconds spent wiring the runtime link table.
    pub wiring_micros: u64,
    /// Wall-clock microseconds of the whole build.
    pub total_micros: u64,
    /// Entries in the final runtime link table.
    pub runtime_links: usize,
    /// Per-meta-document breakdown, in meta-document order.
    pub per_meta: Vec<MetaBuildReport>,
}

impl BuildReport {
    /// A zeroed placeholder (for persisted frameworks whose store predates
    /// report blobs).
    pub fn empty(config: FlixConfig) -> Self {
        Self {
            config,
            threads: 0,
            planning_micros: 0,
            indexing_micros: 0,
            wiring_micros: 0,
            total_micros: 0,
            runtime_links: 0,
            per_meta: Vec::new(),
        }
    }

    /// Sum of per-meta index-build times: the work a one-thread build pays
    /// sequentially.
    pub fn cpu_micros(&self) -> u64 {
        self.per_meta.iter().map(|m| m.build_micros).sum()
    }

    /// The single most expensive meta-document build — no parallel schedule
    /// can finish the indexing stage faster than this.
    pub fn critical_path_micros(&self) -> u64 {
        self.per_meta
            .iter()
            .map(|m| m.build_micros)
            .max()
            .unwrap_or(0)
    }

    /// Ratio of summed per-meta build time to the indexing stage's wall
    /// clock — the speedup the worker pool realised (1.0 when sequential).
    pub fn parallel_speedup(&self) -> f64 {
        if self.indexing_micros == 0 {
            1.0
        } else {
            self.cpu_micros() as f64 / self.indexing_micros as f64
        }
    }

    /// Index of and record for the costliest meta document, if any.
    pub fn costliest_meta(&self) -> Option<(usize, &MetaBuildReport)> {
        self.per_meta
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.build_micros)
    }

    /// Total estimated index footprint across meta documents, in bytes.
    pub fn index_bytes(&self) -> usize {
        self.per_meta.iter().map(|m| m.index_bytes).sum()
    }

    /// Staged-pipeline totals across every HOPI-backed meta document
    /// (timings and partition counts summed, threads maxed), or `None` if
    /// no meta document went through the staged builder.
    pub fn hopi_stage_totals(&self) -> Option<hopi::StageReport> {
        let mut total: Option<hopi::StageReport> = None;
        for m in &self.per_meta {
            if let Some(s) = m.stages {
                total
                    .get_or_insert_with(hopi::StageReport::default)
                    .absorb(s);
            }
        }
        total
    }

    /// `(ppo, hopi, apex)` meta-document counts.
    pub fn strategy_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for m in &self.per_meta {
            match m.strategy {
                StrategyKind::Ppo => counts.0 += 1,
                StrategyKind::Hopi => counts.1 += 1,
                StrategyKind::Apex => counts.2 += 1,
            }
        }
        counts
    }

    /// JSON image of the report (hand-rolled: the workspace vendors no JSON
    /// serializer). Per-meta entries are kept in meta-document order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.per_meta.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"config\": \"{}\",\n  \"threads\": {},\n",
            self.config, self.threads
        ));
        out.push_str(&format!(
            "  \"planning_micros\": {},\n  \"indexing_micros\": {},\n  \"wiring_micros\": {},\n  \"total_micros\": {},\n",
            self.planning_micros, self.indexing_micros, self.wiring_micros, self.total_micros
        ));
        out.push_str(&format!(
            "  \"cpu_micros\": {},\n  \"critical_path_micros\": {},\n  \"parallel_speedup\": {:.3},\n",
            self.cpu_micros(),
            self.critical_path_micros(),
            self.parallel_speedup()
        ));
        out.push_str(&format!(
            "  \"runtime_links\": {},\n  \"index_bytes\": {},\n  \"meta_docs\": {},\n",
            self.runtime_links,
            self.index_bytes(),
            self.per_meta.len()
        ));
        if let Some(s) = self.hopi_stage_totals() {
            out.push_str(&format!("  \"hopi_stages\": {},\n", stage_json(&s)));
        }
        out.push_str("  \"per_meta\": [\n");
        for (i, m) in self.per_meta.iter().enumerate() {
            let stages = m
                .stages
                .map(|s| format!(", \"stages\": {}", stage_json(&s)))
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"strategy\": \"{}\", \"nodes\": {}, \"edges\": {}, \"build_micros\": {}, \"index_bytes\": {}, \"dropped_links\": {}{}}}{}\n",
                m.strategy,
                m.nodes,
                m.edges,
                m.build_micros,
                m.index_bytes,
                m.dropped_links,
                stages,
                if i + 1 < self.per_meta.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// JSON object for one [`hopi::StageReport`] (shared by the aggregate and
/// per-meta renderings).
fn stage_json(s: &hopi::StageReport) -> String {
    format!(
        "{{\"rank_micros\": {}, \"merge_micros\": {}, \"cover_micros\": {}, \"partitions\": {}, \"border_centers\": {}, \"threads\": {}}}",
        s.rank_micros, s.merge_micros, s.cover_micros, s.partitions, s.border_centers, s.threads
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(strategy: StrategyKind, micros: u64) -> MetaBuildReport {
        MetaBuildReport {
            strategy,
            nodes: 10,
            edges: 9,
            build_micros: micros,
            index_bytes: 100,
            dropped_links: 1,
            stages: (strategy == StrategyKind::Hopi).then_some(hopi::StageReport {
                rank_micros: 3,
                merge_micros: 4,
                cover_micros: 5,
                partitions: 2,
                border_centers: 1,
                threads: 2,
            }),
        }
    }

    fn sample() -> BuildReport {
        BuildReport {
            config: FlixConfig::Naive,
            threads: 4,
            planning_micros: 5,
            indexing_micros: 40,
            wiring_micros: 5,
            total_micros: 50,
            runtime_links: 2,
            per_meta: vec![
                meta(StrategyKind::Ppo, 30),
                meta(StrategyKind::Hopi, 70),
                meta(StrategyKind::Apex, 20),
            ],
        }
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.cpu_micros(), 120);
        assert_eq!(r.critical_path_micros(), 70);
        assert!((r.parallel_speedup() - 3.0).abs() < 1e-9);
        assert_eq!(r.index_bytes(), 300);
        assert_eq!(r.strategy_counts(), (1, 1, 1));
        let (idx, costliest) = r.costliest_meta().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(costliest.strategy, StrategyKind::Hopi);
        assert_eq!(costliest.build_time(), Duration::from_micros(70));
    }

    #[test]
    fn empty_report_is_inert() {
        let r = BuildReport::empty(FlixConfig::MaximalPpo);
        assert_eq!(r.cpu_micros(), 0);
        assert_eq!(r.critical_path_micros(), 0);
        assert!((r.parallel_speedup() - 1.0).abs() < 1e-9);
        assert!(r.costliest_meta().is_none());
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"config\": \"PPO-naive\""), "{j}");
        assert!(j.contains("\"parallel_speedup\": 3.000"), "{j}");
        assert!(j.contains("\"per_meta\": ["), "{j}");
        assert_eq!(j.matches("\"strategy\":").count(), 3, "{j}");
        // the one HOPI meta carries stages; the aggregate mirrors it
        assert!(j.contains("\"hopi_stages\": {\"rank_micros\": 3"), "{j}");
        assert_eq!(j.matches("\"stages\":").count(), 1, "{j}");
        // commas separate entries but never trail
        assert!(!j.contains("},\n  ]"), "{j}");
    }

    #[test]
    fn stage_totals_aggregate_hopi_metas_only() {
        let mut r = sample();
        assert_eq!(
            r.hopi_stage_totals(),
            Some(hopi::StageReport {
                rank_micros: 3,
                merge_micros: 4,
                cover_micros: 5,
                partitions: 2,
                border_centers: 1,
                threads: 2,
            })
        );
        r.per_meta.push(meta(StrategyKind::Hopi, 10));
        let total = r.hopi_stage_totals().unwrap();
        assert_eq!(total.rank_micros, 6);
        assert_eq!(total.partitions, 4);
        assert_eq!(total.threads, 2, "threads are maxed, not summed");
        r.per_meta.retain(|m| m.strategy != StrategyKind::Hopi);
        assert_eq!(r.hopi_stage_totals(), None);
        assert!(!r.to_json().contains("hopi_stages"));
    }

    #[test]
    fn round_trips_through_pagestore_codec() {
        let r = sample();
        let bytes = pagestore::to_bytes(&r).expect("serialize");
        let back: BuildReport = pagestore::from_bytes(&bytes).expect("deserialize");
        assert_eq!(r, back);
    }
}
