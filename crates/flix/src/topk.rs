//! Sequential-read top-k aggregation — Fagin's "no random access"
//! threshold algorithm ([8] in the paper).
//!
//! §3.1: a search engine over FliX "may even stop the execution when it
//! can determine that it has produced the top k results (e.g., using an
//! algorithm similar to Fagin's threshold algorithm with only sequential
//! reads)". This module implements that operator: several result streams,
//! each yielding `(node, score)` pairs in descending score order (e.g. one
//! stream per `~tag` expansion of a vague query), are merged into the
//! guaranteed top-k under a monotonic aggregation, reading every stream
//! strictly sequentially.
//!
//! The classic NRA bookkeeping applies: for every seen node keep a lower
//! bound (scores seen) and an upper bound (lower bound plus the current
//! stream frontiers for streams that have not yet mentioned it); stop when
//! the k-th best lower bound is at least every other candidate's upper
//! bound and at least the best score any unseen node could still reach.

use graphcore::NodeId;
use std::collections::HashMap;

/// How scores from different streams combine for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum of per-stream scores (Fagin's classic setting).
    Sum,
    /// Maximum per-stream score (vague queries: best-matching expansion).
    Max,
}

impl Aggregation {
    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            Aggregation::Sum => a + b,
            Aggregation::Max => a.max(b),
        }
    }

    /// Upper-bound contribution of the streams a node has not appeared in,
    /// given those streams' current frontier scores.
    fn unseen_bound(self, seen: f64, frontiers: &[f64], seen_mask: u32) -> f64 {
        let mut bound = seen;
        for (i, &f) in frontiers.iter().enumerate() {
            if seen_mask & (1 << i) == 0 {
                bound = self.combine(bound, f);
            }
        }
        bound
    }
}

/// One ranked answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The node.
    pub node: NodeId,
    /// Its aggregated score (exact at emission time).
    pub score: f64,
}

/// Merges up to 32 descending-score streams into the guaranteed top-k.
///
/// Streams **must** be sorted by descending score; this is checked with
/// debug assertions. Returns the top-k sorted by descending score (ties by
/// node id ascending). Reads each stream only as far as needed.
pub fn top_k_nra<I>(streams: Vec<I>, k: usize, agg: Aggregation) -> Vec<TopKResult>
where
    I: Iterator<Item = (NodeId, f64)>,
{
    assert!(streams.len() <= 32, "at most 32 streams (seen-mask width)");
    if k == 0 || streams.is_empty() {
        return Vec::new();
    }
    let n_streams = streams.len();
    let mut streams: Vec<std::iter::Peekable<I>> =
        streams.into_iter().map(Iterator::peekable).collect();
    // frontier[i]: the score the next unread entry of stream i may have
    // (+inf until the first read tells us better; 0 when exhausted).
    let mut frontiers = vec![f64::INFINITY; n_streams];
    // node -> (lower bound, bitmask of streams seen in)
    let mut state: HashMap<NodeId, (f64, u32)> = HashMap::new();
    let mut last_scores = vec![f64::INFINITY; n_streams];

    loop {
        // One sequential round over all live streams.
        let mut progressed = false;
        for i in 0..n_streams {
            let Some(&(node, score)) = streams[i].peek() else {
                frontiers[i] = 0.0;
                continue;
            };
            debug_assert!(score <= last_scores[i], "stream {i} not sorted descending");
            last_scores[i] = score;
            streams[i].next();
            progressed = true;
            frontiers[i] = score; // the next entry scores at most this
            let e = state.entry(node).or_insert((
                match agg {
                    Aggregation::Sum => 0.0,
                    Aggregation::Max => f64::NEG_INFINITY,
                },
                0,
            ));
            e.0 = agg.combine(e.0, score);
            e.1 |= 1 << i;
        }
        for i in 0..n_streams {
            if streams[i].peek().is_none() {
                frontiers[i] = 0.0;
            }
        }

        // Current top-k by lower bound.
        let mut ranked: Vec<(&NodeId, &(f64, u32))> = state.iter().collect();
        ranked.sort_by(|a, b| {
            b.1 .0
                .partial_cmp(&a.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        let kth_lower = if ranked.len() >= k {
            ranked[k - 1].1 .0
        } else {
            f64::NEG_INFINITY
        };
        // Can anything still beat the k-th? Either a seen non-top node's
        // upper bound, or an entirely unseen node's best possible score.
        let frontier_ready = frontiers.iter().all(|f| f.is_finite());
        if frontier_ready && ranked.len() >= k {
            let unseen_best = frontiers.iter().fold(
                match agg {
                    Aggregation::Sum => 0.0,
                    Aggregation::Max => f64::NEG_INFINITY,
                },
                |acc, &f| agg.combine(acc, f),
            );
            let mut blocked = unseen_best > kth_lower;
            if !blocked {
                for (_, &(lower, mask)) in ranked.iter().skip(k) {
                    if agg.unseen_bound(lower, &frontiers, mask) > kth_lower {
                        blocked = true;
                        break;
                    }
                }
                // top-k candidates themselves may still be uncertain
                // relative to each other, but their membership is settled;
                // their final scores only need the remaining reads if the
                // caller wants exact scores — NRA emits once membership is
                // certain, and Sum lower bounds are exact once every stream
                // either listed the node or ran dry.
                if !blocked {
                    for (_, &(lower, mask)) in ranked.iter().take(k) {
                        let upper = agg.unseen_bound(lower, &frontiers, mask);
                        if upper > lower && frontiers.iter().any(|&f| f > 0.0) {
                            blocked = true;
                            break;
                        }
                    }
                }
            }
            if !blocked {
                return ranked
                    .into_iter()
                    .take(k)
                    .map(|(&node, &(score, _))| TopKResult { node, score })
                    .collect();
            }
        }
        if !progressed {
            // all streams exhausted: lower bounds are final
            return ranked
                .into_iter()
                .take(k)
                .map(|(&node, &(score, _))| TopKResult { node, score })
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::unnecessary_to_owned)] // the owning iterator type is the point
    fn s(pairs: &[(u32, f64)]) -> std::vec::IntoIter<(u32, f64)> {
        pairs.to_vec().into_iter()
    }

    #[test]
    fn single_stream_is_prefix() {
        let out = top_k_nra(
            vec![s(&[(1, 0.9), (2, 0.7), (3, 0.5)])],
            2,
            Aggregation::Max,
        );
        assert_eq!(
            out,
            vec![
                TopKResult {
                    node: 1,
                    score: 0.9
                },
                TopKResult {
                    node: 2,
                    score: 0.7
                }
            ]
        );
    }

    #[test]
    fn sum_aggregation_combines_streams() {
        // node 3 is mediocre everywhere but wins on the sum
        let a = s(&[(1, 0.9), (3, 0.6), (2, 0.1)]);
        let b = s(&[(2, 0.8), (3, 0.6), (1, 0.05)]);
        let out = top_k_nra(vec![a, b], 1, Aggregation::Sum);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node, 3);
        assert!((out[0].score - 1.2).abs() < 1e-9);
    }

    #[test]
    fn max_aggregation_takes_best_expansion() {
        let a = s(&[(1, 0.9), (2, 0.5)]);
        let b = s(&[(2, 0.8), (1, 0.2)]);
        let out = top_k_nra(vec![a, b], 2, Aggregation::Max);
        assert_eq!(
            out[0],
            TopKResult {
                node: 1,
                score: 0.9
            }
        );
        assert_eq!(
            out[1],
            TopKResult {
                node: 2,
                score: 0.8
            }
        );
    }

    #[test]
    fn early_termination_skips_tails() {
        // a long tail that must never be read once the top-1 is certain
        let head = vec![(1u32, 1.0), (2, 0.9)];
        let tail: Vec<(u32, f64)> = (3..1000u32).map(|i| (i, 0.8 - i as f64 * 1e-4)).collect();
        let mut all = head;
        all.extend(tail);
        let reads = std::cell::Cell::new(0usize);
        let counting = all.into_iter().inspect(|_| reads.set(reads.get() + 1));
        let out = top_k_nra(vec![counting], 1, Aggregation::Max);
        assert_eq!(out[0].node, 1);
        assert!(
            reads.get() < 10,
            "read {} entries instead of stopping early",
            reads.get()
        );
    }

    #[test]
    fn agrees_with_exhaustive_merge() {
        // pseudo-random streams, compare against full materialisation
        for seed in 0..10u32 {
            let mk = |salt: u32| {
                let mut v: Vec<(u32, f64)> = (0..30u32)
                    .map(|i| {
                        let x = (i.wrapping_mul(2654435761).wrapping_add(seed * 97 + salt)) % 1000;
                        (i % 17, x as f64 / 1000.0)
                    })
                    .collect();
                // keep one entry per node per stream (highest), descending
                v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                let mut seen = std::collections::HashSet::new();
                v.retain(|(n, _)| seen.insert(*n));
                v
            };
            let s1 = mk(1);
            let s2 = mk(2);
            let s3 = mk(3);
            let mut exact: HashMap<u32, f64> = HashMap::new();
            for (n, sc) in s1.iter().chain(&s2).chain(&s3) {
                let e = exact.entry(*n).or_insert(0.0);
                *e += sc;
            }
            let mut want: Vec<(u32, f64)> = exact.into_iter().collect();
            want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            let got = top_k_nra(
                vec![s1.into_iter(), s2.into_iter(), s3.into_iter()],
                5,
                Aggregation::Sum,
            );
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.node, w.0, "seed {seed}");
                assert!((g.score - w.1).abs() < 1e-9, "seed {seed}");
            }
        }
    }

    #[test]
    fn k_zero_and_empty_streams() {
        assert!(top_k_nra(vec![s(&[(1, 0.5)])], 0, Aggregation::Max).is_empty());
        assert!(top_k_nra(
            Vec::<std::vec::IntoIter<(u32, f64)>>::new(),
            3,
            Aggregation::Max
        )
        .is_empty());
        let out = top_k_nra(vec![s(&[])], 3, Aggregation::Sum);
        assert!(out.is_empty());
    }

    #[test]
    fn fewer_results_than_k() {
        let out = top_k_nra(vec![s(&[(7, 0.4)])], 5, Aggregation::Max);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node, 7);
    }
}
