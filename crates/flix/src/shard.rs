//! Sharded serving: independent per-shard index views with
//! distance-ordered cross-shard merge.
//!
//! The serve path used to contend on one shared [`Flix`]: every worker
//! evaluated every query over the whole collection, paying per-query
//! costs proportional to the full meta-document count. FliX's own
//! architecture points at the fix — the collection is already
//! partitioned into meta documents, and the evaluator already merges
//! distance-ordered streams across cross-partition links — so the
//! scale-out step is to cut the *meta documents* into shards:
//!
//! 1. [`ShardPlan`] partitions the meta-document link graph with
//!    [`graphcore::partition_greedy`] and packs the blocks into exactly
//!    `N` shards by balanced prefix splitting in meta order, keeping
//!    link-connected and link-adjacent meta documents together so most
//!    link chases stay shard-local.
//! 2. Each shard gets its own [`Flix`] *view* ([`Flix::shard_view`]):
//!    the parent's meta-document `Arc`s renumbered to shard-local ids,
//!    plus the slices of the runtime link table anchored in the shard.
//!    Cross-shard links are simply the existing cross-partition link
//!    case — they sit in the owning shard's forward table with a
//!    foreign target.
//! 3. [`ShardedFlix`] routes queries with help from a boundary-distance
//!    table: the plan records, per meta document, the minimum number of
//!    link traversals before an evaluation can reach another shard
//!    ([`ShardPlan::boundary_hops_out`]). Every link traversal costs at
//!    least 1 distance, so a shard-closed start — or a `max_distance`
//!    below the boundary budget — *proves* the query completes inside
//!    the shard's view. Uncapped queries that can reach the boundary go
//!    straight to the fan-out space, which stitches all shard views back
//!    together; capped ones attempt the shard first and *escape* to the
//!    fan-out space only if they actually pop a foreign node (everything
//!    from the aborted attempt is discarded). In the fan-out space the
//!    evaluator's priority queue **is** the cross-shard merge — every
//!    pop consults the owning shard's view, and entries from different
//!    shards interleave in ascending distance order, exactly the
//!    discipline `pee.rs` applies to meta documents.
//!
//! Results are byte-identical to the unsharded oracle in every case:
//! the heap is a set of `(distance, node)`-keyed entries, a shard view
//! presents exactly the parent's data for its own metas, and the
//! fan-out space presents exactly the parent's data for all of them —
//! so the pop sequence (and therefore the emitted stream) never
//! diverges. The equivalence test in `tests/serve.rs` proves it per
//! shard count.

use crate::cache::{clip, CacheStats, CachedFlix};
use crate::framework::Flix;
use crate::meta::MetaDocument;
use crate::pee::{evaluate_axis_space, Axis, EvalEnd, MetaSpace, PeeStats};
use crate::pee::{QueryOptions, QueryOutcome, QueryResult};
use flixobs::journal::{EventKind, JournalHandle, SHARD_MERGE};
use flixobs::{Counter, MetricId, MetricsRegistry};
use graphcore::{partition_greedy, Digraph, NodeId};
use std::ops::ControlFlow;
use std::sync::Arc;
use xmlgraph::TagId;

/// An assignment of a framework's meta documents to `N` shards.
///
/// The plan partitions the *meta-document link graph* (one node per meta
/// document, one edge per runtime-link pair of distinct metas) into
/// size-capped blocks with [`graphcore::partition_greedy`], then packs
/// the blocks onto exactly `shards` shards by balanced prefix splitting
/// in ascending meta order (each shard takes consecutive blocks until it
/// reaches its proportional share of the element weight). Link-connected
/// metas share a block and link-adjacent blocks share a shard, which
/// keeps link chases — and so query evaluations — shard-local.
/// Deterministic for a given framework and shard count.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard id of every parent meta document.
    shard_of_meta: Vec<u32>,
    /// Shard-local meta id of every parent meta document (its index in
    /// the owning shard's member list).
    local_meta: Vec<u32>,
    /// Parent meta ids per shard, ascending.
    members: Vec<Vec<u32>>,
    /// Per meta: minimum link traversals along *outgoing* link edges to
    /// reach a meta in another shard ([`u32::MAX`] when no such path
    /// exists — the meta is shard-closed for the descendants axis).
    boundary_hops_out: Vec<u32>,
    /// Same, along *incoming* link edges (the ancestors axis walks links
    /// backwards).
    boundary_hops_in: Vec<u32>,
}

impl ShardPlan {
    /// Plans `shards` shards over `flix`'s meta documents. The count is
    /// clamped to `1..=meta_count` — more shards than meta documents
    /// cannot be populated.
    pub fn new(flix: &Flix, shards: usize) -> Self {
        let m = flix.meta_count();
        let shards = shards.clamp(1, m.max(1));

        // The meta-document link graph: which metas are wired together?
        let mut edges: Vec<(u32, u32)> = flix
            .runtime_links()
            .iter()
            .map(|&(u, v)| (flix.meta_of(u), flix.meta_of(v)))
            .filter(|&(a, b)| a != b)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        // Meta-level link adjacency, kept for the boundary-distance pass
        // below (the packer consumes the edge list).
        let mut fwd_adj: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut bwd_adj: Vec<Vec<u32>> = vec![Vec::new(); m];
        for &(a, b) in &edges {
            fwd_adj[a as usize].push(b);
            bwd_adj[b as usize].push(a);
        }
        let g = Digraph::from_edges(m, edges);

        // Blocks of ~M/(4·shards) metas give the packer room to balance
        // shard weights while still keeping linked metas together.
        let cap = (m / (shards * 4)).max(1);
        let parts = partition_greedy(&g, cap);

        // Pack the blocks into exactly `shards` shards by balanced prefix
        // splitting in ascending first-meta order. Meta ids follow the
        // collection's document order, and collections link locally in
        // that order (DBLP citations reach a bounded window back), so
        // keeping *adjacent* blocks together puts the cross-block link
        // mass inside shards. A load-balance packer that scatters blocks
        // (heaviest onto lightest) turns almost every cut edge into a
        // cross-shard edge; prefix splitting leaves only the few cuts
        // that straddle a shard boundary.
        let block_weight =
            |block: &[u32]| -> usize { block.iter().map(|&mi| flix.meta(mi).len()).sum() };
        let mut order: Vec<usize> = (0..parts.len()).collect();
        order.sort_by_key(|&p| parts.parts[p].first().copied().unwrap_or(u32::MAX));
        let total: usize = (0..parts.len())
            .map(|p| block_weight(&parts.parts[p]))
            .sum();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut cum = 0usize;
        let mut s = 0usize;
        for (i, &p) in order.iter().enumerate() {
            let blocks_left = order.len() - i;
            // Advance once this shard met its proportional share of the
            // element weight — or when every remaining shard needs one of
            // the remaining blocks to stay populated.
            if s + 1 < shards
                && !members[s].is_empty()
                && (cum * shards >= total * (s + 1) || blocks_left == shards - s - 1)
            {
                s += 1;
            }
            cum += block_weight(&parts.parts[p]);
            members[s].extend_from_slice(&parts.parts[p]);
        }

        let mut shard_of_meta = vec![0u32; m];
        let mut local_meta = vec![0u32; m];
        for (s, block) in members.iter_mut().enumerate() {
            // Ascending parent ids per shard: the shard-local numbering
            // preserves the parent's relative meta order.
            block.sort_unstable();
            for (k, &mi) in block.iter().enumerate() {
                shard_of_meta[mi as usize] = s as u32;
                local_meta[mi as usize] = k as u32;
            }
        }

        // Boundary distances: for each meta, the minimum number of link
        // traversals (following `step` edges) before the evaluation can
        // reach a meta in another shard. Every link traversal costs at
        // least 1 distance in the evaluator, so a query whose
        // `max_distance` is below this number provably never leaves the
        // shard. Multi-source BFS: metas with a foreign `step` neighbour
        // sit at 1; same-shard `rstep` edges relax backwards.
        let hops = |step: &[Vec<u32>], rstep: &[Vec<u32>]| -> Vec<u32> {
            let mut dist = vec![u32::MAX; m];
            let mut queue = std::collections::VecDeque::new();
            for x in 0..m {
                if step[x]
                    .iter()
                    .any(|&y| shard_of_meta[y as usize] != shard_of_meta[x])
                {
                    dist[x] = 1;
                    queue.push_back(x as u32);
                }
            }
            while let Some(y) = queue.pop_front() {
                for &x in &rstep[y as usize] {
                    if shard_of_meta[x as usize] == shard_of_meta[y as usize]
                        && dist[x as usize] == u32::MAX
                    {
                        dist[x as usize] = dist[y as usize] + 1;
                        queue.push_back(x);
                    }
                }
            }
            dist
        };
        let boundary_hops_out = hops(&fwd_adj, &bwd_adj);
        let boundary_hops_in = hops(&bwd_adj, &fwd_adj);

        Self {
            shard_of_meta,
            local_meta,
            members,
            boundary_hops_out,
            boundary_hops_in,
        }
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// Shard id of a parent meta document.
    pub fn shard_of_meta(&self, meta: u32) -> u32 {
        self.shard_of_meta[meta as usize]
    }

    /// Parent meta ids owned by shard `s`, ascending.
    pub fn members(&self, s: usize) -> &[u32] {
        &self.members[s]
    }

    /// Minimum link traversals from `meta` before a *descendants*
    /// evaluation can surface a node from another shard; [`u32::MAX`]
    /// when the meta is shard-closed for that axis. Since every link
    /// traversal costs at least 1 distance, a query with `max_distance`
    /// strictly below this bound is proven to stay in the shard.
    pub fn boundary_hops_out(&self, meta: u32) -> u32 {
        self.boundary_hops_out[meta as usize]
    }

    /// [`Self::boundary_hops_out`] for the *ancestors* axis, which walks
    /// link edges backwards.
    pub fn boundary_hops_in(&self, meta: u32) -> u32 {
        self.boundary_hops_in[meta as usize]
    }
}

/// Per-shard routing counters (live cells, shared with the registry when
/// published).
struct ShardCell {
    /// Queries answered entirely inside this shard's view.
    direct: Counter,
    /// Uncapped queries routed straight to the cross-shard fan-out merge
    /// because their start can reach the shard boundary.
    fanout: Counter,
    /// Optimistic local attempts that popped a foreign node and fell
    /// back to the cross-shard fan-out merge.
    escaped: Counter,
}

/// Point-in-time routing statistics for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Meta documents owned by the shard.
    pub metas: usize,
    /// Elements owned by the shard.
    pub nodes: usize,
    /// Queries answered entirely inside the shard.
    pub direct: u64,
    /// Queries routed straight to the cross-shard fan-out merge.
    pub fanout: u64,
    /// Local attempts that surfaced a foreign node at runtime and re-ran
    /// over the fan-out merge.
    pub escaped: u64,
}

/// Point-in-time statistics for a [`ShardedFlix`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardStats>,
    /// Total queries answered shard-locally.
    pub direct: u64,
    /// Total queries routed straight to the cross-shard fan-out merge.
    pub fanout: u64,
    /// Total local attempts that escaped at runtime and re-ran over the
    /// fan-out merge.
    pub escaped: u64,
}

/// A framework cut into `N` independent per-shard views, routing
/// single-shard queries directly and merging multi-shard queries through
/// the evaluator's distance-ordered priority queue (see the module docs).
///
/// Results are byte-identical to evaluating on the parent [`Flix`]; the
/// win is that a query answered inside its shard touches only the
/// shard's structures — in particular the evaluator's per-meta scratch
/// scales with the shard's meta count instead of the collection's.
pub struct ShardedFlix {
    parent: Arc<Flix>,
    plan: ShardPlan,
    /// Shard views, never exposed: the public [`Flix`] query API assumes
    /// every node resolves and would silently swallow an escape.
    shards: Vec<Arc<Flix>>,
    /// Per-shard result caches (optional). Each key's start element pins
    /// it to exactly one shard, so entries are never duplicated.
    caches: Option<Vec<CachedFlix>>,
    cells: Vec<ShardCell>,
}

impl ShardedFlix {
    /// Cuts `parent` into `shards` independent views (clamped to the
    /// meta-document count), without result caches.
    pub fn new(parent: Arc<Flix>, shards: usize) -> Self {
        let plan = ShardPlan::new(&parent, shards);
        let n = parent.collection().node_count();
        let views = (0..plan.shard_count())
            .map(|s| {
                let mut meta_of = vec![u32::MAX; n];
                let mut local_of = vec![u32::MAX; n];
                let mut metas = Vec::with_capacity(plan.members[s].len());
                for (k, &mi) in plan.members[s].iter().enumerate() {
                    let md = parent.meta_arc(mi);
                    for (local, &global) in md.nodes.iter().enumerate() {
                        meta_of[global as usize] = k as u32;
                        local_of[global as usize] = local as u32;
                    }
                    metas.push(md);
                }
                // Forward links anchored in the shard (targets may be
                // foreign); the parent's table is source-sorted, so the
                // filtered copy is too.
                let fwd: Vec<(NodeId, NodeId)> = parent
                    .runtime_links()
                    .iter()
                    .copied()
                    .filter(|&(u, _)| meta_of[u as usize] != u32::MAX)
                    .collect();
                // Reverse links anchored in the shard (sources may be
                // foreign), re-sorted by target.
                let mut rev: Vec<(NodeId, NodeId)> = parent
                    .runtime_links()
                    .iter()
                    .filter(|&&(_, v)| meta_of[v as usize] != u32::MAX)
                    .map(|&(u, v)| (v, u))
                    .collect();
                rev.sort_unstable();
                Arc::new(Flix::shard_view(
                    parent.collection_arc(),
                    parent.config(),
                    metas,
                    meta_of,
                    local_of,
                    fwd,
                    rev,
                ))
            })
            .collect();
        let cells = (0..plan.shard_count())
            .map(|_| ShardCell {
                direct: Counter::new(),
                fanout: Counter::new(),
                escaped: Counter::new(),
            })
            .collect();
        Self {
            parent,
            plan,
            shards: views,
            caches: None,
            cells,
        }
    }

    /// Adds one result cache of `per_shard_capacity` entries per shard.
    /// The cached entry point is [`Self::find_descendants_deadline`];
    /// each cache carries its own generation counter, so the invalidation
    /// discipline of [`CachedFlix`] holds per shard (see DESIGN.md §10).
    ///
    /// # Panics
    /// If `per_shard_capacity` is zero.
    pub fn with_caches(mut self, per_shard_capacity: usize) -> Self {
        self.caches = Some(
            self.shards
                .iter()
                .map(|_| CachedFlix::new(Arc::clone(&self.parent), per_shard_capacity))
                .collect(),
        );
        self
    }

    /// The unsharded parent framework (the oracle the sharded results
    /// are byte-identical to).
    pub fn parent(&self) -> &Arc<Flix> {
        &self.parent
    }

    /// The shard plan in effect.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard result-cache capacity, or `None` when caching is off —
    /// enough to rebuild a sharded backend of the same shape (see
    /// [`Self::with_caches`]).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.caches
            .as_ref()
            .and_then(|caches| caches.first())
            .map(CachedFlix::capacity)
    }

    /// Shard owning a global node (its start-element route).
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.plan.shard_of_meta[self.parent.meta_of(node) as usize]
    }

    /// Whether the plan proves that an evaluation along `axis` starting
    /// at `start` cannot leave the start's shard: either the start meta
    /// is shard-closed for the axis, or the query's `max_distance` is too
    /// small to pay for the link traversals that reach the boundary.
    fn proven_local(&self, start: NodeId, opts: &QueryOptions, axis: Axis) -> bool {
        let meta = self.parent.meta_of(start);
        let hops = match axis {
            Axis::Descendants => self.plan.boundary_hops_out[meta as usize],
            Axis::Ancestors => self.plan.boundary_hops_in[meta as usize],
        };
        hops == u32::MAX || opts.max_distance.is_some_and(|limit| limit < hops)
    }

    /// The distance-ordered cross-shard merge: evaluate over the fan-out
    /// space, which stitches every shard view together (module docs).
    /// With a journal, the merge pass is bracketed by
    /// `eval_start`/`eval_end` events under the [`SHARD_MERGE`] sentinel.
    fn fanout_outcome(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        axis: Axis,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        let mut stats = PeeStats::default();
        let mut results = Vec::new();
        if let Some(j) = journal {
            j.event(EventKind::EvalStart { shard: SHARD_MERGE });
        }
        let end = evaluate_axis_space(
            &FanoutSpace { sharded: self },
            &[(start, 0)],
            target,
            opts,
            axis,
            &mut stats,
            None,
            journal,
            |r, _| {
                results.push(r);
                ControlFlow::Continue(())
            },
        );
        if let Some(j) = journal {
            j.event(EventKind::EvalEnd {
                results: results.len() as u64,
            });
        }
        // The fan-out space resolves every node, so it can only end in
        // `Done`.
        let timed_out = matches!(end, EvalEnd::Done { timed_out: true });
        QueryOutcome {
            results,
            timed_out,
            stats,
        }
    }

    /// The routed axis evaluation. Uncapped queries whose start can reach
    /// the shard boundary go straight to the cross-shard merge (the local
    /// attempt would be futile). Everything else runs *optimistically*
    /// inside the start element's shard view — capped queries usually
    /// exhaust their budget before chasing a cross-shard link, and when
    /// the plan can prove shard-locality ([`Self::proven_local`]) the
    /// attempt is guaranteed to complete. An attempt that does pop a
    /// foreign node *escapes* and re-runs over the merge. Byte-identical
    /// to the parent in every case (module docs).
    fn axis_outcome(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        axis: Axis,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        let s = self.shard_of(start) as usize;
        let shard = s as u64;
        // An uncapped query (no result cap, no distance bound) walks its
        // whole reachable component, so when the boundary is reachable at
        // all the local attempt is futile: go straight to the merge.
        let uncapped = opts.max_results.is_none() && opts.max_distance.is_none();
        if uncapped && !self.proven_local(start, opts, axis) {
            self.cells[s].fanout.inc();
            if let Some(j) = journal {
                j.event(EventKind::RouteFanout { shard });
            }
            return self.fanout_outcome(start, target, opts, axis, journal);
        }
        let mut stats = PeeStats::default();
        let mut results = Vec::new();
        if let Some(j) = journal {
            j.event(EventKind::EvalStart { shard });
        }
        let end = evaluate_axis_space(
            &*self.shards[s],
            &[(start, 0)],
            target,
            opts,
            axis,
            &mut stats,
            None,
            journal,
            |r, _| {
                results.push(r);
                ControlFlow::Continue(())
            },
        );
        match end {
            EvalEnd::Done { timed_out } => {
                self.cells[s].direct.inc();
                if let Some(j) = journal {
                    j.event(EventKind::EvalEnd {
                        results: results.len() as u64,
                    });
                    j.event(EventKind::RouteDirect { shard });
                }
                QueryOutcome {
                    results,
                    timed_out,
                    stats,
                }
            }
            EvalEnd::Escaped => {
                // Nothing emitted by the aborted local attempt is kept;
                // the fan-out re-run starts clean. A deadline in `opts`
                // is a running stopwatch (`Deadline` is `Copy`), so the
                // re-run spends only the remaining budget — the wasted
                // attempt costs latency, never correctness.
                self.cells[s].escaped.inc();
                if let Some(j) = journal {
                    // The aborted attempt's results are discarded.
                    j.event(EventKind::EvalEnd { results: 0 });
                    j.event(EventKind::RouteEscaped { shard });
                }
                self.fanout_outcome(start, target, opts, axis, journal)
            }
        }
    }

    /// `a//B` with outcome, routed through the shards. Byte-identical to
    /// [`Flix::find_descendants_outcome`] on the parent.
    pub fn find_descendants_outcome(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> QueryOutcome {
        self.axis_outcome(start, target, opts, Axis::Descendants, None)
    }

    /// [`Self::find_descendants_outcome`] with flight-recorder events:
    /// the routing verdict (`route_direct`/`route_fanout`/
    /// `route_escaped`), evaluator pass boundaries, and deadline expiry
    /// are journaled under the handle's request. The journal is
    /// write-only — results stay byte-identical to the unjournaled call.
    pub fn find_descendants_outcome_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        self.axis_outcome(start, target, opts, Axis::Descendants, journal)
    }

    /// Ancestors variant of [`Self::find_descendants_outcome`].
    /// Byte-identical to [`Flix::find_ancestors_outcome`] on the parent.
    pub fn find_ancestors_outcome(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> QueryOutcome {
        self.axis_outcome(start, target, opts, Axis::Ancestors, None)
    }

    /// Ancestors variant of [`Self::find_descendants_outcome_journaled`].
    pub fn find_ancestors_outcome_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        journal: Option<&JournalHandle<'_>>,
    ) -> QueryOutcome {
        self.axis_outcome(start, target, opts, Axis::Ancestors, journal)
    }

    /// `a//B` collected into a vector, routed through the shards.
    pub fn find_descendants(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Vec<QueryResult> {
        self.find_descendants_outcome(start, target, opts).results
    }

    /// Deadline-aware `a//B` for the serving path, mirroring
    /// [`CachedFlix::find_descendants_deadline`]: with caches enabled the
    /// owning shard's cache is consulted first and complete answers are
    /// stored uncapped (partial answers never are); without caches this
    /// is [`Self::find_descendants_outcome`] with the result vector
    /// shared.
    pub fn find_descendants_deadline(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> (Arc<Vec<QueryResult>>, bool) {
        self.find_descendants_deadline_journaled(start, target, opts, None)
    }

    /// [`Self::find_descendants_deadline`] with flight-recorder events:
    /// the owning shard's cache verdict (`cache_hit`/`cache_miss` with
    /// the shard as payload), TinyLFU admission outcome, routing verdict,
    /// evaluator spans, and deadline expiry are journaled under the
    /// handle's request. The journal is write-only — results stay
    /// byte-identical to the unjournaled call.
    pub fn find_descendants_deadline_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        journal: Option<&JournalHandle<'_>>,
    ) -> (Arc<Vec<QueryResult>>, bool) {
        let Some(caches) = &self.caches else {
            let o = self.axis_outcome(start, target, opts, Axis::Descendants, journal);
            return (Arc::new(o.results), o.timed_out);
        };
        let shard = self.shard_of(start);
        let cache = &caches[shard as usize];
        let generation = match cache.lookup_for(start, target, opts) {
            Ok(hit) => {
                if let Some(j) = journal {
                    j.event(EventKind::CacheHit {
                        shard: u64::from(shard),
                    });
                }
                return (hit, false);
            }
            Err(generation) => generation,
        };
        if let Some(j) = journal {
            j.event(EventKind::CacheMiss {
                shard: u64::from(shard),
            });
        }
        // Evaluate uncapped so one entry serves every `max_results`,
        // exactly like the unsharded cache.
        let full_opts = QueryOptions {
            max_results: None,
            ..*opts
        };
        let o = self.axis_outcome(start, target, &full_opts, Axis::Descendants, journal);
        let fresh = Arc::new(o.results);
        if o.timed_out {
            return (clip(fresh, opts.max_results), true);
        }
        cache.insert_full(start, target, opts, generation, Arc::clone(&fresh), journal);
        (clip(fresh, opts.max_results), false)
    }

    /// Point-in-time routing statistics.
    pub fn stats(&self) -> ShardedStats {
        let per_shard: Vec<ShardStats> = self
            .cells
            .iter()
            .enumerate()
            .map(|(s, cell)| ShardStats {
                metas: self.plan.members[s].len(),
                nodes: self.plan.members[s]
                    .iter()
                    .map(|&mi| self.parent.meta(mi).len())
                    .sum(),
                direct: cell.direct.get(),
                fanout: cell.fanout.get(),
                escaped: cell.escaped.get(),
            })
            .collect();
        ShardedStats {
            direct: per_shard.iter().map(|s| s.direct).sum(),
            fanout: per_shard.iter().map(|s| s.fanout).sum(),
            escaped: per_shard.iter().map(|s| s.escaped).sum(),
            per_shard,
        }
    }

    /// Aggregate cache counters across all shard caches, if caching is
    /// enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        let caches = self.caches.as_ref()?;
        let mut total = CacheStats::default();
        for c in caches {
            let s = c.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.invalidations += s.invalidations;
            total.admitted += s.admitted;
            total.rejected += s.rejected;
        }
        Some(total)
    }

    /// Binds the per-shard routing counters (and cache counters, when
    /// enabled) into `registry` as
    /// `flix_shard_{direct,fanout,escaped}_total` plus the [`CachedFlix`]
    /// names, each tagged with a `shard` label on top of `labels`.
    pub fn publish_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.describe(
            "flix_shard_direct_total",
            "Queries answered entirely inside one shard's view.",
        );
        registry.describe(
            "flix_shard_fanout_total",
            "Queries routed straight to the cross-shard fan-out merge.",
        );
        registry.describe(
            "flix_shard_escaped_total",
            "Optimistic local attempts that popped a foreign node and re-ran \
             over the cross-shard merge.",
        );
        for (s, cell) in self.cells.iter().enumerate() {
            let shard = s.to_string();
            let mut with_shard: Vec<(&str, &str)> = labels.to_vec();
            with_shard.push(("shard", &shard));
            registry.bind_counter(
                MetricId::with_labels("flix_shard_direct_total", &with_shard),
                &cell.direct,
            );
            registry.bind_counter(
                MetricId::with_labels("flix_shard_fanout_total", &with_shard),
                &cell.fanout,
            );
            registry.bind_counter(
                MetricId::with_labels("flix_shard_escaped_total", &with_shard),
                &cell.escaped,
            );
            if let Some(caches) = &self.caches {
                caches[s].publish_metrics(registry, &with_shard);
            }
        }
    }
}

impl std::fmt::Debug for ShardedFlix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFlix")
            .field("shards", &self.shards.len())
            .field("cached", &self.caches.is_some())
            .finish()
    }
}

/// The cross-shard merge space: all shard views stitched back together
/// under the parent's meta numbering. Every access routes through the
/// *owning shard's* structures — `resolve` answers from the shard maps,
/// `meta` from the shard's member list, link slices from the shard's
/// tables — so a fan-out evaluation reads per-shard data only, and the
/// evaluator's priority queue merges the shards' distance-ordered
/// streams. Observationally identical to the parent framework (each
/// shard presents exactly the parent's data for its own metas), hence
/// byte-identical results.
struct FanoutSpace<'a> {
    sharded: &'a ShardedFlix,
}

impl MetaSpace for FanoutSpace<'_> {
    fn meta_count(&self) -> usize {
        self.sharded.parent.meta_count()
    }

    fn resolve(&self, node: NodeId) -> Option<(u32, u32)> {
        let s = self.sharded.shard_of(node);
        let view = &self.sharded.shards[s as usize];
        // Translate the shard-local meta id back to the parent numbering
        // so the subsumption scratch is shared across shards.
        let (local_meta, local) = MetaSpace::resolve(&**view, node)?;
        Some((
            self.sharded.plan.members[s as usize][local_meta as usize],
            local,
        ))
    }

    fn meta(&self, id: u32) -> &MetaDocument {
        let s = self.sharded.plan.shard_of_meta[id as usize];
        let k = self.sharded.plan.local_meta[id as usize];
        self.sharded.shards[s as usize].meta(k)
    }

    fn global_of(&self, meta: u32, local: u32) -> NodeId {
        self.meta(meta).nodes[local as usize]
    }

    fn links_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        self.sharded.shards[self.sharded.shard_of(u) as usize].links_out_of(u)
    }

    fn links_into(&self, v: NodeId) -> &[(NodeId, NodeId)] {
        self.sharded.shards[self.sharded.shard_of(v) as usize].links_into(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlixConfig;
    use xmlgraph::{Collection, CollectionGraph, Document, LinkTarget};

    /// A chain of linked documents plus one isolated one: guarantees
    /// cross-meta links under `Naive`, so small shard counts split them.
    fn chain(docs: usize) -> Arc<CollectionGraph> {
        let mut c = Collection::new();
        let a = c.tags.intern("a");
        let b = c.tags.intern("b");
        for d in 0..docs {
            let mut doc = Document::new(format!("d{d}.xml"));
            let root = doc.add_element(a, None);
            let kid = doc.add_element(b, Some(root));
            doc.add_element(b, Some(kid));
            if d + 1 < docs {
                doc.add_link(
                    kid,
                    LinkTarget {
                        document: Some(format!("d{}.xml", d + 1)),
                        fragment: None,
                    },
                );
            }
            c.add_document(doc).unwrap();
        }
        let mut lone = Document::new("lone.xml");
        let r = lone.add_element(a, None);
        lone.add_element(b, Some(r));
        c.add_document(lone).unwrap();
        Arc::new(c.seal())
    }

    fn tags(cg: &CollectionGraph) -> (TagId, TagId) {
        (
            cg.collection.tags.get("a").unwrap(),
            cg.collection.tags.get("b").unwrap(),
        )
    }

    #[test]
    fn plan_covers_every_meta_exactly_once() {
        let cg = chain(6);
        let flix = Arc::new(Flix::build(cg, FlixConfig::Naive));
        for shards in [1, 2, 3, 7, 64] {
            let plan = ShardPlan::new(&flix, shards);
            assert!(plan.shard_count() >= 1);
            assert!(plan.shard_count() <= shards.min(flix.meta_count()));
            let mut seen = vec![false; flix.meta_count()];
            for s in 0..plan.shard_count() {
                for &mi in plan.members(s) {
                    assert_eq!(plan.shard_of_meta(mi), s as u32);
                    assert!(!seen[mi as usize], "meta {mi} in two shards");
                    seen[mi as usize] = true;
                }
            }
            assert!(seen.iter().all(|&x| x), "every meta is owned");
        }
    }

    #[test]
    fn sharded_results_match_oracle_for_every_start() {
        let cg = chain(6);
        let (a, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedFlix::new(Arc::clone(&flix), shards);
            for start in 0..cg.node_count() as NodeId {
                for (target, opts) in [
                    (b, QueryOptions::default()),
                    (a, QueryOptions::default()),
                    (b, QueryOptions::top_k(2)),
                    (b, QueryOptions::within(2)),
                    (b, QueryOptions::exact()),
                ] {
                    let want = flix.find_descendants_outcome(start, target, &opts);
                    let got = sharded.find_descendants_outcome(start, target, &opts);
                    assert_eq!(got.results, want.results, "shards={shards} start={start}");
                    let want = flix.find_ancestors_outcome(start, a, &opts);
                    let got = sharded.find_ancestors_outcome(start, a, &opts);
                    assert_eq!(
                        got.results, want.results,
                        "ancestors shards={shards} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    fn chain_queries_fan_out_and_lone_document_stays_direct() {
        let cg = chain(6);
        let (_, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        // Per-document shards: every cross-doc link is cross-shard.
        let sharded = ShardedFlix::new(Arc::clone(&flix), flix.meta_count());
        let chain_root = cg.doc_root(0);
        sharded.find_descendants(chain_root, b, &QueryOptions::default());
        let stats = sharded.stats();
        assert_eq!(
            stats.fanout, 1,
            "uncapped chain query routes to the cross-shard merge"
        );
        let lone_root = cg.doc_root(6);
        sharded.find_descendants(lone_root, b, &QueryOptions::default());
        let stats = sharded.stats();
        assert_eq!(stats.direct, 1, "lone document answers shard-locally");
        assert_eq!(stats.escaped, 0, "proven routing never escapes");
        assert_eq!(
            stats.per_shard.iter().map(|s| s.metas).sum::<usize>(),
            flix.meta_count()
        );
    }

    #[test]
    fn boundary_hops_prove_distance_bounded_queries_local() {
        let cg = chain(6);
        let (_, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        let sharded = ShardedFlix::new(Arc::clone(&flix), 3);
        for d in 0..7 {
            let start = cg.doc_root(d);
            let meta = flix.meta_of(start);
            let hops = sharded.plan().boundary_hops_out(meta);
            if hops == u32::MAX {
                // Shard-closed: even an unbounded query stays direct.
                let before = sharded.stats().direct;
                let got = sharded.find_descendants(start, b, &QueryOptions::default());
                assert_eq!(
                    got,
                    flix.find_descendants(start, b, &QueryOptions::default())
                );
                assert_eq!(sharded.stats().direct, before + 1);
            } else {
                // A horizon below the boundary budget is proven local...
                if hops > 1 {
                    let opts = QueryOptions::within(hops - 1);
                    let before = sharded.stats().direct;
                    let got = sharded.find_descendants(start, b, &opts);
                    assert_eq!(got, flix.find_descendants(start, b, &opts));
                    assert_eq!(sharded.stats().direct, before + 1, "doc {d}");
                }
                // ...and an uncapped one routes to the fan-out merge.
                let before = sharded.stats().fanout;
                let got = sharded.find_descendants(start, b, &QueryOptions::default());
                assert_eq!(
                    got,
                    flix.find_descendants(start, b, &QueryOptions::default())
                );
                assert_eq!(sharded.stats().fanout, before + 1, "doc {d}");
            }
        }
        assert_eq!(sharded.stats().escaped, 0, "proven attempts never escape");
    }

    #[test]
    fn runtime_escape_fallback_still_matches_the_oracle() {
        let cg = chain(6);
        let (_, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        // Per-document shards: a top-k query that wants more results than
        // the start's own document holds runs optimistically, pops the
        // foreign link target, and exercises the escape fallback.
        let sharded = ShardedFlix::new(Arc::clone(&flix), flix.meta_count());
        let opts = QueryOptions::top_k(10);
        let got = sharded.find_descendants(cg.doc_root(0), b, &opts);
        assert_eq!(got, flix.find_descendants(cg.doc_root(0), b, &opts));
        let stats = sharded.stats();
        assert_eq!(stats.escaped, 1, "the capped chain query escapes");
        assert_eq!(stats.fanout, 0);
    }

    #[test]
    fn per_shard_caches_hit_and_match_oracle() {
        let cg = chain(5);
        let (_, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        let sharded = ShardedFlix::new(Arc::clone(&flix), 3).with_caches(8);
        let start = cg.doc_root(0);
        let opts = QueryOptions::top_k(10);
        let (first, timed_out) = sharded.find_descendants_deadline(start, b, &opts);
        assert!(!timed_out);
        assert_eq!(*first, flix.find_descendants(start, b, &opts));
        // Same key again: a hit, served from the owning shard's cache.
        let (again, _) = sharded.find_descendants_deadline(start, b, &opts);
        assert_eq!(*again, *first);
        let cs = sharded.cache_stats().unwrap();
        assert_eq!((cs.hits, cs.misses), (1, 1));
        // A smaller k is also a hit (uncapped storage, clipped serve).
        let (five, _) = sharded.find_descendants_deadline(start, b, &QueryOptions::top_k(5));
        assert_eq!(
            *five,
            flix.find_descendants(start, b, &QueryOptions::top_k(5))
        );
        assert_eq!(sharded.cache_stats().unwrap().hits, 2);
    }

    #[test]
    fn timed_out_prefix_is_oracle_prefix_and_not_cached() {
        use flixobs::Deadline;
        let cg = chain(5);
        let (_, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        let sharded = ShardedFlix::new(Arc::clone(&flix), 3).with_caches(8);
        let start = cg.doc_root(0);
        let opts = QueryOptions::default().with_deadline(Deadline::within_micros(0));
        let (partial, timed_out) = sharded.find_descendants_deadline(start, b, &opts);
        assert!(timed_out);
        let full = flix.find_descendants(start, b, &QueryOptions::default());
        assert_eq!(*partial, full[..partial.len()], "prefix of the oracle");
        let cs = sharded.cache_stats().unwrap();
        assert_eq!(cs.hits + cs.misses, 1);
        // The partial answer must not have been cached: re-query misses.
        let generous = QueryOptions::default();
        let (complete, timed_out) = sharded.find_descendants_deadline(start, b, &generous);
        assert!(!timed_out);
        assert_eq!(*complete, full);
        assert_eq!(sharded.cache_stats().unwrap().misses, 2);
    }

    #[test]
    fn publish_metrics_exports_per_shard_counters() {
        let cg = chain(4);
        let (_, b) = tags(&cg);
        let flix = Arc::new(Flix::build(cg.clone(), FlixConfig::Naive));
        let sharded = ShardedFlix::new(Arc::clone(&flix), 2);
        let registry = MetricsRegistry::new();
        sharded.publish_metrics(&registry, &[("backend", "test")]);
        sharded.find_descendants(cg.doc_root(0), b, &QueryOptions::top_k(1));
        let s = sharded.stats();
        let total: u64 = (0..sharded.shard_count())
            .map(|i| {
                let shard = i.to_string();
                registry
                    .counter_with(
                        "flix_shard_direct_total",
                        &[("backend", "test"), ("shard", &shard)],
                    )
                    .get()
                    + registry
                        .counter_with(
                            "flix_shard_fanout_total",
                            &[("backend", "test"), ("shard", &shard)],
                        )
                        .get()
                    + registry
                        .counter_with(
                            "flix_shard_escaped_total",
                            &[("backend", "test"), ("shard", &shard)],
                        )
                        .get()
            })
            .sum();
        assert_eq!(total, s.direct + s.fanout + s.escaped);
        assert_eq!(total, 1);
    }
}
