//! Path-expression queries with semantic and structural vagueness — the
//! query layer the paper's §1.1 motivates and Figure 2 places above the
//! Path Expression Evaluator ("Query Processor of an XML Search Engine").
//!
//! The supported language is the XXL-flavoured fragment the paper uses:
//!
//! ```text
//! //~movie[title ~ "Matrix: Revolutions"]//~actor//~movie
//! /movie[title = "Matrix: Revolutions"]/actor/movie
//! //inproceedings//cite//*
//! ```
//!
//! * `/name` — child step (links count as child edges, §1.1),
//! * `//name` — descendants-or-self step with distance-decayed relevance,
//! * `~name` — the tag matches ontology-similar tags too ([`TagSimilarity`]),
//! * `*` — any tag,
//! * `[child = "text"]` — equality predicate on a child's text,
//! * `[child ~ "text"]` — vague text predicate (normalised token overlap).
//!
//! Every result carries a relevance score: the product over steps of
//! `tag_similarity × decay^(distance-1)` and over predicates of their text
//! similarity — the scoring model sketched in §1.1 (a `movie/cast/actor`
//! match scoring higher than `movie/follows/movie/cast/actor`).

use crate::framework::Flix;
use crate::pee::QueryOptions;
use crate::vague::TagSimilarity;
use graphcore::NodeId;
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAxis {
    /// `/` — direct children (including link targets).
    Child,
    /// `//` — descendants (strict), relevance decaying with distance.
    Descendants,
}

/// Tag test of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// Exact tag name.
    Exact(String),
    /// `~name`: tag name relaxed through the similarity table.
    Similar(String),
    /// `*`: any tag.
    Any,
}

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `=`: case-insensitive equality.
    Equals,
    /// `~`: vague match (token overlap).
    Similar,
}

/// A `[child op "value"]` predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Child tag whose text is tested.
    pub child: String,
    /// Comparison operator.
    pub op: PredOp,
    /// Comparison value.
    pub value: String,
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis.
    pub axis: StepAxis,
    /// The tag test.
    pub name: NameTest,
    /// Optional predicate.
    pub predicate: Option<Predicate>,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    /// The steps, outermost first.
    pub steps: Vec<Step>,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the failure.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for QueryParseError {}

impl PathQuery {
    /// Parses a path expression.
    pub fn parse(input: &str) -> Result<Self, QueryParseError> {
        let b = input.as_bytes();
        let mut pos = 0usize;
        let mut steps = Vec::new();
        let err = |pos: usize, m: &str| QueryParseError {
            position: pos,
            message: m.to_string(),
        };
        let skip_ws = |b: &[u8], pos: &mut usize| {
            while *pos < b.len() && b[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
        };
        skip_ws(b, &mut pos);
        while pos < b.len() {
            // axis
            let axis = if b[pos..].starts_with(b"//") {
                pos += 2;
                StepAxis::Descendants
            } else if b[pos] == b'/' {
                pos += 1;
                StepAxis::Child
            } else {
                return Err(err(pos, "expected '/' or '//'"));
            };
            skip_ws(b, &mut pos);
            // name test
            let similar = pos < b.len() && b[pos] == b'~';
            if similar {
                pos += 1;
            }
            let name = if pos < b.len() && b[pos] == b'*' {
                pos += 1;
                if similar {
                    return Err(err(pos, "'~*' is not a valid name test"));
                }
                NameTest::Any
            } else {
                let start = pos;
                while pos < b.len()
                    && (b[pos].is_ascii_alphanumeric()
                        || matches!(b[pos], b'-' | b'_' | b'.' | b':'))
                {
                    pos += 1;
                }
                if pos == start {
                    return Err(err(pos, "expected a tag name or '*'"));
                }
                let n = input[start..pos].to_string();
                if similar {
                    NameTest::Similar(n)
                } else {
                    NameTest::Exact(n)
                }
            };
            skip_ws(b, &mut pos);
            // optional predicate
            let predicate = if pos < b.len() && b[pos] == b'[' {
                pos += 1;
                skip_ws(b, &mut pos);
                let start = pos;
                while pos < b.len()
                    && (b[pos].is_ascii_alphanumeric()
                        || matches!(b[pos], b'-' | b'_' | b'.' | b':'))
                {
                    pos += 1;
                }
                if pos == start {
                    return Err(err(pos, "expected a child tag in predicate"));
                }
                let child = input[start..pos].to_string();
                skip_ws(b, &mut pos);
                let op = match b.get(pos) {
                    Some(b'=') => {
                        pos += 1;
                        PredOp::Equals
                    }
                    Some(b'~') => {
                        pos += 1;
                        PredOp::Similar
                    }
                    _ => return Err(err(pos, "expected '=' or '~' in predicate")),
                };
                skip_ws(b, &mut pos);
                if b.get(pos) != Some(&b'"') {
                    return Err(err(pos, "expected a quoted value"));
                }
                pos += 1;
                let vstart = pos;
                while pos < b.len() && b[pos] != b'"' {
                    pos += 1;
                }
                if pos >= b.len() {
                    return Err(err(pos, "unterminated string"));
                }
                let value = input[vstart..pos].to_string();
                pos += 1;
                skip_ws(b, &mut pos);
                if b.get(pos) != Some(&b']') {
                    return Err(err(pos, "expected ']'"));
                }
                pos += 1;
                Some(Predicate { child, op, value })
            } else {
                None
            };
            steps.push(Step {
                axis,
                name,
                predicate,
            });
            skip_ws(b, &mut pos);
        }
        if steps.is_empty() {
            return Err(err(0, "empty path expression"));
        }
        Ok(Self { steps })
    }
}

/// A scored query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBinding {
    /// The bound element.
    pub node: NodeId,
    /// Relevance in `(0, 1]`.
    pub score: f64,
}

/// Evaluates [`PathQuery`]s over a framework with vague semantics.
pub struct QueryEngine<'f> {
    flix: &'f Flix,
    /// Ontology-derived tag similarity for `~name` tests.
    pub sims: TagSimilarity,
    /// Per-hop relevance decay for `//` steps.
    pub distance_decay: f64,
    /// Results below this score are dropped.
    pub min_score: f64,
}

impl<'f> QueryEngine<'f> {
    /// Creates an engine with the given vagueness parameters.
    pub fn new(flix: &'f Flix, sims: TagSimilarity, distance_decay: f64, min_score: f64) -> Self {
        assert!(distance_decay > 0.0 && distance_decay <= 1.0);
        Self {
            flix,
            sims,
            distance_decay,
            min_score,
        }
    }

    /// An engine with exact semantics (no similarity, no decay below 1).
    pub fn strict(flix: &'f Flix) -> Self {
        Self::new(flix, TagSimilarity::new(), 1.0, 0.0)
    }

    /// The tags (with similarity scores) a name test admits.
    fn admitted_tags(&self, name: &NameTest) -> Vec<(u32, f64)> {
        let tags = &self.flix.collection().collection.tags;
        match name {
            NameTest::Exact(n) => tags.get(n).map(|t| (t, 1.0)).into_iter().collect(),
            NameTest::Similar(n) => self
                .sims
                .expansions(n)
                .into_iter()
                .filter_map(|(data, sim)| tags.get(&data).map(|t| (t, sim)))
                .collect(),
            NameTest::Any => (0..tags.len() as u32).map(|t| (t, 1.0)).collect(),
        }
    }

    /// Text similarity for vague predicates: 1.0 on case-insensitive
    /// equality, otherwise the Jaccard overlap of lower-cased token sets.
    pub fn text_similarity(a: &str, b: &str) -> f64 {
        let na = a.trim().to_lowercase();
        let nb = b.trim().to_lowercase();
        if na == nb {
            return 1.0;
        }
        let tokens = |s: &'_ str| -> std::collections::HashSet<String> {
            s.split(|c: char| !c.is_alphanumeric())
                .filter(|t| !t.is_empty())
                .map(str::to_string)
                .collect()
        };
        let ta = tokens(&na);
        let tb = tokens(&nb);
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        let inter = ta.intersection(&tb).count() as f64;
        let union = ta.union(&tb).count() as f64;
        inter / union
    }

    fn predicate_score(&self, node: NodeId, pred: &Predicate) -> f64 {
        let cg = self.flix.collection();
        let Some(child_tag) = cg.collection.tags.get(&pred.child) else {
            return 0.0;
        };
        let mut best: f64 = 0.0;
        for &c in cg.graph.successors(node) {
            if cg.tag_of(c) != child_tag {
                continue;
            }
            let text = &cg.element(c).text;
            let s = match pred.op {
                PredOp::Equals => {
                    if text.trim().eq_ignore_ascii_case(pred.value.trim()) {
                        1.0
                    } else {
                        0.0
                    }
                }
                PredOp::Similar => Self::text_similarity(text, &pred.value),
            };
            best = best.max(s);
        }
        best
    }

    /// Evaluates `q`, returning bindings of the final step sorted by
    /// descending score (ties by node id).
    pub fn evaluate(&self, q: &PathQuery) -> Vec<QueryBinding> {
        let cg = self.flix.collection();
        // Initial bindings from the first step, anchored at document roots.
        let mut current: HashMap<NodeId, f64> = HashMap::new();
        let first = &q.steps[0];
        for (tag, sim) in self.admitted_tags(&first.name) {
            match first.axis {
                StepAxis::Child => {
                    // `/name`: document roots with this tag
                    for d in 0..cg.collection.doc_count() as u32 {
                        let r = cg.doc_root(d);
                        if cg.tag_of(r) == tag {
                            merge(&mut current, r, sim);
                        }
                    }
                }
                StepAxis::Descendants => {
                    // `//name`: any element with this tag
                    for &node in cg.nodes_with_tag(tag) {
                        merge(&mut current, node, sim);
                    }
                }
            }
        }
        apply_predicate(self, &mut current, first.predicate.as_ref());

        for step in &q.steps[1..] {
            let admitted = self.admitted_tags(&step.name);
            let mut next: HashMap<NodeId, f64> = HashMap::new();
            for (&node, &score) in &current {
                if score < self.min_score {
                    continue;
                }
                match step.axis {
                    StepAxis::Child => {
                        for &c in cg.graph.successors(node) {
                            for &(tag, sim) in &admitted {
                                if cg.tag_of(c) == tag {
                                    merge(&mut next, c, score * sim);
                                }
                            }
                        }
                    }
                    StepAxis::Descendants => {
                        for &(tag, sim) in &admitted {
                            // bound the exploration by the admissible score
                            let max_distance = if self.distance_decay < 1.0
                                && self.min_score > 0.0
                                && score * sim > 0.0
                            {
                                let d = 1.0
                                    + (self.min_score / (score * sim)).ln()
                                        / self.distance_decay.ln();
                                if d < 1.0 {
                                    continue;
                                }
                                Some(d.floor() as u32)
                            } else {
                                None
                            };
                            let opts = QueryOptions {
                                max_distance,
                                ..QueryOptions::default()
                            };
                            self.flix.for_each_descendant(node, tag, &opts, |r| {
                                let s = score
                                    * sim
                                    * self
                                        .distance_decay
                                        .powi(r.distance.saturating_sub(1) as i32);
                                if s >= self.min_score {
                                    merge(&mut next, r.node, s);
                                }
                                ControlFlow::Continue(())
                            });
                        }
                    }
                }
            }
            apply_predicate(self, &mut next, step.predicate.as_ref());
            current = next;
        }

        let mut out: Vec<QueryBinding> = current
            .into_iter()
            .filter(|&(_, s)| s >= self.min_score)
            .map(|(node, score)| QueryBinding { node, score })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        out
    }
}

fn merge(map: &mut HashMap<NodeId, f64>, node: NodeId, score: f64) {
    let e = map.entry(node).or_insert(0.0);
    if score > *e {
        *e = score;
    }
}

fn apply_predicate(
    engine: &QueryEngine<'_>,
    map: &mut HashMap<NodeId, f64>,
    pred: Option<&Predicate>,
) {
    if let Some(p) = pred {
        map.retain(|&node, score| {
            let s = engine.predicate_score(node, p);
            *score *= s;
            s > 0.0
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlixConfig;
    use std::sync::Arc;
    use xmlgraph::{parse_document, Collection, LinkSpec};

    fn movie_world() -> (Arc<xmlgraph::CollectionGraph>, Flix) {
        let imdb = r#"
            <movie id="m1">
              <title>Matrix: Revolutions</title>
              <cast>
                <actor id="a1">Keanu Reeves
                  <appears-in xlink:href="scifi.xml#sf1"/>
                </actor>
              </cast>
            </movie>"#;
        let scifi = r#"
            <collection>
              <science-fiction id="sf1">
                <title>Matrix 3</title>
              </science-fiction>
              <movie id="m9"><title>Heat</title></movie>
            </collection>"#;
        let mut c = Collection::new();
        let spec = LinkSpec::default();
        for (n, t) in [("imdb.xml", imdb), ("scifi.xml", scifi)] {
            let d = parse_document(n, t, &mut c.tags, &spec).unwrap();
            c.add_document(d).unwrap();
        }
        let cg = Arc::new(c.seal());
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        (cg, flix)
    }

    #[test]
    fn parser_handles_paper_query() {
        let q =
            PathQuery::parse(r#"//~movie[title ~ "Matrix: Revolutions"]//~actor//~movie"#).unwrap();
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.steps[0].axis, StepAxis::Descendants);
        assert_eq!(q.steps[0].name, NameTest::Similar("movie".into()));
        let p = q.steps[0].predicate.as_ref().unwrap();
        assert_eq!(p.child, "title");
        assert_eq!(p.op, PredOp::Similar);
        assert_eq!(p.value, "Matrix: Revolutions");
        assert_eq!(q.steps[1].name, NameTest::Similar("actor".into()));
        assert!(q.steps[1].predicate.is_none());
    }

    #[test]
    fn parser_child_axis_and_star() {
        let q = PathQuery::parse(r#"/movie/cast/*"#).unwrap();
        assert_eq!(q.steps.len(), 3);
        assert!(q.steps.iter().all(|s| s.axis == StepAxis::Child));
        assert_eq!(q.steps[2].name, NameTest::Any);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(PathQuery::parse("").is_err());
        assert!(PathQuery::parse("movie").is_err());
        assert!(PathQuery::parse("//").is_err());
        assert!(PathQuery::parse(r#"//a[b"x"]"#).is_err());
        assert!(PathQuery::parse(r#"//a[b = "x"#).is_err());
        assert!(PathQuery::parse("//~*").is_err());
    }

    #[test]
    fn strict_query_finds_exact_path() {
        let (cg, flix) = movie_world();
        let engine = QueryEngine::strict(&flix);
        let q = PathQuery::parse(r#"/movie/cast/actor"#).unwrap();
        let res = engine.evaluate(&q);
        assert_eq!(res.len(), 1);
        assert!(cg.element(res[0].node).text.contains("Keanu"));
        assert!((res[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strict_paper_query_returns_nothing() {
        // the §1.1 point: the exact query fails on heterogeneous data
        let (_, flix) = movie_world();
        let engine = QueryEngine::strict(&flix);
        let q = PathQuery::parse(r#"/movie[title = "Matrix: Revolutions"]/actor/movie"#).unwrap();
        assert!(engine.evaluate(&q).is_empty());
    }

    #[test]
    fn relaxed_paper_query_finds_scifi() {
        let (cg, flix) = movie_world();
        let mut sims = TagSimilarity::new();
        sims.add("movie", "science-fiction", 0.9);
        let engine = QueryEngine::new(&flix, sims, 0.8, 0.01);
        let q =
            PathQuery::parse(r#"//~movie[title ~ "Matrix: Revolutions"]//actor//~movie"#).unwrap();
        let res = engine.evaluate(&q);
        assert_eq!(res.len(), 1, "{res:?}");
        let tag = cg.collection.tags.name(cg.tag_of(res[0].node));
        assert_eq!(tag, "science-fiction");
        assert!(res[0].score > 0.0 && res[0].score < 1.0);
    }

    #[test]
    fn equality_predicate_filters() {
        let (cg, flix) = movie_world();
        let engine = QueryEngine::strict(&flix);
        let hit = PathQuery::parse(r#"//movie[title = "Heat"]"#).unwrap();
        let res = engine.evaluate(&hit);
        assert_eq!(res.len(), 1);
        assert_eq!(cg.collection.tags.name(cg.tag_of(res[0].node)), "movie");
        let miss = PathQuery::parse(r#"//movie[title = "Cold"]"#).unwrap();
        assert!(engine.evaluate(&miss).is_empty());
    }

    #[test]
    fn text_similarity_behaviour() {
        assert_eq!(QueryEngine::text_similarity("Matrix 3", "matrix 3"), 1.0);
        let s = QueryEngine::text_similarity("Matrix: Revolutions", "Matrix 3");
        assert!(s > 0.0 && s < 1.0);
        assert_eq!(QueryEngine::text_similarity("abc", "xyz"), 0.0);
        assert_eq!(QueryEngine::text_similarity("", "x"), 0.0);
    }

    #[test]
    fn vague_predicate_scores_scale_results() {
        let (_, flix) = movie_world();
        let engine = QueryEngine::new(&flix, TagSimilarity::new(), 0.9, 0.0);
        let q = PathQuery::parse(r#"//science-fiction[title ~ "Matrix: Revolutions"]"#).unwrap();
        let res = engine.evaluate(&q);
        assert_eq!(res.len(), 1);
        assert!(res[0].score > 0.0 && res[0].score < 1.0);
    }

    #[test]
    fn min_score_prunes_deep_matches() {
        let (_, flix) = movie_world();
        let engine = QueryEngine::new(&flix, TagSimilarity::new(), 0.5, 0.6);
        // title two hops below movie scores 0.5 < 0.6 -> pruned
        let q = PathQuery::parse(r#"//movie//title"#).unwrap();
        let res = engine.evaluate(&q);
        // both movies' own titles are direct children (score 1.0); the
        // title reached through the actor link chain scores 0.5^3 < 0.6
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|r| (r.score - 1.0).abs() < 1e-9));
    }
}
