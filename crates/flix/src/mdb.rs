//! The Meta Document Builder (paper §4.1, §4.3).
//!
//! Splits a sealed collection into meta-document node sets according to the
//! chosen configuration, optionally pinning the indexing strategy per meta
//! document (configurations like Unconnected HOPI fix the strategy; Naive
//! leaves it to the selector).

use crate::config::{FlixConfig, StrategyKind};
use graphcore::{is_forest, partition_greedy, NodeId};
use xmlgraph::CollectionGraph;

/// A planned meta document: its global node set (ascending) and, if the
/// configuration dictates one, the strategy to index it with.
#[derive(Debug, Clone)]
pub struct MetaPlan {
    /// Global nodes of the meta document, ascending.
    pub nodes: Vec<NodeId>,
    /// Strategy pinned by the configuration, or `None` for selector choice.
    pub strategy: Option<StrategyKind>,
}

/// Builds the meta-document plan for a configuration.
pub fn build_meta_documents(cg: &CollectionGraph, config: FlixConfig) -> Vec<MetaPlan> {
    match config {
        FlixConfig::Naive => naive(cg),
        FlixConfig::MaximalPpo => maximal_ppo(cg),
        FlixConfig::UnconnectedHopi { partition_size } => {
            unconnected_hopi(cg, partition_size, StrategyKind::Hopi)
        }
        FlixConfig::Hybrid { partition_size } => hybrid(cg, partition_size),
        FlixConfig::Monolithic(kind) => vec![MetaPlan {
            nodes: (0..cg.node_count() as NodeId).collect(),
            strategy: Some(kind),
        }],
    }
}

/// Schedules plan indices for the build worker pool: largest node sets
/// first (ties broken by ascending index). Feeding the pool biggest-first
/// keeps the indexing stage's tail short — a large meta document started
/// last would otherwise run alone while every other worker idles.
pub fn plan_build_order(plans: &[MetaPlan]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(plans[i].nodes.len()), i));
    order
}

fn doc_nodes(cg: &CollectionGraph, d: u32) -> Vec<NodeId> {
    (cg.node_base[d as usize]..cg.node_base[d as usize + 1]).collect()
}

/// One meta document per XML document; strategy left to the selector.
fn naive(cg: &CollectionGraph) -> Vec<MetaPlan> {
    (0..cg.collection.doc_count() as u32)
        .map(|d| MetaPlan {
            nodes: doc_nodes(cg, d),
            strategy: None,
        })
        .collect()
}

/// True if document `d`'s induced element subgraph is a forest (its tree
/// edges plus any intra-document links).
fn doc_is_tree(cg: &CollectionGraph, d: u32) -> bool {
    // Tree edges always form a tree; only intra-document links can break
    // forest shape, and those appear as link edges with both ends in `d`.
    let base = cg.node_base[d as usize];
    let end = cg.node_base[d as usize + 1];
    let has_intra = cg
        .link_edges
        .iter()
        .skip_while(|&&(u, _)| u < base)
        .take_while(|&&(u, _)| u < end)
        .any(|&(_, v)| v >= base && v < end);
    if !has_intra {
        return true;
    }
    let nodes: Vec<NodeId> = (base..end).collect();
    let (sub, _) = cg.graph.induced_subgraph(&nodes);
    is_forest(&sub)
}

/// Groups documents into document-level trees: an inter-document link that
/// points at the root of an internally tree-shaped document can serve as a
/// tree edge of a larger forest, so whole chains of such documents share
/// one PPO-indexed meta document (paper §4.3, Fig. 3).
fn maximal_ppo_groups(cg: &CollectionGraph, docs: &[u32]) -> Vec<Vec<u32>> {
    let in_scope = {
        let mut v = vec![false; cg.collection.doc_count()];
        for &d in docs {
            v[d as usize] = true;
        }
        v
    };
    let tree_doc: Vec<bool> = (0..cg.collection.doc_count() as u32)
        .map(|d| in_scope[d as usize] && doc_is_tree(cg, d))
        .collect();

    // Each doc may acquire at most one tree parent; an edge d1 -> d2 is
    // usable iff both docs are trees and some link from d1 targets d2's
    // root. Greedy forest construction with union-find cycle avoidance.
    let n_docs = cg.collection.doc_count();
    let mut parent_of: Vec<Option<u32>> = vec![None; n_docs];
    let mut uf: Vec<u32> = (0..n_docs as u32).collect();
    fn find(uf: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while uf[r as usize] != r {
            r = uf[r as usize];
        }
        let mut c = x;
        while uf[c as usize] != r {
            let next = uf[c as usize];
            uf[c as usize] = r;
            c = next;
        }
        r
    }
    for &(u, v) in &cg.link_edges {
        let (d1, d2) = (cg.doc_of(u), cg.doc_of(v));
        if d1 == d2 || !tree_doc[d1 as usize] || !tree_doc[d2 as usize] {
            continue;
        }
        if v != cg.doc_root(d2) || parent_of[d2 as usize].is_some() {
            continue;
        }
        let (r1, r2) = (find(&mut uf, d1), find(&mut uf, d2));
        if r1 == r2 {
            continue; // would close a cycle at document level
        }
        parent_of[d2 as usize] = Some(d1);
        uf[r2 as usize] = r1;
    }

    // Components of the doc forest (tree docs only) become groups;
    // non-tree docs are singletons.
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for &d in docs {
        if tree_doc[d as usize] {
            groups.entry(find(&mut uf, d)).or_default().push(d);
        } else {
            groups.insert(u32::MAX - d, vec![d]);
        }
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

fn maximal_ppo(cg: &CollectionGraph) -> Vec<MetaPlan> {
    let all_docs: Vec<u32> = (0..cg.collection.doc_count() as u32).collect();
    maximal_ppo_groups(cg, &all_docs)
        .into_iter()
        .map(|group| MetaPlan {
            nodes: group.iter().flat_map(|&d| doc_nodes(cg, d)).collect(),
            strategy: Some(StrategyKind::Ppo),
        })
        .collect()
}

fn unconnected_hopi(
    cg: &CollectionGraph,
    partition_size: usize,
    kind: StrategyKind,
) -> Vec<MetaPlan> {
    if cg.node_count() == 0 {
        return Vec::new();
    }
    partition_greedy(&cg.graph, partition_size)
        .parts
        .into_iter()
        .map(|nodes| MetaPlan {
            nodes,
            strategy: Some(kind),
        })
        .collect()
}

/// Hybrid (§4.3): tree-shaped documents form Maximal-PPO groups; the
/// remaining (linked) documents are partitioned and HOPI-indexed.
fn hybrid(cg: &CollectionGraph, partition_size: usize) -> Vec<MetaPlan> {
    let mut tree_docs = Vec::new();
    let mut linked_docs = Vec::new();
    for d in 0..cg.collection.doc_count() as u32 {
        if doc_is_tree(cg, d) {
            tree_docs.push(d);
        } else {
            linked_docs.push(d);
        }
    }
    let mut plans: Vec<MetaPlan> = maximal_ppo_groups(cg, &tree_docs)
        .into_iter()
        .map(|group| MetaPlan {
            nodes: group.iter().flat_map(|&d| doc_nodes(cg, d)).collect(),
            strategy: Some(StrategyKind::Ppo),
        })
        .collect();
    // Partition the linked region's induced subgraph.
    let linked_nodes: Vec<NodeId> = linked_docs.iter().flat_map(|&d| doc_nodes(cg, d)).collect();
    if !linked_nodes.is_empty() {
        let (sub, mapping) = cg.graph.induced_subgraph(&linked_nodes);
        for part in partition_greedy(&sub, partition_size).parts {
            plans.push(MetaPlan {
                nodes: part.into_iter().map(|l| mapping[l as usize]).collect(),
                strategy: Some(StrategyKind::Hopi),
            });
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::{Collection, Document, LinkTarget};

    /// Three tree docs chained by root-targeting links, one cyclic doc.
    fn sample() -> CollectionGraph {
        let mut c = Collection::new();
        let t = c.tags.intern("x");
        for i in 0..3 {
            let mut d = Document::new(format!("t{i}.xml"));
            let r = d.add_element(t, None);
            d.add_element(t, Some(r));
            if i < 2 {
                d.add_link(
                    1,
                    LinkTarget {
                        document: Some(format!("t{}.xml", i + 1)),
                        fragment: None,
                    },
                );
            }
            c.add_document(d).unwrap();
        }
        let mut w = Document::new("w.xml");
        let r = w.add_element(t, None);
        let a = w.add_element(t, Some(r));
        let b = w.add_element(t, Some(a));
        w.add_anchor("a", a);
        w.add_anchor("r", r);
        // cyclic intra links
        w.add_link(
            b,
            LinkTarget {
                document: None,
                fragment: Some("r".into()),
            },
        );
        w.add_link(
            b,
            LinkTarget {
                document: None,
                fragment: Some("a".into()),
            },
        );
        c.add_document(w).unwrap();
        c.seal()
    }

    fn plan_covers_all(cg: &CollectionGraph, plans: &[MetaPlan]) {
        let mut all: Vec<NodeId> = plans.iter().flat_map(|p| p.nodes.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..cg.node_count() as NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn naive_one_meta_per_doc() {
        let cg = sample();
        let plans = build_meta_documents(&cg, FlixConfig::Naive);
        assert_eq!(plans.len(), 4);
        plan_covers_all(&cg, &plans);
        assert!(plans.iter().all(|p| p.strategy.is_none()));
    }

    #[test]
    fn maximal_ppo_groups_chained_trees() {
        let cg = sample();
        let plans = build_meta_documents(&cg, FlixConfig::MaximalPpo);
        plan_covers_all(&cg, &plans);
        // t0, t1, t2 merge into one group; w is a singleton
        assert_eq!(plans.len(), 2);
        let big = plans.iter().find(|p| p.nodes.len() == 6).expect("group");
        assert_eq!(big.strategy, Some(StrategyKind::Ppo));
    }

    #[test]
    fn doc_is_tree_detection() {
        let cg = sample();
        assert!(doc_is_tree(&cg, 0));
        assert!(!doc_is_tree(&cg, 3));
    }

    #[test]
    fn unconnected_hopi_respects_cap() {
        let cg = sample();
        let plans = build_meta_documents(&cg, FlixConfig::UnconnectedHopi { partition_size: 4 });
        plan_covers_all(&cg, &plans);
        assert!(plans.iter().all(|p| p.nodes.len() <= 4));
        assert!(plans.iter().all(|p| p.strategy == Some(StrategyKind::Hopi)));
    }

    #[test]
    fn hybrid_splits_regimes() {
        let cg = sample();
        let plans = build_meta_documents(&cg, FlixConfig::Hybrid { partition_size: 10 });
        plan_covers_all(&cg, &plans);
        let ppo_nodes: usize = plans
            .iter()
            .filter(|p| p.strategy == Some(StrategyKind::Ppo))
            .map(|p| p.nodes.len())
            .sum();
        let hopi_nodes: usize = plans
            .iter()
            .filter(|p| p.strategy == Some(StrategyKind::Hopi))
            .map(|p| p.nodes.len())
            .sum();
        assert_eq!(ppo_nodes, 6, "three tree docs");
        assert_eq!(hopi_nodes, 3, "the cyclic doc");
    }

    #[test]
    fn build_order_is_largest_first_with_stable_ties() {
        let plan = |n: usize| MetaPlan {
            nodes: (0..n as NodeId).collect(),
            strategy: None,
        };
        let plans = vec![plan(2), plan(5), plan(2), plan(9)];
        assert_eq!(plan_build_order(&plans), vec![3, 1, 0, 2]);
        assert!(plan_build_order(&[]).is_empty());
    }

    #[test]
    fn monolithic_single_meta() {
        let cg = sample();
        let plans = build_meta_documents(&cg, FlixConfig::Monolithic(StrategyKind::Apex));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].nodes.len(), cg.node_count());
        assert_eq!(plans[0].strategy, Some(StrategyKind::Apex));
    }

    #[test]
    fn cycle_between_documents_broken() {
        // two tree docs linking at each other's roots: the doc-level cycle
        // must not produce one meta doc claiming to be a tree... it *may*
        // group them (extended PPO drops an edge), but the union-find must
        // not loop forever and the plan must cover everything.
        let mut c = Collection::new();
        let t = c.tags.intern("x");
        for i in 0..2 {
            let mut d = Document::new(format!("c{i}.xml"));
            let r = d.add_element(t, None);
            d.add_element(t, Some(r));
            d.add_link(
                1,
                LinkTarget {
                    document: Some(format!("c{}.xml", 1 - i)),
                    fragment: None,
                },
            );
            c.add_document(d).unwrap();
        }
        let cg = c.seal();
        let plans = build_meta_documents(&cg, FlixConfig::MaximalPpo);
        plan_covers_all(&cg, &plans);
        // one of the two link edges is used as tree edge, so both docs are
        // in one group
        assert_eq!(plans.len(), 1);
    }
}
