//! Persistence of built frameworks into a [`pagestore::BlobStore`].
//!
//! The paper's implementation keeps all index structures in database
//! tables; this module plays that role. A framework is stored as one
//! manifest blob (configuration, node→meta maps, runtime link table) plus
//! one blob per meta document (its index image). Loading needs the sealed
//! collection graph the framework was built over — the store holds indexes,
//! not documents, exactly like the paper's setup where the XML data and the
//! index tables live side by side.

use crate::config::FlixConfig;
use crate::framework::Flix;
use crate::meta::MetaDocument;
use crate::report::BuildReport;
use graphcore::NodeId;
use pagestore::BlobStore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use xmlgraph::CollectionGraph;

#[derive(Serialize, Deserialize)]
struct Manifest {
    config: FlixConfig,
    node_count: usize,
    meta_count: usize,
    meta_of: Vec<u32>,
    local_of: Vec<u32>,
    runtime_links: Vec<(NodeId, NodeId)>,
}

/// Saves a built framework under `name`.
pub fn save_flix(flix: &Flix, store: &mut BlobStore, name: &str) -> Result<(), String> {
    let manifest = Manifest {
        config: flix.config(),
        node_count: flix.collection().node_count(),
        meta_count: flix.meta_count(),
        meta_of: (0..flix.collection().node_count())
            .map(|u| flix.meta_of(u as NodeId))
            .collect(),
        local_of: (0..flix.collection().node_count())
            .map(|u| flix.local_of(u as NodeId))
            .collect(),
        runtime_links: flix.runtime_links().to_vec(),
    };
    let bytes = pagestore::to_bytes(&manifest).map_err(|e| e.to_string())?;
    store
        .put(&format!("{name}/manifest"), &bytes)
        .map_err(|e| e.to_string())?;
    for mi in 0..flix.meta_count() as u32 {
        let bytes = pagestore::to_bytes(flix.meta(mi)).map_err(|e| e.to_string())?;
        store
            .put(&format!("{name}/meta-{mi}"), &bytes)
            .map_err(|e| e.to_string())?;
    }
    // The build report lives in its own blob: it carries wall-clock timings
    // that differ between otherwise identical builds, and keeping it out of
    // the manifest keeps persisted index images byte-comparable.
    let bytes = pagestore::to_bytes(flix.build_report()).map_err(|e| e.to_string())?;
    store
        .put(&format!("{name}/report"), &bytes)
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Loads a framework saved under `name`, reattaching it to `graph`.
///
/// # Errors
/// If blobs are missing or corrupt, or `graph` does not match the one the
/// framework was built over (node-count check).
pub fn load_flix(
    store: &BlobStore,
    name: &str,
    graph: Arc<CollectionGraph>,
) -> Result<Flix, String> {
    let bytes = store
        .get(&format!("{name}/manifest"))
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no framework named {name:?} in store"))?;
    let manifest: Manifest = pagestore::from_bytes(&bytes).map_err(|e| e.to_string())?;
    if manifest.node_count != graph.node_count() {
        return Err(format!(
            "collection mismatch: framework built over {} nodes, graph has {}",
            manifest.node_count,
            graph.node_count()
        ));
    }
    let mut metas = Vec::with_capacity(manifest.meta_count);
    for mi in 0..manifest.meta_count {
        let bytes = store
            .get(&format!("{name}/meta-{mi}"))
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("missing blob for meta document {mi}"))?;
        let md: MetaDocument = pagestore::from_bytes(&bytes).map_err(|e| e.to_string())?;
        metas.push(md);
    }
    // Stores written before reports existed simply lack the blob; a zeroed
    // report keeps them loadable.
    let report = match store
        .get(&format!("{name}/report"))
        .map_err(|e| e.to_string())?
    {
        Some(bytes) => pagestore::from_bytes(&bytes).map_err(|e| e.to_string())?,
        None => BuildReport::empty(manifest.config),
    };
    Ok(Flix::from_raw_parts(
        graph,
        manifest.config,
        metas,
        manifest.meta_of,
        manifest.local_of,
        manifest.runtime_links,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pee::QueryOptions;
    use pagestore::{BufferPool, MemDisk};
    use xmlgraph::{Collection, Document, LinkTarget};

    fn sample() -> Arc<CollectionGraph> {
        let mut c = Collection::new();
        let a = c.tags.intern("a");
        let b = c.tags.intern("b");
        let mut d0 = Document::new("d0.xml");
        let r = d0.add_element(a, None);
        let k = d0.add_element(b, Some(r));
        d0.add_link(
            k,
            LinkTarget {
                document: Some("d1.xml".into()),
                fragment: None,
            },
        );
        let mut d1 = Document::new("d1.xml");
        let r1 = d1.add_element(b, None);
        d1.add_element(b, Some(r1));
        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        Arc::new(c.seal())
    }

    fn store() -> BlobStore {
        BlobStore::new(Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64)))
    }

    #[test]
    fn save_load_round_trip_answers_identically() {
        let cg = sample();
        let b = cg.collection.tags.get("b").unwrap();
        for config in [
            FlixConfig::Naive,
            FlixConfig::MaximalPpo,
            FlixConfig::UnconnectedHopi { partition_size: 3 },
            FlixConfig::Monolithic(crate::config::StrategyKind::Apex),
        ] {
            let flix = Flix::build(cg.clone(), config);
            let want = flix.find_descendants(0, b, &QueryOptions::default());
            let mut st = store();
            save_flix(&flix, &mut st, "fw").unwrap();
            let loaded = load_flix(&st, "fw", cg.clone()).unwrap();
            assert_eq!(loaded.config(), config);
            let got = loaded.find_descendants(0, b, &QueryOptions::default());
            assert_eq!(want, got, "config {config}");
        }
    }

    #[test]
    fn build_report_survives_save_load() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let mut st = store();
        save_flix(&flix, &mut st, "fw").unwrap();
        let loaded = load_flix(&st, "fw", cg).unwrap();
        assert_eq!(loaded.build_report(), flix.build_report());
    }

    #[test]
    fn store_without_report_blob_still_loads() {
        let cg = sample();
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let mut st = store();
        save_flix(&flix, &mut st, "fw").unwrap();
        assert!(st.remove("fw/report"), "report blob should exist");
        let loaded = load_flix(&st, "fw", cg).unwrap();
        assert_eq!(
            loaded.build_report(),
            &BuildReport::empty(FlixConfig::Naive)
        );
    }

    #[test]
    fn missing_framework_errors() {
        let st = store();
        assert!(load_flix(&st, "nope", sample()).is_err());
    }

    #[test]
    fn wrong_collection_rejected() {
        let cg = sample();
        let flix = Flix::build(cg, FlixConfig::Naive);
        let mut st = store();
        save_flix(&flix, &mut st, "fw").unwrap();
        // a different (smaller) collection
        let mut c2 = Collection::new();
        let t = c2.tags.intern("x");
        let mut d = Document::new("only.xml");
        d.add_element(t, None);
        c2.add_document(d).unwrap();
        let err = load_flix(&st, "fw", Arc::new(c2.seal())).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }
}
