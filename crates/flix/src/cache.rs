//! Result caching for frequent (sub-)queries — the paper's §7 sketch
//! "caching results of frequent (sub-)queries".
//!
//! [`CachedFlix`] wraps a framework with an LRU cache keyed on the full
//! query (start element, target tag, options). Cached result vectors are
//! shared (`Arc`), so repeated hot queries cost one map lookup and no
//! allocation. The cache is latch-protected and safe to share across the
//! client threads of the paper's multithreaded architecture.

use crate::framework::Flix;
use crate::pee::{QueryOptions, QueryResult};
use graphcore::{Distance, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xmlgraph::TagId;

/// Hashable image of [`QueryOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OptsKey {
    max_distance: Option<Distance>,
    max_results: Option<usize>,
    include_start: bool,
    exact_order: bool,
}

impl From<&QueryOptions> for OptsKey {
    fn from(o: &QueryOptions) -> Self {
        Self {
            max_distance: o.max_distance,
            max_results: o.max_results,
            include_start: o.include_start,
            exact_order: o.exact_order,
        }
    }
}

type Key = (NodeId, TagId, OptsKey);

struct CacheInner {
    map: HashMap<Key, (Arc<Vec<QueryResult>>, u64)>,
    tick: u64,
}

/// A FliX framework with an LRU descendants-query cache.
pub struct CachedFlix {
    flix: Arc<Flix>,
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl CachedFlix {
    /// Wraps `flix` with a cache of at most `capacity` query results.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(flix: Arc<Flix>, capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            flix,
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The wrapped framework.
    pub fn framework(&self) -> &Arc<Flix> {
        &self.flix
    }

    /// Cached `a//B` evaluation.
    pub fn find_descendants(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Arc<Vec<QueryResult>> {
        use std::sync::atomic::Ordering::Relaxed;
        let key: Key = (start, target, OptsKey::from(opts));
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((cached, stamp)) = inner.map.get_mut(&key) {
                *stamp = tick;
                self.hits.fetch_add(1, Relaxed);
                return Arc::clone(cached);
            }
        }
        self.misses.fetch_add(1, Relaxed);
        let fresh = Arc::new(self.flix.find_descendants(start, target, opts));
        let mut inner = self.inner.lock();
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
            }
        }
        let tick = inner.tick;
        inner.map.insert(key, (Arc::clone(&fresh), tick));
        fresh
    }

    /// Drops every cached result (call after a rebuild).
    pub fn invalidate(&self) {
        self.inner.lock().map.clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlixConfig;
    use xmlgraph::{Collection, Document, LinkTarget};

    fn small() -> (Arc<Flix>, TagId) {
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        let mut d0 = Document::new("a.xml");
        let r = d0.add_element(t, None);
        let k = d0.add_element(t, Some(r));
        d0.add_link(
            k,
            LinkTarget {
                document: Some("b.xml".into()),
                fragment: None,
            },
        );
        let mut d1 = Document::new("b.xml");
        d1.add_element(t, None);
        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        let cg = Arc::new(c.seal());
        (Arc::new(Flix::build(cg, FlixConfig::Naive)), t)
    }

    #[test]
    fn repeat_query_hits_cache_with_same_answer() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix.clone(), 8);
        let a = cached.find_descendants(0, t, &QueryOptions::default());
        let b = cached.find_descendants(0, t, &QueryOptions::default());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cached.stats(), (1, 1));
        assert_eq!(*a, flix.find_descendants(0, t, &QueryOptions::default()));
    }

    #[test]
    fn different_options_are_different_entries() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 8);
        cached.find_descendants(0, t, &QueryOptions::default());
        cached.find_descendants(0, t, &QueryOptions::top_k(1));
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats(), (0, 2));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 2);
        cached.find_descendants(0, t, &QueryOptions::default()); // A
        cached.find_descendants(1, t, &QueryOptions::default()); // B
        cached.find_descendants(0, t, &QueryOptions::default()); // touch A
        cached.find_descendants(2, t, &QueryOptions::default()); // evicts B
        assert_eq!(cached.len(), 2);
        let (h0, _) = cached.stats();
        cached.find_descendants(0, t, &QueryOptions::default()); // A still hot
        assert_eq!(cached.stats().0, h0 + 1);
        cached.find_descendants(1, t, &QueryOptions::default()); // B gone: miss
        assert_eq!(cached.stats().1, 4);
    }

    #[test]
    fn invalidate_clears() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 4);
        cached.find_descendants(0, t, &QueryOptions::default());
        assert!(!cached.is_empty());
        cached.invalidate();
        assert!(cached.is_empty());
    }
}
