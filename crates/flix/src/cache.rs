//! Result caching for frequent (sub-)queries — the paper's §7 sketch
//! "caching results of frequent (sub-)queries".
//!
//! [`CachedFlix`] wraps a framework with an LRU cache keyed on the query
//! semantics (start element, target tag, distance bound, ordering flags).
//! `max_results` is deliberately *not* part of the key: evaluation with a
//! result cap returns a prefix of the unrestricted run (results stream in
//! block order), so the cache stores the full result vector once and serves
//! any `k` by slicing. Cached vectors are shared (`Arc`), so repeated hot
//! queries cost one map lookup and at worst one prefix copy.
//!
//! A generation counter guards correctness across rebuilds: [`CachedFlix::
//! attach`] swaps in a new framework and bumps the generation, and every
//! lookup rejects entries from older generations, so a rebuilt (or
//! extended) framework can never serve answers computed over the old one.
//! The cache is latch-protected and safe to share across the client threads
//! of the paper's multithreaded architecture.

use crate::framework::Flix;
use crate::pee::{QueryOptions, QueryResult};
use flixobs::journal::{EventKind, JournalHandle, SHARD_NONE};
use flixobs::{Counter, MetricId, MetricsRegistry};
use graphcore::{Distance, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xmlgraph::TagId;

/// Hashable image of the semantically relevant part of [`QueryOptions`].
/// `max_results` is excluded: it selects a prefix of the same answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OptsKey {
    max_distance: Option<Distance>,
    include_start: bool,
    exact_order: bool,
}

impl From<&QueryOptions> for OptsKey {
    fn from(o: &QueryOptions) -> Self {
        Self {
            max_distance: o.max_distance,
            include_start: o.include_start,
            exact_order: o.exact_order,
        }
    }
}

type Key = (NodeId, TagId, OptsKey);

const SKETCH_ROWS: usize = 4;
/// Counters saturate at 15 (4-bit TinyLFU counters); periodic halving keeps
/// the sketch adaptive to shifting popularity.
const SKETCH_CAP: u8 = 15;

/// A TinyLFU-style frequency sketch: a small count-min sketch with
/// saturating counters and periodic halving, estimating per-key access
/// frequency in constant space. The admission gate compares a cache-miss
/// candidate's estimate against the LRU victim's, so a sweep of one-off
/// queries cannot flush entries that are actually hot.
struct FrequencySketch {
    rows: [Vec<u8>; SKETCH_ROWS],
    mask: usize,
    additions: u64,
    sample_limit: u64,
}

impl FrequencySketch {
    fn new(capacity: usize) -> Self {
        // Width ~4x the cache capacity keeps collision noise low while the
        // whole sketch stays a few cache lines for small capacities.
        let width = (capacity.max(1) * 4).next_power_of_two();
        Self {
            rows: std::array::from_fn(|_| vec![0u8; width]),
            mask: width - 1,
            additions: 0,
            sample_limit: capacity.max(1) as u64 * 16,
        }
    }

    fn slot(&self, key: &Key, row: usize) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        row.hash(&mut h);
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    fn record(&mut self, key: &Key) {
        for row in 0..SKETCH_ROWS {
            let i = self.slot(key, row);
            let c = &mut self.rows[row][i];
            if *c < SKETCH_CAP {
                *c += 1;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_limit {
            self.halve();
        }
    }

    fn estimate(&self, key: &Key) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.rows[row][self.slot(key, row)])
            .min()
            .unwrap_or(0)
    }

    fn halve(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.additions = 0;
    }
}

struct Entry {
    /// Full (uncapped) result vector for the keyed query.
    results: Arc<Vec<QueryResult>>,
    /// Framework generation the results were computed under.
    generation: u64,
    /// LRU stamp.
    stamp: u64,
}

struct CacheInner {
    map: HashMap<Key, Entry>,
    tick: u64,
    sketch: FrequencySketch,
}

/// A FliX framework with an LRU descendants-query cache that survives
/// framework rebuilds (see [`CachedFlix::attach`]).
pub struct CachedFlix {
    flix: Mutex<Arc<Flix>>,
    generation: AtomicU64,
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    admitted: Counter,
    rejected: Counter,
}

/// Point-in-time cache counters: how lookups resolved and why entries
/// left the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate the query.
    pub misses: u64,
    /// Entries displaced by LRU pressure at capacity.
    pub evictions: u64,
    /// Entries dropped on lookup because they were computed under an
    /// older framework generation (see [`CachedFlix::attach`]).
    pub invalidations: u64,
    /// At-capacity insertions the TinyLFU gate admitted (displacing the
    /// LRU victim). Free-slot insertions need no admission decision and
    /// count in neither bucket.
    pub admitted: u64,
    /// At-capacity insertions the TinyLFU gate rejected because the LRU
    /// victim was estimated more frequent than the candidate.
    pub rejected: u64,
}

/// Serves `opts.max_results` from the full cached vector: a capped run
/// returns exactly the first `k` results of the uncapped one. Shared with
/// the sharded serving path ([`crate::shard`]), which clips per-shard
/// cache entries the same way.
pub(crate) fn clip(
    full: Arc<Vec<QueryResult>>,
    max_results: Option<usize>,
) -> Arc<Vec<QueryResult>> {
    match max_results {
        Some(k) if k < full.len() => Arc::new(full[..k].to_vec()),
        _ => full,
    }
}

impl CachedFlix {
    /// Wraps `flix` with a cache of at most `capacity` query results.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(flix: Arc<Flix>, capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            flix: Mutex::new(flix),
            generation: AtomicU64::new(0),
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                sketch: FrequencySketch::new(capacity),
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            invalidations: Counter::new(),
            admitted: Counter::new(),
            rejected: Counter::new(),
        }
    }

    /// The currently attached framework.
    pub fn framework(&self) -> Arc<Flix> {
        Arc::clone(&self.flix.lock())
    }

    /// The cache's entry capacity (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Swaps in a rebuilt (or extended) framework. All entries cached for
    /// the previous framework become unservable immediately: the generation
    /// bump outlives them, and lookups drop stale-generation entries.
    pub fn attach(&self, flix: Arc<Flix>) {
        // Order matters: swap the framework first, then bump. A racing
        // query can then at worst insert results from the *old* framework
        // under the *old* generation — already unservable — never results
        // from the old framework under the new generation.
        *self.flix.lock() = flix;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current framework generation (bumped by [`Self::attach`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Cached `a//B` evaluation. Any deadline in `opts` is stripped: this
    /// entry point always returns (and caches) the complete answer.
    pub fn find_descendants(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Arc<Vec<QueryResult>> {
        let full_opts = QueryOptions {
            deadline: None,
            ..*opts
        };
        self.find_descendants_deadline(start, target, &full_opts).0
    }

    /// Deadline-aware cached `a//B` evaluation for the serving path.
    ///
    /// A hit serves the complete cached answer (second element `false`). A
    /// miss evaluates under the deadline in `opts`; if the budget expires
    /// the partial prefix is returned with `true` and is *not* cached —
    /// partial answers must never be served as complete ones later.
    pub fn find_descendants_deadline(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> (Arc<Vec<QueryResult>>, bool) {
        self.find_descendants_deadline_journaled(start, target, opts, None)
    }

    /// [`Self::find_descendants_deadline`] with flight-recorder events:
    /// the cache verdict (`cache_hit`/`cache_miss` under the
    /// [`SHARD_NONE`] sentinel), TinyLFU admission outcome, evaluator
    /// spans, and deadline expiry are journaled under the handle's
    /// request. The journal is write-only — results stay byte-identical
    /// to the unjournaled call.
    pub fn find_descendants_deadline_journaled(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        journal: Option<&JournalHandle<'_>>,
    ) -> (Arc<Vec<QueryResult>>, bool) {
        let generation = match self.lookup_for(start, target, opts) {
            Ok(hit) => {
                if let Some(j) = journal {
                    j.event(EventKind::CacheHit { shard: SHARD_NONE });
                }
                return (hit, false);
            }
            Err(generation) => generation,
        };
        if let Some(j) = journal {
            j.event(EventKind::CacheMiss { shard: SHARD_NONE });
        }
        let flix = self.framework();
        // Evaluate uncapped so one entry serves every `max_results`.
        let full_opts = QueryOptions {
            max_results: None,
            ..*opts
        };
        if let Some(j) = journal {
            j.event(EventKind::EvalStart { shard: SHARD_NONE });
        }
        let outcome = flix.find_descendants_outcome_journaled(start, target, &full_opts, journal);
        if let Some(j) = journal {
            j.event(EventKind::EvalEnd {
                results: outcome.results.len() as u64,
            });
        }
        let fresh = Arc::new(outcome.results);
        if outcome.timed_out {
            return (clip(fresh, opts.max_results), true);
        }
        self.insert_full(start, target, opts, generation, Arc::clone(&fresh), journal);
        (clip(fresh, opts.max_results), false)
    }

    /// The lookup half of [`Self::find_descendants_deadline`]: a hit
    /// returns the clipped cached answer, a miss returns the generation
    /// the caller must pass back to [`Self::insert_full`] so that a
    /// racing [`Self::attach`] can never tag old-framework results with
    /// the new generation. Counts hits/misses/invalidations.
    ///
    /// Split out so [`crate::shard::ShardedFlix`] can drive per-shard
    /// caches while evaluating through its own local-attempt/fan-out
    /// path instead of the attached framework.
    pub(crate) fn lookup_for(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
    ) -> Result<Arc<Vec<QueryResult>>, u64> {
        // Read the generation before the framework: if an `attach` lands in
        // between, the fresh results are tagged with the older generation
        // and correctly discarded on the next lookup.
        let generation = self.generation.load(Ordering::Acquire);
        let key: Key = (start, target, OptsKey::from(opts));
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            // Every lookup feeds the admission sketch, hits included: the
            // gate needs to know which keys are actually popular.
            inner.sketch.record(&key);
            match inner.map.get_mut(&key) {
                Some(entry) if entry.generation == generation => {
                    entry.stamp = tick;
                    self.hits.inc();
                    return Ok(clip(Arc::clone(&entry.results), opts.max_results));
                }
                Some(_) => {
                    // Computed under an older framework: never serve it.
                    inner.map.remove(&key);
                    self.invalidations.inc();
                }
                None => {}
            }
        }
        self.misses.inc();
        Err(generation)
    }

    /// The insert half of [`Self::find_descendants_deadline`]: stores the
    /// *uncapped* result vector for the keyed query under `generation`
    /// (as returned by the preceding [`Self::lookup_for`] miss), subject
    /// to the TinyLFU admission gate at capacity. Counts
    /// evictions/admitted/rejected (journaling the same outcomes when a
    /// handle is given). Callers must never insert partial (timed-out)
    /// answers.
    pub(crate) fn insert_full(
        &self,
        start: NodeId,
        target: TagId,
        opts: &QueryOptions,
        generation: u64,
        fresh: Arc<Vec<QueryResult>>,
        journal: Option<&JournalHandle<'_>>,
    ) {
        let key: Key = (start, target, OptsKey::from(opts));
        let mut inner = self.inner.lock();
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(k, _)| *k)
            {
                // TinyLFU admission (ties go to the newcomer, so a cold
                // cache still fills and recency breaks frequency ties).
                if inner.sketch.estimate(&key) >= inner.sketch.estimate(&victim) {
                    inner.map.remove(&victim);
                    self.evictions.inc();
                    self.admitted.inc();
                    if let Some(j) = journal {
                        j.event(EventKind::CacheEvict);
                        j.event(EventKind::CacheAdmit);
                    }
                } else {
                    self.rejected.inc();
                    if let Some(j) = journal {
                        j.event(EventKind::CacheReject);
                    }
                    return;
                }
            }
        }
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                results: Arc::clone(&fresh),
                generation,
                stamp: tick,
            },
        );
    }

    /// Drops every cached result immediately (entries from superseded
    /// frameworks are also dropped lazily, on lookup).
    pub fn invalidate(&self) {
        self.inner.lock().map.clear();
    }

    /// `(hits, misses)` counters (kept for callers that predate
    /// [`Self::cache_stats`]).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// All cache counters, including why entries left the cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            admitted: self.admitted.get(),
            rejected: self.rejected.get(),
        }
    }

    /// Binds the cache's live counters into `registry` as
    /// `flix_cache_{hits,misses,evictions,invalidations,admitted,rejected}_total`, tagged
    /// with the given labels. The counters keep accumulating in place —
    /// later snapshots see later values without re-binding.
    pub fn publish_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        for (name, help, counter) in [
            (
                "flix_cache_hits_total",
                "Query-cache lookups served from a stored result.",
                &self.hits,
            ),
            (
                "flix_cache_misses_total",
                "Query-cache lookups that had to evaluate the query.",
                &self.misses,
            ),
            (
                "flix_cache_evictions_total",
                "Cache entries displaced by LRU pressure at capacity.",
                &self.evictions,
            ),
            (
                "flix_cache_invalidations_total",
                "Cache entries dropped on lookup for being computed under an \
                 older framework generation.",
                &self.invalidations,
            ),
            (
                "flix_cache_admitted_total",
                "At-capacity insertions the TinyLFU gate admitted.",
                &self.admitted,
            ),
            (
                "flix_cache_rejected_total",
                "At-capacity insertions the TinyLFU gate rejected in favour \
                 of the incumbent victim.",
                &self.rejected,
            ),
        ] {
            registry.describe(name, help);
            registry.bind_counter(MetricId::with_labels(name, labels), counter);
        }
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BuildOptions, FlixConfig};
    use xmlgraph::{Collection, CollectionGraph, Document, LinkTarget};

    fn small_graph() -> Arc<CollectionGraph> {
        let mut c = Collection::new();
        let t = c.tags.intern("t");
        let mut d0 = Document::new("a.xml");
        let r = d0.add_element(t, None);
        let k = d0.add_element(t, Some(r));
        d0.add_link(
            k,
            LinkTarget {
                document: Some("b.xml".into()),
                fragment: None,
            },
        );
        let mut d1 = Document::new("b.xml");
        d1.add_element(t, None);
        c.add_document(d0).unwrap();
        c.add_document(d1).unwrap();
        Arc::new(c.seal())
    }

    fn small() -> (Arc<Flix>, TagId) {
        let cg = small_graph();
        let t = cg.collection.tags.get("t").unwrap();
        (Arc::new(Flix::build(cg, FlixConfig::Naive)), t)
    }

    #[test]
    fn repeat_query_hits_cache_with_same_answer() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix.clone(), 8);
        let a = cached.find_descendants(0, t, &QueryOptions::default());
        let b = cached.find_descendants(0, t, &QueryOptions::default());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cached.stats(), (1, 1));
        assert_eq!(*a, flix.find_descendants(0, t, &QueryOptions::default()));
    }

    #[test]
    fn different_options_are_different_entries() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 8);
        cached.find_descendants(0, t, &QueryOptions::default());
        cached.find_descendants(0, t, &QueryOptions::within(1));
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats(), (0, 2));
    }

    #[test]
    fn max_results_shares_one_entry() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix.clone(), 8);
        let ten = cached.find_descendants(0, t, &QueryOptions::top_k(10));
        // A smaller k on the same query must be a HIT, served by slicing.
        let five = cached.find_descendants(0, t, &QueryOptions::top_k(5));
        assert_eq!(cached.len(), 1, "one entry serves every k");
        assert_eq!(cached.stats(), (1, 1));
        assert_eq!(
            *ten,
            flix.find_descendants(0, t, &QueryOptions::top_k(10)),
            "cached k=10 answers match the uncached evaluation"
        );
        assert_eq!(
            *five,
            flix.find_descendants(0, t, &QueryOptions::top_k(5)),
            "sliced k=5 answers match the uncached evaluation"
        );
        // And the unrestricted query is also served from the same entry.
        let all = cached.find_descendants(0, t, &QueryOptions::default());
        assert_eq!(cached.stats(), (2, 1));
        assert_eq!(*all, flix.find_descendants(0, t, &QueryOptions::default()));
    }

    #[test]
    fn attach_invalidates_stale_answers() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 8);
        let before = cached.find_descendants(0, t, &QueryOptions::default());
        assert_eq!(before.len(), 2, "own child plus the linked root");

        // Rebuild over a grown collection: same query, more answers.
        let grown = {
            let cg = cached.framework().collection_arc();
            let tag = cg.collection.tags.get("t").unwrap();
            let mut d = Document::new("c.xml");
            d.add_element(tag, None);
            let mut linked = Document::new("b2.xml");
            let r = linked.add_element(tag, None);
            linked.add_element(tag, Some(r));
            Arc::new(cg.extend(vec![d, linked]).unwrap())
        };
        let rebuilt = Arc::new(Flix::build_with(
            grown,
            FlixConfig::Naive,
            &BuildOptions::default(),
        ));
        let gen_before = cached.generation();
        cached.attach(rebuilt.clone());
        assert_eq!(cached.generation(), gen_before + 1);

        // The old entry must NOT be served: the lookup sees the generation
        // mismatch, drops it, and re-evaluates on the new framework.
        let after = cached.find_descendants(0, t, &QueryOptions::default());
        assert_eq!(
            *after,
            rebuilt.find_descendants(0, t, &QueryOptions::default())
        );
        assert_eq!(cached.stats(), (0, 2), "post-attach lookup is a miss");
        // The stale entry is counted as a generation-mismatch invalidation,
        // distinct from LRU evictions.
        let s = cached.cache_stats();
        assert_eq!(s.invalidations, 1, "stale entry dropped on lookup");
        assert_eq!(s.evictions, 0, "no capacity pressure in this test");
        // ... and the re-cached entry serves hits again.
        cached.find_descendants(0, t, &QueryOptions::default());
        assert_eq!(cached.stats(), (1, 2));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 2);
        cached.find_descendants(0, t, &QueryOptions::default()); // A
        cached.find_descendants(1, t, &QueryOptions::default()); // B
        cached.find_descendants(0, t, &QueryOptions::default()); // touch A
        cached.find_descendants(2, t, &QueryOptions::default()); // evicts B
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.cache_stats().evictions, 1, "B displaced by LRU");
        let (h0, _) = cached.stats();
        cached.find_descendants(0, t, &QueryOptions::default()); // A still hot
        assert_eq!(cached.stats().0, h0 + 1);
        cached.find_descendants(1, t, &QueryOptions::default()); // B gone: miss
        assert_eq!(cached.stats().1, 4);
        // Re-inserting B at capacity displaces another victim.
        let s = cached.cache_stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.invalidations, 0, "no generation changes in this test");
    }

    #[test]
    fn publish_metrics_exports_live_counters() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 2);
        let registry = MetricsRegistry::new();
        cached.publish_metrics(&registry, &[("cache", "query")]);
        cached.find_descendants(0, t, &QueryOptions::default());
        cached.find_descendants(0, t, &QueryOptions::default());
        // Counters bound before the traffic still see it: they share cells.
        assert_eq!(
            registry
                .counter_with("flix_cache_hits_total", &[("cache", "query")])
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter_with("flix_cache_misses_total", &[("cache", "query")])
                .get(),
            1
        );
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains("flix_cache_hits_total{cache=\"query\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn admission_gate_protects_hot_entries_from_one_off_scans() {
        let cg = {
            // A corpus with many elements so a scan has many distinct keys.
            let mut c = Collection::new();
            let t = c.tags.intern("t");
            let mut d = Document::new("big.xml");
            let r = d.add_element(t, None);
            for _ in 0..63 {
                d.add_element(t, Some(r));
            }
            c.add_document(d).unwrap();
            Arc::new(c.seal())
        };
        let t = cg.collection.tags.get("t").unwrap();
        let flix = Arc::new(Flix::build(cg, FlixConfig::Naive));
        let cached = CachedFlix::new(flix, 2);
        // Heat up two keys well past any scan key's frequency.
        for _ in 0..8 {
            cached.find_descendants(0, t, &QueryOptions::default());
            cached.find_descendants(1, t, &QueryOptions::default());
        }
        let hits_before = cached.cache_stats().hits;
        // One-off scan over fresh keys: each is seen once, the gate must
        // keep them out of the full cache.
        for start in 2..40 {
            cached.find_descendants(start, t, &QueryOptions::default());
        }
        let s = cached.cache_stats();
        assert!(s.rejected > 0, "scan keys must be rejected: {s:?}");
        assert_eq!(s.evictions, 0, "hot entries survive the scan: {s:?}");
        // The hot keys still hit.
        cached.find_descendants(0, t, &QueryOptions::default());
        cached.find_descendants(1, t, &QueryOptions::default());
        assert_eq!(cached.cache_stats().hits, hits_before + 2);
    }

    #[test]
    fn timed_out_answers_are_returned_but_never_cached() {
        use flixobs::Deadline;
        let (flix, t) = small();
        let cached = CachedFlix::new(flix.clone(), 8);
        let opts = QueryOptions::default().with_deadline(Deadline::within_micros(0));
        let (partial, timed_out) = cached.find_descendants_deadline(0, t, &opts);
        assert!(timed_out);
        assert!(partial.is_empty(), "expired before the first pop");
        assert!(cached.is_empty(), "partial answers must not be cached");
        assert_eq!(cached.stats(), (0, 1));
        // The next lookup re-evaluates and, completing in time, caches.
        let generous = QueryOptions::default().with_deadline(Deadline::within_micros(60_000_000));
        let (full, timed_out) = cached.find_descendants_deadline(0, t, &generous);
        assert!(!timed_out);
        assert_eq!(*full, flix.find_descendants(0, t, &QueryOptions::default()));
        assert_eq!(cached.len(), 1);
        // A deadline hit serves the complete cached answer.
        let (again, timed_out) = cached.find_descendants_deadline(0, t, &generous);
        assert!(!timed_out);
        assert!(Arc::ptr_eq(&full, &again));
    }

    #[test]
    fn plain_lookup_strips_deadlines() {
        use flixobs::Deadline;
        let (flix, t) = small();
        let cached = CachedFlix::new(flix.clone(), 8);
        let opts = QueryOptions::default().with_deadline(Deadline::within_micros(0));
        // find_descendants always answers in full, deadline or not.
        let res = cached.find_descendants(0, t, &opts);
        assert_eq!(*res, flix.find_descendants(0, t, &QueryOptions::default()));
        assert_eq!(cached.len(), 1);
    }

    #[test]
    fn sketch_estimates_track_recorded_frequency() {
        let mut sketch = FrequencySketch::new(8);
        let hot: Key = (0, 1, OptsKey::from(&QueryOptions::default()));
        let cold: Key = (9, 1, OptsKey::from(&QueryOptions::default()));
        for _ in 0..10 {
            sketch.record(&hot);
        }
        sketch.record(&cold);
        assert!(sketch.estimate(&hot) > sketch.estimate(&cold));
        // Saturation: counters cap at SKETCH_CAP.
        for _ in 0..100 {
            sketch.record(&hot);
        }
        assert!(sketch.estimate(&hot) <= SKETCH_CAP);
        // Halving decays, preserving the ordering.
        sketch.halve();
        assert!(sketch.estimate(&hot) >= sketch.estimate(&cold));
    }

    #[test]
    fn invalidate_clears() {
        let (flix, t) = small();
        let cached = CachedFlix::new(flix, 4);
        cached.find_descendants(0, t, &QueryOptions::default());
        assert!(!cached.is_empty());
        cached.invalidate();
        assert!(cached.is_empty());
    }
}
