//! Framework configurations (paper §4.3) and the indexing-strategy
//! selector (§4.1).

use graphcore::{spanning_forest, Digraph};
use serde::{Deserialize, Serialize};

/// Which path-indexing strategy backs a meta document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Pre/postorder index (extended with runtime links where needed).
    Ppo,
    /// HOPI 2-hop connection index.
    Hopi,
    /// APEX structural summary.
    Apex,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::Ppo => write!(f, "PPO"),
            StrategyKind::Hopi => write!(f, "HOPI"),
            StrategyKind::Apex => write!(f, "APEX"),
        }
    }
}

/// The predefined framework configurations of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlixConfig {
    /// One meta document per XML document; the selector picks PPO for
    /// link-free documents and HOPI/APEX otherwise. Good when documents
    /// are large, links are rare, and queries stay within documents.
    Naive,
    /// Greedily group documents into forests (links pointing at document
    /// roots can stay inside a PPO-indexed meta document); everything the
    /// forest cannot represent becomes a runtime link. Good for almost-
    /// tree collections like DBLP.
    MaximalPpo,
    /// HOPI's divide step: size-capped element-graph partitions, each
    /// indexed with HOPI; partition-crossing edges are runtime links.
    /// Good when most documents contain links.
    UnconnectedHopi {
        /// Maximum elements per partition (the paper evaluates 5,000 and
        /// 20,000).
        partition_size: usize,
    },
    /// Maximal PPO for the tree-like part of the collection, Unconnected
    /// HOPI for the rest. Good for mixed collections (paper Fig. 1).
    Hybrid {
        /// Partition cap for the HOPI region.
        partition_size: usize,
    },
    /// The whole collection as a single meta document with a fixed
    /// strategy. `Monolithic(Hopi)` and `Monolithic(Apex)` are exactly the
    /// paper's two baselines.
    Monolithic(StrategyKind),
}

impl std::fmt::Display for FlixConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlixConfig::Naive => write!(f, "PPO-naive"),
            FlixConfig::MaximalPpo => write!(f, "MaximalPPO"),
            FlixConfig::UnconnectedHopi { partition_size } => {
                write!(f, "HOPI-{partition_size}")
            }
            FlixConfig::Hybrid { partition_size } => write!(f, "Hybrid-{partition_size}"),
            FlixConfig::Monolithic(k) => write!(f, "{k}"),
        }
    }
}

/// The Indexing Strategy Selector: picks the best strategy for one meta
/// document from its structure (paper §4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategySelector {
    /// Use (extended) PPO when at most this fraction of edges must be
    /// removed to make the meta document a forest.
    pub ppo_removal_tolerance: f64,
    /// Prefer APEX over HOPI for linked meta documents with at most this
    /// many elements (small summaries answer traversals quickly; HOPI's
    /// label build only pays off on larger graphs).
    pub apex_below_elements: usize,
}

impl Default for StrategySelector {
    fn default() -> Self {
        Self {
            ppo_removal_tolerance: 0.02,
            apex_below_elements: 0,
        }
    }
}

impl StrategySelector {
    /// Chooses a strategy for a meta document given as a subgraph.
    pub fn select(&self, subgraph: &Digraph) -> StrategyKind {
        let edges = subgraph.edge_count();
        if edges == 0 {
            return StrategyKind::Ppo;
        }
        let check = spanning_forest(subgraph);
        if check.is_forest || check.removal_ratio(edges) <= self.ppo_removal_tolerance {
            return StrategyKind::Ppo;
        }
        if subgraph.node_count() <= self.apex_below_elements {
            return StrategyKind::Apex;
        }
        StrategyKind::Hopi
    }
}

/// Build-phase knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildOptions {
    /// The strategy selector used where a configuration leaves the choice
    /// open.
    pub selector: StrategySelector,
    /// Refinement rounds for APEX-backed meta documents.
    pub apex_refine_rounds: usize,
    /// Total worker-thread budget for the build. `0` means "one per
    /// available core"; `1` forces a fully sequential build. The budget is
    /// split between the per-meta build stage and each HOPI meta document's
    /// intra-build parallelism (see [`graphcore::pool::split_budget`]), so
    /// the two layers together never oversubscribe it. Either way the built
    /// framework is byte-identical — threads only change wall clock.
    pub build_threads: usize,
}

impl BuildOptions {
    /// Resolves [`Self::build_threads`] against the host: `0` becomes the
    /// core count; anything else is taken as-is. This is the total budget
    /// the build splits across its stages.
    pub fn resolved_build_threads(&self) -> usize {
        if self.build_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.build_threads
        }
    }

    /// [`Self::resolved_build_threads`] clamped to the number of build
    /// jobs (spawning idle workers is pure overhead).
    pub fn effective_build_threads(&self, jobs: usize) -> usize {
        self.resolved_build_threads().min(jobs).max(1)
    }
}

impl Default for BuildOptions {
    /// The default thread budget honours the `FLIX_BUILD_THREADS`
    /// environment variable (unset or unparsable means `0` = one thread
    /// per core), so test suites and CI can pin the build shape without
    /// touching call sites.
    fn default() -> Self {
        let build_threads = std::env::var("FLIX_BUILD_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Self {
            selector: StrategySelector::default(),
            apex_refine_rounds: 1,
            build_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_picks_ppo_for_trees() {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (2, 3)]);
        assert_eq!(StrategySelector::default().select(&g), StrategyKind::Ppo);
    }

    #[test]
    fn selector_picks_ppo_for_almost_trees() {
        // 100-node tree plus one extra edge: 1% removal, under the 2% bar.
        let mut edges: Vec<(u32, u32)> = (1..100).map(|i| (i / 2, i)).collect();
        edges.push((40, 3));
        let g = Digraph::from_edges(100, edges);
        assert_eq!(StrategySelector::default().select(&g), StrategyKind::Ppo);
    }

    #[test]
    fn selector_picks_hopi_for_dense_links() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (0, 3)]);
        assert_eq!(StrategySelector::default().select(&g), StrategyKind::Hopi);
    }

    #[test]
    fn selector_honours_apex_window() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (0, 3)]);
        let s = StrategySelector {
            apex_below_elements: 10,
            ..StrategySelector::default()
        };
        assert_eq!(s.select(&g), StrategyKind::Apex);
    }

    #[test]
    fn empty_graph_gets_ppo() {
        let g = Digraph::from_edges(3, []);
        assert_eq!(StrategySelector::default().select(&g), StrategyKind::Ppo);
    }

    #[test]
    fn effective_threads_clamp_to_jobs_and_floor_at_one() {
        let opts = BuildOptions {
            build_threads: 8,
            ..BuildOptions::default()
        };
        assert_eq!(opts.effective_build_threads(3), 3);
        assert_eq!(opts.effective_build_threads(0), 1);
        // auto (0): at least one, at most `jobs`
        let auto = BuildOptions::default().effective_build_threads(2);
        assert!((1..=2).contains(&auto));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(FlixConfig::Naive.to_string(), "PPO-naive");
        assert_eq!(
            FlixConfig::UnconnectedHopi {
                partition_size: 5000
            }
            .to_string(),
            "HOPI-5000"
        );
        assert_eq!(FlixConfig::MaximalPpo.to_string(), "MaximalPPO");
        assert_eq!(
            FlixConfig::Monolithic(StrategyKind::Hopi).to_string(),
            "HOPI"
        );
    }
}
