//! Meta documents and their per-strategy indexes.

use crate::config::StrategyKind;
use apex::ApexIndex;
use graphcore::{Digraph, Distance, NodeId};
use hopi::HopiIndex;
use ppo::ExtendedPpo;
use serde::{Deserialize, Serialize};

/// The index backing one meta document, behind a uniform query surface.
///
/// All node ids at this level are *local* to the meta document; the
/// framework translates between local and global ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetaIndex {
    /// Extended pre/postorder index (forest + runtime links).
    Ppo(Box<ExtendedPpo>),
    /// HOPI 2-hop labels.
    Hopi(Box<HopiIndex>),
    /// APEX structural summary.
    Apex(Box<ApexIndex>),
}

impl MetaIndex {
    /// Builds the index of `kind` over a meta document's subgraph.
    ///
    /// Returns the index plus any *extra runtime links*: edges of the
    /// subgraph the index cannot answer (PPO's removed edges). The caller
    /// must register those with the query evaluator.
    pub fn build(
        kind: StrategyKind,
        subgraph: &Digraph,
        labels: &[u32],
        apex_refine_rounds: usize,
    ) -> (Self, Vec<(u32, u32)>) {
        let (index, extra, _) =
            Self::build_with_threads(kind, subgraph, labels, apex_refine_rounds, 1);
        (index, extra)
    }

    /// [`Self::build`] with an intra-build thread budget for HOPI-backed
    /// meta documents (PPO and APEX builds are sequential either way), plus
    /// the staged pipeline's [`hopi::StageReport`] when HOPI ran.
    ///
    /// The thread count never changes the built index — HOPI's staged
    /// pipeline is deterministic by construction — so callers can hand
    /// whatever budget [`graphcore::pool::split_budget`] grants them.
    pub fn build_with_threads(
        kind: StrategyKind,
        subgraph: &Digraph,
        labels: &[u32],
        apex_refine_rounds: usize,
        hopi_threads: usize,
    ) -> (Self, Vec<(u32, u32)>, Option<hopi::StageReport>) {
        match kind {
            StrategyKind::Ppo => {
                let idx = ExtendedPpo::build(subgraph, labels);
                let extra = idx.removed_edges().to_vec();
                (MetaIndex::Ppo(Box::new(idx)), extra, None)
            }
            StrategyKind::Hopi => {
                let opts = hopi::CoverOptions {
                    threads: hopi_threads,
                    ..hopi::CoverOptions::default()
                };
                let (idx, stages) = HopiIndex::build_staged(subgraph, labels, &opts);
                (MetaIndex::Hopi(Box::new(idx)), Vec::new(), Some(stages))
            }
            StrategyKind::Apex => (
                MetaIndex::Apex(Box::new(ApexIndex::build(
                    subgraph,
                    labels,
                    apex_refine_rounds,
                ))),
                Vec::new(),
                None,
            ),
        }
    }

    /// Which strategy this is.
    pub fn kind(&self) -> StrategyKind {
        match self {
            MetaIndex::Ppo(_) => StrategyKind::Ppo,
            MetaIndex::Hopi(_) => StrategyKind::Hopi,
            MetaIndex::Apex(_) => StrategyKind::Apex,
        }
    }

    /// Descendants of `u` with `label`, ascending by distance.
    pub fn descendants_by_label(
        &self,
        u: u32,
        label: u32,
        include_self: bool,
    ) -> Vec<(u32, Distance)> {
        match self {
            MetaIndex::Ppo(i) => i.descendants_by_label(u, label, include_self),
            MetaIndex::Hopi(i) => i.descendants_by_label(u, label, include_self),
            MetaIndex::Apex(i) => i.descendants_by_label(u, label, include_self),
        }
    }

    /// [`Self::descendants_by_label`] plus the number of index rows (or
    /// traversal steps, for APEX) the lookup touched — what a database-
    /// backed deployment pays per block.
    pub fn descendants_by_label_counted(
        &self,
        u: u32,
        label: u32,
        include_self: bool,
    ) -> (Vec<(u32, Distance)>, usize) {
        match self {
            MetaIndex::Ppo(i) => i.descendants_by_label_counted(u, label, include_self),
            MetaIndex::Hopi(i) => i.descendants_by_label_counted(u, label, include_self),
            MetaIndex::Apex(i) => i.descendants_by_label_counted(u, label, include_self),
        }
    }

    /// Ancestors of `u` with `label`, ascending by distance.
    pub fn ancestors_by_label(
        &self,
        u: u32,
        label: u32,
        include_self: bool,
    ) -> Vec<(u32, Distance)> {
        match self {
            MetaIndex::Ppo(i) => i.ancestors_by_label(u, label, include_self),
            MetaIndex::Hopi(i) => i.ancestors_by_label(u, label, include_self),
            MetaIndex::Apex(i) => i.ancestors_by_label(u, label, include_self),
        }
    }

    /// [`Self::ancestors_by_label`] plus the number of index rows (or
    /// traversal steps, for APEX) the lookup touched — the ancestors mirror
    /// of [`Self::descendants_by_label_counted`], so both axes charge the
    /// paper's per-row cost model symmetrically.
    pub fn ancestors_by_label_counted(
        &self,
        u: u32,
        label: u32,
        include_self: bool,
    ) -> (Vec<(u32, Distance)>, usize) {
        match self {
            MetaIndex::Ppo(i) => i.ancestors_by_label_counted(u, label, include_self),
            MetaIndex::Hopi(i) => i.ancestors_by_label_counted(u, label, include_self),
            MetaIndex::Apex(i) => i.ancestors_by_label_counted(u, label, include_self),
        }
    }

    /// Distance from `u` to `v` within the meta document, if connected
    /// through indexed edges.
    pub fn distance(&self, u: u32, v: u32) -> Option<Distance> {
        match self {
            MetaIndex::Ppo(i) => i.distance(u, v),
            MetaIndex::Hopi(i) => i.distance(u, v),
            MetaIndex::Apex(i) => i.distance(u, v),
        }
    }

    /// Reachability within the meta document.
    pub fn is_reachable(&self, u: u32, v: u32) -> bool {
        self.distance(u, v).is_some()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            MetaIndex::Ppo(i) => i.size_bytes(),
            MetaIndex::Hopi(i) => i.size_bytes(),
            MetaIndex::Apex(i) => i.size_bytes(),
        }
    }
}

/// One meta document: a node set, its index, and its runtime-link anchors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaDocument {
    /// Local id -> global node id (ascending).
    pub nodes: Vec<NodeId>,
    /// The index built for this meta document.
    pub index: MetaIndex,
    /// Locals with outgoing runtime links (the set `L_i` of §4.2), sorted.
    pub link_sources: Vec<u32>,
    /// Locals that are targets of runtime links (for ancestor queries),
    /// sorted.
    pub link_targets: Vec<u32>,
}

impl MetaDocument {
    /// Number of elements in this meta document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the meta document is empty (never happens for built ones).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `IND.findReachableLinks(e)` from the paper's Fig. 4: descendants of
    /// local `e` (including `e`) that have outgoing runtime links, with
    /// their in-meta distances, ascending (conceptually the intersection of
    /// `e`'s descendants with the set `L_i`, §4.2).
    ///
    /// The access path depends on the strategy: PPO answers a distance
    /// probe in O(1), so probing each link source wins; HOPI and APEX pay
    /// a label merge / traversal per probe, so enumerating the descendant
    /// set once and filtering it against `L_i` is far cheaper.
    pub fn reachable_link_sources(&self, e: u32) -> Vec<(u32, Distance)> {
        if self.link_sources.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<(u32, Distance)> = match &self.index {
            MetaIndex::Ppo(i) => self
                .link_sources
                .iter()
                .filter_map(|&s| i.distance(e, s).map(|d| (s, d)))
                .collect(),
            MetaIndex::Hopi(i) => i
                .descendants(e, true)
                .into_iter()
                .filter(|(v, _)| self.link_sources.binary_search(v).is_ok())
                .collect(),
            MetaIndex::Apex(i) => i
                .descendants(e, true)
                .into_iter()
                .filter(|(v, _)| self.link_sources.binary_search(v).is_ok())
                .collect(),
        };
        out.sort_unstable_by_key(|&(v, d)| (d, v));
        out
    }

    /// Mirror of [`Self::reachable_link_sources`] for ancestor queries:
    /// link *targets* that can reach local `e`, with their distances to
    /// `e`, ascending.
    pub fn reaching_link_targets(&self, e: u32) -> Vec<(u32, Distance)> {
        if self.link_targets.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<(u32, Distance)> = match &self.index {
            MetaIndex::Ppo(i) => self
                .link_targets
                .iter()
                .filter_map(|&t| i.distance(t, e).map(|d| (t, d)))
                .collect(),
            MetaIndex::Hopi(i) => i
                .ancestors(e, true)
                .into_iter()
                .filter(|(v, _)| self.link_targets.binary_search(v).is_ok())
                .collect(),
            MetaIndex::Apex(i) => i
                .ancestors_all(e, true)
                .into_iter()
                .filter(|(v, _)| self.link_targets.binary_search(v).is_ok())
                .collect(),
        };
        out.sort_unstable_by_key(|&(v, d)| (d, v));
        out
    }
}

impl flixcheck::IntegrityCheck for MetaDocument {
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("MetaDocument");
        let n = self.nodes.len();
        let first_unsorted = self
            .nodes
            .windows(2)
            .position(|w| w[0] >= w[1])
            .map(|i| (i, self.nodes[i], self.nodes[i + 1]));
        audit.check(
            "local->global node map is strictly ascending",
            first_unsorted.is_none(),
            || {
                first_unsorted
                    .map(|(i, a, b)| format!("nodes[{i}]={a} >= nodes[{}]={b}", i + 1))
                    .unwrap_or_default()
            },
        );
        let index_n = match &self.index {
            MetaIndex::Ppo(i) => i.forest_index().node_count(),
            MetaIndex::Hopi(i) => i.node_count(),
            MetaIndex::Apex(i) => i.summary().class_of.len(),
        };
        audit.check(
            "index covers exactly the meta document's nodes",
            index_n == n,
            || format!("index built over {index_n} nodes, meta document holds {n}"),
        );
        for (what, anchors) in [
            ("link_sources", &self.link_sources),
            ("link_targets", &self.link_targets),
        ] {
            let unsorted = anchors.windows(2).any(|w| w[0] >= w[1]);
            audit.check(
                "runtime-link anchor sets are strictly ascending",
                !unsorted,
                || format!("{what} is not strictly sorted"),
            );
            let stray = anchors.iter().copied().find(|&a| a as usize >= n);
            audit.check(
                "runtime-link anchors are valid local ids",
                stray.is_none(),
                || {
                    stray
                        .map(|a| format!("{what} names local {a}, meta document holds {n}"))
                        .unwrap_or_default()
                },
            );
        }
        let inner = match &self.index {
            MetaIndex::Ppo(i) => i.integrity_check(),
            MetaIndex::Hopi(i) => i.integrity_check(),
            MetaIndex::Apex(i) => i.integrity_check(),
        };
        match inner {
            Ok(report) => audit.check("inner index passes its own audit", true, || {
                report.to_string()
            }),
            Err(err) => {
                for v in &err.violations {
                    audit.violation(
                        "inner index passes its own audit",
                        format!("{}: {}: {}", err.structure, v.invariant, v.detail),
                    );
                }
            }
        }
        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Digraph, Vec<u32>) {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        (g, vec![0, 1, 1, 2])
    }

    #[test]
    fn all_strategies_answer_uniformly() {
        let (g, labels) = diamond();
        for kind in [StrategyKind::Hopi, StrategyKind::Apex] {
            let (idx, extra) = MetaIndex::build(kind, &g, &labels, 1);
            assert!(extra.is_empty(), "{kind} should not drop edges");
            assert_eq!(idx.kind(), kind);
            assert_eq!(idx.distance(0, 3), Some(2), "{kind}");
            assert!(idx.is_reachable(0, 3));
            assert!(!idx.is_reachable(3, 0));
            let d = idx.descendants_by_label(0, 1, false);
            assert_eq!(d, vec![(1, 1), (2, 1)], "{kind}");
            let a = idx.ancestors_by_label(3, 1, false);
            assert_eq!(a, vec![(1, 1), (2, 1)], "{kind}");
        }
    }

    #[test]
    fn ppo_reports_dropped_edges() {
        let (g, labels) = diamond();
        let (idx, extra) = MetaIndex::build(StrategyKind::Ppo, &g, &labels, 1);
        // the diamond has one non-forest edge
        assert_eq!(extra.len(), 1);
        assert_eq!(idx.kind(), StrategyKind::Ppo);
        // forest still answers one side
        assert!(idx.is_reachable(0, 3));
    }

    #[test]
    fn meta_document_link_source_scan() {
        let (g, labels) = diamond();
        let (index, extra) = MetaIndex::build(StrategyKind::Ppo, &g, &labels, 1);
        let link_sources: Vec<u32> = extra.iter().map(|&(u, _)| u).collect();
        let md = MetaDocument {
            nodes: vec![10, 11, 12, 13], // globals
            index,
            link_sources,
            link_targets: extra.iter().map(|&(_, v)| v).collect(),
        };
        let ls = md.reachable_link_sources(0);
        assert_eq!(ls.len(), 1, "one dropped edge, one source");
        let lt = md.reaching_link_targets(3);
        assert_eq!(lt.len(), 1);
        assert!(!md.is_empty());
        assert_eq!(md.len(), 4);
    }

    #[test]
    fn sizes_ranked_plausibly() {
        // On a pure tree PPO must be far smaller than HOPI's label sets.
        let g = Digraph::from_edges(50, (1..50u32).map(|i| (i / 2, i)));
        let labels = vec![0u32; 50];
        let (p, _) = MetaIndex::build(StrategyKind::Ppo, &g, &labels, 1);
        let (h, _) = MetaIndex::build(StrategyKind::Hopi, &g, &labels, 1);
        let (a, _) = MetaIndex::build(StrategyKind::Apex, &g, &labels, 1);
        assert!(p.size_bytes() < h.size_bytes());
        assert!(a.size_bytes() > 0);
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let (g, labels) = diamond();
        for kind in [StrategyKind::Ppo, StrategyKind::Hopi, StrategyKind::Apex] {
            let (index, extra) = MetaIndex::build(kind, &g, &labels, 2);
            let mut sources: Vec<u32> = extra.iter().map(|&(u, _)| u).collect();
            sources.sort_unstable();
            sources.dedup();
            let md = MetaDocument {
                nodes: vec![10, 11, 12, 13],
                index,
                link_sources: sources,
                link_targets: Vec::new(),
            };
            md.integrity_check().unwrap();

            // Global node map out of order.
            let mut bad = md.clone();
            bad.nodes.swap(0, 1);
            assert!(bad.integrity_check().is_err(), "{kind:?}: unsorted nodes");

            // Node map and index disagree about the document size.
            let mut bad = md.clone();
            bad.nodes.push(14);
            assert!(bad.integrity_check().is_err(), "{kind:?}: size mismatch");

            // A link anchor outside the local id space.
            let mut bad = md.clone();
            bad.link_targets = vec![99];
            assert!(bad.integrity_check().is_err(), "{kind:?}: stray anchor");
        }
    }
}
