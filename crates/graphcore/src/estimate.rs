//! Cohen's randomised size estimation for reachability sets ([5] in the
//! FliX paper: E. Cohen, "Size-estimation framework with applications to
//! transitive closure and reachability", JCSS 1997).
//!
//! Assign every node an i.i.d. `Exp(1)`-distributed rank and propagate the
//! *minimum* rank over each node's reachable set (one linear pass over the
//! condensation per round). The minimum of `|S|` i.i.d. exponentials is
//! `Exp(|S|)`, so after `k` rounds the estimator `(k - 1) / Σ mins` is
//! unbiased for `|S|`. FliX's paper notes HOPI's size must be estimated
//! from the transitive-closure size "without actually building the index";
//! this module provides exactly that estimator, in `O(k·(n + m))`.

use crate::digraph::{Digraph, NodeId};
use crate::scc::condensation;
use crate::topo::topological_order;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Estimates `|descendants-or-self(v)|` for every node with `rounds`
/// independent rank propagations. Larger `rounds` tightens the estimate
/// (relative error ~ `1/sqrt(rounds)`).
///
/// # Panics
/// If `rounds < 2` (the estimator needs at least two rounds).
pub fn estimate_descendant_counts(g: &Digraph, rounds: usize, seed: u64) -> Vec<f64> {
    assert!(rounds >= 2, "need at least two estimation rounds");
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let cond = condensation(g);
    // The condensation is acyclic by construction; fall back to the
    // identity order rather than panicking if that ever breaks.
    let order = topological_order(&cond.dag)
        .unwrap_or_else(|| (0..cond.component_count() as NodeId).collect());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sums = vec![0.0f64; n];
    let mut comp_min = vec![f64::INFINITY; cond.component_count()];
    for _ in 0..rounds {
        // Exp(1) rank per node; each SCC keeps its members' minimum.
        comp_min.fill(f64::INFINITY);
        for u in 0..n {
            let x: f64 = rng.gen::<f64>();
            let rank = -(1.0 - x).ln(); // Exp(1)
            let c = cond.comp_of[u] as usize;
            if rank < comp_min[c] {
                comp_min[c] = rank;
            }
        }
        // Propagate minima along reverse topological order: a component's
        // minimum covers everything it reaches.
        for &c in order.iter().rev() {
            let mut m = comp_min[c as usize];
            for &s in cond.dag.successors(c) {
                if comp_min[s as usize] < m {
                    m = comp_min[s as usize];
                }
            }
            comp_min[c as usize] = m;
        }
        for u in 0..n {
            sums[u] += comp_min[cond.comp_of[u] as usize];
        }
    }
    sums.iter()
        .map(|&s| {
            if s > 0.0 {
                (rounds as f64 - 1.0) / s
            } else {
                n as f64
            }
        })
        .collect()
}

/// Estimates `|ancestors-or-self(v)|` for every node: the mirror of
/// [`estimate_descendant_counts`], computed over the reversed graph.
///
/// HOPI's staged cover builder ranks centers by the product of the two
/// estimates — a node can serve as the 2-hop midpoint for (up to) one pair
/// per (ancestor, descendant) combination, so the product approximates a
/// center's covering power far better than raw degree.
pub fn estimate_ancestor_counts(g: &Digraph, rounds: usize, seed: u64) -> Vec<f64> {
    estimate_descendant_counts(&g.reversed(), rounds, seed)
}

/// Estimates the number of pairs in the transitive closure (the size the
/// paper says HOPI must be estimated against).
pub fn estimate_closure_size(g: &Digraph, rounds: usize, seed: u64) -> f64 {
    estimate_descendant_counts(g, rounds, seed).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::TransitiveClosure;

    fn exact_counts(g: &Digraph) -> Vec<f64> {
        let tc = TransitiveClosure::build(g);
        (0..g.node_count() as u32)
            .map(|u| tc.descendants(u).len() as f64)
            .collect()
    }

    fn assert_close(g: &Digraph, rounds: usize, tol: f64) {
        let est = estimate_descendant_counts(g, rounds, 42);
        let exact = exact_counts(g);
        for (u, (e, x)) in est.iter().zip(&exact).enumerate() {
            let rel = (e - x).abs() / x;
            assert!(
                rel < tol,
                "node {u}: est {e:.2} vs exact {x} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn chain_estimates_converge() {
        let g = Digraph::from_edges(50, (0..49u32).map(|i| (i, i + 1)));
        assert_close(&g, 400, 0.35);
    }

    #[test]
    fn star_and_dag() {
        let mut edges: Vec<(u32, u32)> = (1..40u32).map(|i| (0, i)).collect();
        edges.extend((1..20u32).map(|i| (i, i + 20)));
        let g = Digraph::from_edges(41, edges);
        assert_close(&g, 400, 0.35);
    }

    #[test]
    fn cyclic_components_share_counts() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]);
        let est = estimate_descendant_counts(&g, 300, 7);
        // nodes 0,1,2 all reach the same 6-node set
        assert!((est[0] - est[1]).abs() < 1e-9);
        assert!((est[1] - est[2]).abs() < 1e-9);
        assert!(est[0] > est[3], "upstream set is larger");
        assert!((est[5] - 1.0).abs() < 0.5, "sink reaches only itself");
    }

    #[test]
    fn closure_size_estimate_tracks_exact() {
        let g = Digraph::from_edges(30, (0..29u32).map(|i| (i, i + 1)).chain([(0, 15), (5, 25)]));
        let exact: f64 = exact_counts(&g).iter().sum();
        let est = estimate_closure_size(&g, 500, 11);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.2, "est {est:.1} vs exact {exact} (rel {rel:.3})");
    }

    #[test]
    fn ancestor_counts_mirror_descendants() {
        // On a chain, ancestors of node i are exactly descendants of node
        // (n-1-i) in the reversed direction.
        let g = Digraph::from_edges(20, (0..19u32).map(|i| (i, i + 1)));
        let anc = estimate_ancestor_counts(&g, 300, 9);
        let desc = estimate_descendant_counts(&g, 300, 9);
        // head has few ancestors, many descendants; tail the opposite
        assert!(anc[0] < anc[19]);
        assert!(desc[0] > desc[19]);
        assert!((anc[0] - 1.0).abs() < 0.5, "source has only itself above");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = Digraph::from_edges(10, (0..9u32).map(|i| (i, i + 1)));
        assert_eq!(
            estimate_descendant_counts(&g, 16, 3),
            estimate_descendant_counts(&g, 16, 3)
        );
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::from_edges(0, []);
        assert!(estimate_descendant_counts(&g, 4, 1).is_empty());
        assert_eq!(estimate_closure_size(&g, 4, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_round_rejected() {
        let g = Digraph::from_edges(2, [(0, 1)]);
        estimate_descendant_counts(&g, 1, 0);
    }
}
