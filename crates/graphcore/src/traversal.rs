//! Breadth-first and shortest-path traversals over [`Digraph`]s.
//!
//! Distances in the FliX data model are unweighted hop counts, so BFS is the
//! workhorse; a binary-heap Dijkstra is provided for the cross-partition
//! searches where virtual link hops carry an extra cost.

use crate::digraph::{Digraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hop-count distance type used across the workspace.
pub type Distance = u32;

/// Sentinel for "unreachable".
pub const INFINITE_DISTANCE: Distance = u32::MAX;

/// Returns all nodes reachable from `start` (including `start`) in BFS order.
pub fn bfs_from(g: &Digraph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.successors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Unit-weight single-source shortest distances. Unreachable nodes get
/// [`INFINITE_DISTANCE`].
pub fn bfs_distances(g: &Digraph, start: NodeId) -> Vec<Distance> {
    let mut dist = vec![INFINITE_DISTANCE; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.successors(u) {
            if dist[v as usize] == INFINITE_DISTANCE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source BFS: distances to the nearest of the given sources.
pub fn multi_source_bfs(g: &Digraph, sources: &[NodeId]) -> Vec<Distance> {
    let mut dist = vec![INFINITE_DISTANCE; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        if dist[s as usize] == INFINITE_DISTANCE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.successors(u) {
            if dist[v as usize] == INFINITE_DISTANCE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// General Dijkstra with a per-edge weight callback.
///
/// Edge weights must be non-negative. Used by the error-rate oracle, which
/// charges link edges an extra hop exactly like the FliX path-expression
/// evaluator does.
pub fn dijkstra(
    g: &Digraph,
    start: NodeId,
    mut weight: impl FnMut(NodeId, NodeId) -> Distance,
) -> Vec<Distance> {
    let mut dist = vec![INFINITE_DISTANCE; g.node_count()];
    let mut heap = BinaryHeap::new();
    dist[start as usize] = 0;
    heap.push(Reverse((0 as Distance, start)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for &v in g.successors(u) {
            let nd = d.saturating_add(weight(u, v));
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Depth-first pre-order over the whole graph, restarting at unvisited nodes
/// in ascending id order. Returns the visit order.
pub fn dfs_preorder(g: &Digraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n as NodeId {
        if seen[root as usize] {
            continue;
        }
        stack.push(root);
        seen[root as usize] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            // Push in reverse so lowest-id successor is visited first.
            for &v in g.successors(u).iter().rev() {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    order
}

/// True if `target` is reachable from `start` (plain BFS; the slow baseline
/// that every index in this workspace is measured against).
pub fn is_reachable(g: &Digraph, start: NodeId, target: NodeId) -> bool {
    if start == target {
        return true;
    }
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in g.successors(u) {
            if v == target {
                return true;
            }
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_shortcut() -> Digraph {
        // 0 -> 1 -> 2 -> 3 -> 4 and shortcut 0 -> 3
        Digraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 3)])
    }

    #[test]
    fn bfs_order_and_reach() {
        let g = chain_with_shortcut();
        let order = bfs_from(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        let from2 = bfs_from(&g, 2);
        assert_eq!(from2, vec![2, 3, 4]);
    }

    #[test]
    fn bfs_distances_take_shortcut() {
        let g = chain_with_shortcut();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 1, 2]);
        let d4 = bfs_distances(&g, 4);
        assert_eq!(d4[0], INFINITE_DISTANCE);
        assert_eq!(d4[4], 0);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = chain_with_shortcut();
        let d = multi_source_bfs(&g, &[1, 3]);
        assert_eq!(d, vec![INFINITE_DISTANCE, 0, 1, 0, 1]);
    }

    #[test]
    fn dijkstra_unit_matches_bfs() {
        let g = chain_with_shortcut();
        assert_eq!(dijkstra(&g, 0, |_, _| 1), bfs_distances(&g, 0));
    }

    #[test]
    fn dijkstra_weighted_avoids_expensive_shortcut() {
        let g = chain_with_shortcut();
        // Make the shortcut 0->3 cost 10: path through the chain wins.
        let d = dijkstra(&g, 0, |u, v| if (u, v) == (0, 3) { 10 } else { 1 });
        assert_eq!(d[3], 3);
        assert_eq!(d[4], 4);
    }

    #[test]
    fn dfs_preorder_visits_everything_once() {
        let g = chain_with_shortcut();
        let order = dfs_preorder(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn reachability_and_self() {
        let g = chain_with_shortcut();
        assert!(is_reachable(&g, 0, 4));
        assert!(!is_reachable(&g, 4, 0));
        assert!(is_reachable(&g, 2, 2));
    }
}
