//! Fixed-capacity bitset used by the transitive-closure oracle.

use serde::{Deserialize, Serialize};

/// A fixed-size set of `usize` values below a capacity chosen at creation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Maximum value capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union; returns true if `self` changed.
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// True if the two sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Iterator over set elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(3);
        b.insert(77);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(77));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn intersects_detects_overlap() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        a.insert(150);
        assert!(!a.intersects(&b));
        b.insert(150);
        assert!(a.intersects(&b));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(300);
        for &i in &[299, 5, 64, 63, 128] {
            s.insert(i);
        }
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 128, 299]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(64);
        s.insert(10);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
