//! A small scoped worker pool for deterministic parallel builds.
//!
//! Both the per-meta-document build stage in `flix` and the per-partition
//! stage of HOPI's staged cover pipeline pull their jobs through this
//! module, so one `build_threads` budget governs the whole build instead of
//! each layer spawning its own workers and oversubscribing the machine
//! (see [`split_budget`]).
//!
//! [`run_scheduled`] always returns results in ascending job-id order, no
//! matter the schedule or thread count. As long as the jobs themselves are
//! pure functions of their id, a caller that merges results sequentially is
//! oblivious to scheduling: any thread count produces identical — for
//! serialized consumers, byte-identical — output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a requested thread count against the host and the job count:
/// `0` means one thread per available core, and the result never exceeds
/// `jobs` (idle workers are pure overhead) nor drops below 1.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    threads.min(jobs).max(1)
}

/// Splits a resolved thread budget between an outer stage running
/// `outer_jobs` concurrent jobs and the nested parallelism each job may run
/// itself. Returns `(outer_workers, inner_shares)` where `inner_shares[w]`
/// is the inner thread budget of outer worker `w`.
///
/// A monolithic outer stage (`outer_jobs == 1`) hands the whole budget to
/// the single job's inner stages; many small outer jobs saturate the budget
/// at the outer level and get one inner thread each. In between, the
/// budget is distributed *exactly*: a flooring split used to strand part
/// of it (total=8 over 3 workers gave 3×2 = 6 threads), so the remainder
/// now goes one-each to the first workers. The shares always satisfy
/// `shares.len() == outer_workers`, `sum(shares) == max(total, 1)`, every
/// share is at least 1, and no two shares differ by more than 1 — the two
/// layers together use the whole budget and never oversubscribe it.
pub fn split_budget(total: usize, outer_jobs: usize) -> (usize, Vec<usize>) {
    let total = total.max(1);
    let outer = total.min(outer_jobs).max(1);
    let base = total / outer;
    let extra = total % outer;
    let shares = (0..outer).map(|w| base + usize::from(w < extra)).collect();
    (outer, shares)
}

/// Runs the jobs named by `schedule` (a permutation of `0..n`) on `threads`
/// scoped workers and returns one result per job, in **ascending job-id
/// order** regardless of schedule or thread count.
///
/// Workers claim schedule slots off a shared atomic cursor, so an
/// expensive-jobs-first schedule keeps the pool busy to the end. With
/// `threads <= 1` the jobs run inline in schedule order — same results, no
/// thread spawns.
pub fn run_scheduled<T, F>(threads: usize, schedule: &[usize], job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_scheduled_budgeted(&vec![1; threads.max(1)], schedule, |id, _| job(id))
}

/// [`run_scheduled`] with one worker per entry of `shares`, each passing
/// its own inner thread budget (`shares[w]`) to the jobs it claims — the
/// consumption side of [`split_budget`]. Jobs must produce output
/// independent of the inner budget they are handed (wall clock may vary,
/// results may not), which keeps the ascending-job-id return order the
/// only scheduling contract, exactly as for [`run_scheduled`].
pub fn run_scheduled_budgeted<T, F>(shares: &[usize], schedule: &[usize], job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(schedule.len());
    if shares.len() <= 1 || schedule.len() <= 1 {
        // Inline: the single worker owns the whole budget.
        let inner = shares.iter().sum::<usize>().max(1);
        for &id in schedule {
            tagged.push((id, job(id, inner)));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            for &share in shares {
                let tx = tx.clone();
                let (cursor, job) = (&cursor, &job);
                s.spawn(move || loop {
                    // flixcheck: allow(atomic-ordering): the cursor only needs RMW uniqueness to claim slots; no data is published through it
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&id) = schedule.get(slot) else { break };
                    let out = job(id, share.max(1));
                    if tx.send((id, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });
        // The scope joined every worker, so the queue holds every job.
        while let Ok(item) = rx.try_recv() {
            tagged.push(item);
        }
        assert!(
            tagged.len() == schedule.len(),
            "worker pool produced {} of {} jobs",
            tagged.len(),
            schedule.len()
        );
    }
    tagged.sort_by_key(|&(id, _)| id);
    tagged.into_iter().map(|(_, out)| out).collect()
}

/// [`run_scheduled`] over the identity schedule `0..jobs`.
pub fn run_jobs<T, F>(threads: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let schedule: Vec<usize> = (0..jobs).collect();
    run_scheduled(threads, &schedule, job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 8] {
            let out = run_jobs(threads, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn schedule_order_is_invisible() {
        let mut schedule: Vec<usize> = (0..16).collect();
        schedule.reverse();
        for threads in [1, 3] {
            let out = run_scheduled(threads, &schedule, |i| format!("job-{i}"));
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("job-{i}"));
            }
        }
    }

    #[test]
    fn empty_and_single_job() {
        let out: Vec<u32> = run_jobs(4, 0, |_| unreachable!());
        assert!(out.is_empty());
        assert_eq!(run_jobs(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(2, 100), 2);
        // auto (0): at least one, at most `jobs`
        let auto = effective_threads(0, 2);
        assert!((1..=2).contains(&auto));
    }

    #[test]
    fn budget_split_is_exact_and_never_oversubscribes() {
        assert_eq!(
            split_budget(8, 1),
            (1, vec![8]),
            "monolithic keeps the budget"
        );
        assert_eq!(
            split_budget(8, 100),
            (8, vec![1; 8]),
            "wide stages get the budget"
        );
        // The flooring split used to strand 2 of 8 threads here (3×2 = 6);
        // the remainder now lands on the first workers.
        assert_eq!(split_budget(8, 3), (3, vec![3, 3, 2]));
        assert_eq!(split_budget(0, 5), (1, vec![1]));
        assert_eq!(split_budget(1, 1), (1, vec![1]));
        for total in 0..24 {
            for jobs in 1..24 {
                let (outer, shares) = split_budget(total, jobs);
                assert_eq!(shares.len(), outer, "{total}/{jobs}");
                assert!(
                    outer >= 1 && shares.iter().all(|&s| s >= 1),
                    "{total}/{jobs}"
                );
                // No oversubscription AND no stranded budget: the shares
                // sum to exactly the (clamped) total, which is tighter
                // than the old `outer × inner ≥ total − outer + 1` bound.
                assert_eq!(shares.iter().sum::<usize>(), total.max(1), "{total}/{jobs}");
                let (lo, hi) = (shares.iter().min(), shares.iter().max());
                assert!(
                    hi.unwrap() - lo.unwrap() <= 1,
                    "{total}/{jobs}: uneven shares {shares:?}"
                );
            }
        }
    }

    #[test]
    fn budgeted_workers_hand_their_share_to_jobs() {
        let (outer, shares) = split_budget(8, 3);
        assert_eq!(outer, 3);
        let seen = run_scheduled_budgeted(&shares, &[0, 1, 2, 3, 4, 5], |id, inner| (id, inner));
        for (i, &(id, inner)) in seen.iter().enumerate() {
            assert_eq!(id, i, "job-id return order");
            assert!(
                shares.contains(&inner),
                "job {id} ran with a budget ({inner}) no worker owns"
            );
        }
        // A single job gets the whole budget, whatever the worker count.
        let solo = run_scheduled_budgeted(&shares, &[0], |_, inner| inner);
        assert_eq!(solo, vec![8]);
    }
}
