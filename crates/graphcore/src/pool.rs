//! A small scoped worker pool for deterministic parallel builds.
//!
//! Both the per-meta-document build stage in `flix` and the per-partition
//! stage of HOPI's staged cover pipeline pull their jobs through this
//! module, so one `build_threads` budget governs the whole build instead of
//! each layer spawning its own workers and oversubscribing the machine
//! (see [`split_budget`]).
//!
//! [`run_scheduled`] always returns results in ascending job-id order, no
//! matter the schedule or thread count. As long as the jobs themselves are
//! pure functions of their id, a caller that merges results sequentially is
//! oblivious to scheduling: any thread count produces identical — for
//! serialized consumers, byte-identical — output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a requested thread count against the host and the job count:
/// `0` means one thread per available core, and the result never exceeds
/// `jobs` (idle workers are pure overhead) nor drops below 1.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    threads.min(jobs).max(1)
}

/// Splits a resolved thread budget between an outer stage running
/// `outer_jobs` concurrent jobs and the nested parallelism each job may run
/// itself. Returns `(outer_workers, inner_threads_per_job)`.
///
/// A monolithic outer stage (`outer_jobs == 1`) hands the whole budget to
/// the single job's inner stages; many small outer jobs saturate the budget
/// at the outer level and get one inner thread each. In every case
/// `outer_workers * inner_threads_per_job <= max(total, 1)`, so the two
/// layers together never oversubscribe the budget.
pub fn split_budget(total: usize, outer_jobs: usize) -> (usize, usize) {
    let total = total.max(1);
    let outer = total.min(outer_jobs).max(1);
    (outer, (total / outer).max(1))
}

/// Runs the jobs named by `schedule` (a permutation of `0..n`) on `threads`
/// scoped workers and returns one result per job, in **ascending job-id
/// order** regardless of schedule or thread count.
///
/// Workers claim schedule slots off a shared atomic cursor, so an
/// expensive-jobs-first schedule keeps the pool busy to the end. With
/// `threads <= 1` the jobs run inline in schedule order — same results, no
/// thread spawns.
pub fn run_scheduled<T, F>(threads: usize, schedule: &[usize], job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(schedule.len());
    if threads <= 1 || schedule.len() <= 1 {
        for &id in schedule {
            tagged.push((id, job(id)));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                let (cursor, job) = (&cursor, &job);
                s.spawn(move || loop {
                    // flixcheck: allow(atomic-ordering): the cursor only needs RMW uniqueness to claim slots; no data is published through it
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&id) = schedule.get(slot) else { break };
                    let out = job(id);
                    if tx.send((id, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });
        // The scope joined every worker, so the queue holds every job.
        while let Ok(item) = rx.try_recv() {
            tagged.push(item);
        }
        assert!(
            tagged.len() == schedule.len(),
            "worker pool produced {} of {} jobs",
            tagged.len(),
            schedule.len()
        );
    }
    tagged.sort_by_key(|&(id, _)| id);
    tagged.into_iter().map(|(_, out)| out).collect()
}

/// [`run_scheduled`] over the identity schedule `0..jobs`.
pub fn run_jobs<T, F>(threads: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let schedule: Vec<usize> = (0..jobs).collect();
    run_scheduled(threads, &schedule, job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 8] {
            let out = run_jobs(threads, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn schedule_order_is_invisible() {
        let mut schedule: Vec<usize> = (0..16).collect();
        schedule.reverse();
        for threads in [1, 3] {
            let out = run_scheduled(threads, &schedule, |i| format!("job-{i}"));
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("job-{i}"));
            }
        }
    }

    #[test]
    fn empty_and_single_job() {
        let out: Vec<u32> = run_jobs(4, 0, |_| unreachable!());
        assert!(out.is_empty());
        assert_eq!(run_jobs(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(2, 100), 2);
        // auto (0): at least one, at most `jobs`
        let auto = effective_threads(0, 2);
        assert!((1..=2).contains(&auto));
    }

    #[test]
    fn budget_split_never_oversubscribes() {
        assert_eq!(split_budget(8, 1), (1, 8), "monolithic keeps the budget");
        assert_eq!(split_budget(8, 100), (8, 1), "wide stages get the budget");
        assert_eq!(split_budget(8, 3), (3, 2));
        assert_eq!(split_budget(0, 5), (1, 1));
        assert_eq!(split_budget(1, 1), (1, 1));
        for total in 1..16 {
            for jobs in 1..16 {
                let (outer, inner) = split_budget(total, jobs);
                assert!(outer * inner <= total.max(1), "{total}/{jobs}");
                assert!(outer >= 1 && inner >= 1);
            }
        }
    }
}
