//! Exact transitive closure and all-pairs distances.
//!
//! These are the ground-truth oracles: tests compare every index against
//! them, Table 1 uses the closure size as the yardstick the paper mentions
//! ("more than an order of magnitude smaller than the transitive closure"),
//! and the §6 error-rate experiment checks the PEE's result order against
//! [`DistanceOracle`] distances.

use crate::bitset::BitSet;
use crate::digraph::{Digraph, NodeId};
use crate::traversal::{bfs_distances, Distance, INFINITE_DISTANCE};
use serde::{Deserialize, Serialize};

/// Full reachability matrix, one bitset row per node.
///
/// Reachability here is *proper* descendants-or-self: `reaches(u, u)` is
/// always true, matching XPath's `descendant-or-self` axis used throughout
/// the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitiveClosure {
    rows: Vec<BitSet>,
}

impl TransitiveClosure {
    /// Computes the closure by propagating successor sets in reverse
    /// topological order of the condensation (cycle-safe).
    pub fn build(g: &Digraph) -> Self {
        let n = g.node_count();
        let cond = crate::scc::condensation(g);
        let c = cond.component_count();
        // Closure on the component DAG first.
        let mut comp_rows: Vec<BitSet> = (0..c).map(|_| BitSet::new(c)).collect();
        // The condensation is acyclic by construction, so an order always
        // exists; the identity fallback keeps this total without panicking.
        let order =
            crate::topo::topological_order(&cond.dag).unwrap_or_else(|| (0..c as NodeId).collect());
        for &u in order.iter().rev() {
            comp_rows[u as usize].insert(u as usize);
            let succs: Vec<NodeId> = cond.dag.successors(u).to_vec();
            for v in succs {
                // Split borrow: take the successor row out, merge, put back.
                let row = std::mem::replace(&mut comp_rows[v as usize], BitSet::new(0));
                comp_rows[u as usize].union_with(&row);
                comp_rows[v as usize] = row;
            }
        }
        // Expand to node granularity.
        let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for (u, row) in rows.iter_mut().enumerate() {
            let cu = cond.comp_of[u] as usize;
            for cv in comp_rows[cu].iter() {
                for &v in &cond.members[cv] {
                    row.insert(v as usize);
                }
            }
        }
        Self { rows }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// True if `v` is reachable from `u` (including `u == v`).
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.rows[u as usize].contains(v as usize)
    }

    /// All nodes reachable from `u`, ascending.
    pub fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        self.rows[u as usize].iter().map(|i| i as NodeId).collect()
    }

    /// Total number of (u, v) pairs in the closure, the size HOPI is
    /// compared against in the paper.
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(BitSet::len).sum()
    }

    /// Approximate storage footprint of materialising the closure as pair
    /// lists of two u32 each (what a database table would hold).
    pub fn materialized_bytes(&self) -> usize {
        self.pair_count() * 8
    }
}

/// All-pairs shortest distances, computed lazily per source node.
///
/// The error-rate experiment needs exact distances from a handful of start
/// elements, so we run one BFS per queried source and memoise the rows.
#[derive(Debug)]
pub struct DistanceOracle<'g> {
    graph: &'g Digraph,
    rows: std::cell::RefCell<std::collections::HashMap<NodeId, std::rc::Rc<Vec<Distance>>>>,
}

impl<'g> DistanceOracle<'g> {
    /// Creates an oracle over `g`.
    pub fn new(g: &'g Digraph) -> Self {
        Self {
            graph: g,
            rows: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// Distance row from `u` (memoised BFS).
    pub fn distances_from(&self, u: NodeId) -> std::rc::Rc<Vec<Distance>> {
        let mut rows = self.rows.borrow_mut();
        rows.entry(u)
            .or_insert_with(|| std::rc::Rc::new(bfs_distances(self.graph, u)))
            .clone()
    }

    /// Hop distance from `u` to `v`, or [`INFINITE_DISTANCE`].
    pub fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.distances_from(u)[v as usize]
    }

    /// True if `v` is reachable from `u`.
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v) != INFINITE_DISTANCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_reachable;

    fn sample() -> Digraph {
        // 0 -> 1 -> 2 -> 0 (cycle), 2 -> 3 -> 4, isolated 5
        Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn closure_matches_bfs_reachability() {
        let g = sample();
        let tc = TransitiveClosure::build(&g);
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert_eq!(tc.reaches(u, v), is_reachable(&g, u, v), "pair {u},{v}");
            }
        }
    }

    #[test]
    fn closure_is_reflexive() {
        let g = sample();
        let tc = TransitiveClosure::build(&g);
        for u in 0..6u32 {
            assert!(tc.reaches(u, u));
        }
    }

    #[test]
    fn descendants_sorted_and_complete() {
        let g = sample();
        let tc = TransitiveClosure::build(&g);
        assert_eq!(tc.descendants(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(tc.descendants(4), vec![4]);
        assert_eq!(tc.descendants(5), vec![5]);
    }

    #[test]
    fn pair_count() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let tc = TransitiveClosure::build(&g);
        // rows: {0,1,2}, {1,2}, {2} -> 6 pairs
        assert_eq!(tc.pair_count(), 6);
        assert_eq!(tc.materialized_bytes(), 48);
    }

    #[test]
    fn distance_oracle_matches_bfs() {
        let g = sample();
        let oracle = DistanceOracle::new(&g);
        assert_eq!(oracle.distance(0, 4), 4);
        assert_eq!(oracle.distance(2, 1), 2); // through the cycle
        assert_eq!(oracle.distance(4, 0), INFINITE_DISTANCE);
        assert!(oracle.reaches(0, 3));
        assert!(!oracle.reaches(5, 0));
        // memoised second call
        assert_eq!(oracle.distance(0, 4), 4);
    }
}
