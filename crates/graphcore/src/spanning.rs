//! Spanning forests and the "almost a tree" analysis behind Maximal PPO.
//!
//! The pre/postorder index requires its input to be a forest of rooted
//! trees: every node has at most one parent and there are no cycles. FliX's
//! *Maximal PPO* configuration (paper §4.3) removes a hopefully-small set of
//! edges until that holds, indexes the forest with PPO, and lets the query
//! evaluator chase the removed edges at run time. This module computes the
//! spanning forest and the edges that have to be removed.

use crate::digraph::{Digraph, NodeId};

/// Result of analysing how far a digraph is from being a forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestCheck {
    /// True if the input already is a forest (no edge must be removed).
    pub is_forest: bool,
    /// Roots of the spanning forest (nodes without a kept parent).
    pub roots: Vec<NodeId>,
    /// `parent[u]` is the kept tree parent of `u`, or `u32::MAX` for roots.
    pub parent: Vec<NodeId>,
    /// Edges of the input graph that are *not* part of the spanning forest.
    /// Removing exactly these makes the graph a forest.
    pub removed_edges: Vec<(NodeId, NodeId)>,
}

impl ForestCheck {
    /// Fraction of edges that had to be removed (0.0 for a forest).
    pub fn removal_ratio(&self, total_edges: usize) -> f64 {
        if total_edges == 0 {
            0.0
        } else {
            self.removed_edges.len() as f64 / total_edges as f64
        }
    }
}

/// Computes a BFS spanning forest of `g`.
///
/// Roots are chosen as the in-degree-0 nodes first (natural document roots),
/// then any node still unvisited (cycle entry points), in ascending id order
/// so the result is deterministic. Every non-forest edge lands in
/// `removed_edges`.
pub fn spanning_forest(g: &Digraph) -> ForestCheck {
    let n = g.node_count();
    let mut parent = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut roots = Vec::new();
    let mut queue = std::collections::VecDeque::new();

    let grow = |start: NodeId,
                visited: &mut Vec<bool>,
                parent: &mut Vec<NodeId>,
                queue: &mut std::collections::VecDeque<NodeId>| {
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.successors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    parent[v as usize] = u;
                    queue.push_back(v);
                }
            }
        }
    };

    for u in 0..n as NodeId {
        if g.in_degree(u) == 0 && !visited[u as usize] {
            roots.push(u);
            grow(u, &mut visited, &mut parent, &mut queue);
        }
    }
    for u in 0..n as NodeId {
        if !visited[u as usize] {
            roots.push(u);
            grow(u, &mut visited, &mut parent, &mut queue);
        }
    }

    let mut removed = Vec::new();
    for (u, v) in g.edges() {
        if parent[v as usize] != u {
            removed.push((u, v));
        }
    }
    ForestCheck {
        is_forest: removed.is_empty(),
        roots,
        parent,
        removed_edges: removed,
    }
}

/// Convenience wrapper returning only the edges that violate forest shape.
pub fn tree_violations(g: &Digraph) -> Vec<(NodeId, NodeId)> {
    spanning_forest(g).removed_edges
}

/// True if `g` is a forest of rooted trees: every node has in-degree at most
/// one and there is no cycle.
pub fn is_forest(g: &Digraph) -> bool {
    if g.nodes().any(|u| g.in_degree(u) > 1) {
        return false;
    }
    crate::topo::topological_order(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proper_tree_is_forest() {
        let g = Digraph::from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert!(is_forest(&g));
        let check = spanning_forest(&g);
        assert!(check.is_forest);
        assert_eq!(check.roots, vec![0]);
        assert!(check.removed_edges.is_empty());
        assert_eq!(check.parent[3], 1);
    }

    #[test]
    fn diamond_needs_one_removal() {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(!is_forest(&g));
        let check = spanning_forest(&g);
        assert!(!check.is_forest);
        assert_eq!(check.removed_edges.len(), 1);
        // node 3 keeps exactly one parent
        assert!(check.parent[3] == 1 || check.parent[3] == 2);
    }

    #[test]
    fn cycle_without_indegree_zero_gets_root() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let check = spanning_forest(&g);
        assert_eq!(check.roots, vec![0]);
        // the back edge 2 -> 0 must be removed
        assert_eq!(check.removed_edges, vec![(2, 0)]);
    }

    #[test]
    fn multiple_disjoint_trees() {
        let g = Digraph::from_edges(6, [(0, 1), (0, 2), (3, 4), (3, 5)]);
        let check = spanning_forest(&g);
        assert!(check.is_forest);
        assert_eq!(check.roots, vec![0, 3]);
    }

    #[test]
    fn removal_makes_it_a_forest() {
        // dense-ish graph; removing the reported edges must yield a forest
        let g = Digraph::from_edges(
            6,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 1),
                (0, 4),
                (4, 5),
                (2, 5),
                (5, 0),
            ],
        );
        let check = spanning_forest(&g);
        let kept: Vec<(NodeId, NodeId)> = g
            .edges()
            .filter(|e| !check.removed_edges.contains(e))
            .collect();
        let pruned = Digraph::from_edges(6, kept);
        assert!(is_forest(&pruned));
        assert_eq!(
            pruned.edge_count() + check.removed_edges.len(),
            g.edge_count()
        );
    }

    #[test]
    fn removal_ratio() {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let check = spanning_forest(&g);
        assert!((check.removal_ratio(g.edge_count()) - 0.25).abs() < 1e-9);
        assert_eq!(check.removal_ratio(0), 0.0);
    }

    #[test]
    fn isolated_nodes_are_their_own_roots() {
        let g = Digraph::from_edges(3, []);
        let check = spanning_forest(&g);
        assert!(check.is_forest);
        assert_eq!(check.roots, vec![0, 1, 2]);
    }
}
