//! Compact directed graph in compressed-sparse-row (CSR) form.
//!
//! Graphs are constructed through [`DigraphBuilder`] (cheap edge appends,
//! duplicate tolerance) and then frozen into a [`Digraph`] that stores both
//! forward and reverse adjacency as two flat arrays each. All index
//! structures in the workspace operate on frozen graphs.

use serde::{Deserialize, Serialize};

/// Dense node identifier. Nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = u32;

/// Mutable adjacency-list graph used while loading or generating data.
#[derive(Debug, Clone, Default)]
pub struct DigraphBuilder {
    /// `edges[u]` holds the out-neighbours of `u` in insertion order.
    edges: Vec<Vec<NodeId>>,
}

impl DigraphBuilder {
    /// Creates a builder with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            edges: vec![Vec::new(); n],
        }
    }

    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently known to the builder.
    pub fn node_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.edges.push(Vec::new());
        (self.edges.len() - 1) as NodeId
    }

    /// Ensures nodes `0..=id` exist.
    pub fn ensure_node(&mut self, id: NodeId) {
        if (id as usize) >= self.edges.len() {
            self.edges.resize(id as usize + 1, Vec::new());
        }
    }

    /// Adds the directed edge `u -> v`, growing the node set as needed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.ensure_node(u.max(v));
        self.edges[u as usize].push(v);
    }

    /// Freezes the builder into CSR form. Duplicate edges and self loops are
    /// removed; adjacency lists come out sorted, which makes neighbour scans
    /// cache-friendly and deterministic.
    pub fn build(mut self) -> Digraph {
        let n = self.edges.len();
        let mut edge_count = 0usize;
        for list in &mut self.edges {
            list.sort_unstable();
            list.dedup();
            edge_count += list.len();
        }
        let mut fwd_off = Vec::with_capacity(n + 1);
        let mut fwd = Vec::with_capacity(edge_count);
        fwd_off.push(0u32);
        for (u, list) in self.edges.iter().enumerate() {
            for &v in list {
                if v as usize != u {
                    fwd.push(v);
                }
            }
            fwd_off.push(fwd.len() as u32);
        }
        // Reverse adjacency via counting sort over target ids.
        let mut indeg = vec![0u32; n];
        for &v in &fwd {
            indeg[v as usize] += 1;
        }
        let mut rev_off = Vec::with_capacity(n + 1);
        rev_off.push(0u32);
        for &d in &indeg {
            let prev = rev_off.last().copied().unwrap_or(0);
            rev_off.push(prev + d);
        }
        let mut rev = vec![0 as NodeId; fwd.len()];
        let mut cursor: Vec<u32> = rev_off[..n].to_vec();
        for u in 0..n {
            let (s, e) = (fwd_off[u] as usize, fwd_off[u + 1] as usize);
            for &v in &fwd[s..e] {
                rev[cursor[v as usize] as usize] = u as NodeId;
                cursor[v as usize] += 1;
            }
        }
        Digraph {
            fwd_off,
            fwd,
            rev_off,
            rev,
        }
    }
}

/// Immutable CSR digraph with forward and reverse adjacency.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Digraph {
    fwd_off: Vec<u32>,
    fwd: Vec<NodeId>,
    rev_off: Vec<u32>,
    rev: Vec<NodeId>,
}

impl Digraph {
    /// Builds a graph directly from an edge list over `n` nodes.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = DigraphBuilder::with_nodes(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.fwd_off.len() - 1
    }

    /// Number of (deduplicated) directed edges.
    pub fn edge_count(&self) -> usize {
        self.fwd.len()
    }

    /// Out-neighbours of `u`, sorted ascending.
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        let (s, e) = (self.fwd_off[u as usize], self.fwd_off[u as usize + 1]);
        &self.fwd[s as usize..e as usize]
    }

    /// In-neighbours of `u`.
    pub fn predecessors(&self, u: NodeId) -> &[NodeId] {
        let (s, e) = (self.rev_off[u as usize], self.rev_off[u as usize + 1]);
        &self.rev[s as usize..e as usize]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.successors(u).len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.predecessors(u).len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterator over all edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// True if the directed edge `u -> v` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// A graph with all edges reversed. The reverse CSR arrays are reused.
    pub fn reversed(&self) -> Digraph {
        // Reversed graph: swap forward/reverse arrays, but reverse adjacency
        // lists are grouped by target already, and within a group ordered by
        // source ascending (counting-sort order), so they are valid sorted
        // CSR lists.
        Digraph {
            fwd_off: self.rev_off.clone(),
            fwd: self.rev.clone(),
            rev_off: self.fwd_off.clone(),
            rev: self.fwd.clone(),
        }
    }

    /// Extracts the node-induced subgraph on `keep`. Returns the subgraph and
    /// the mapping `local -> global` (index = local id).
    ///
    /// `keep` may be in any order; it is deduplicated internally.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Digraph, Vec<NodeId>) {
        let mut locals = keep.to_vec();
        locals.sort_unstable();
        locals.dedup();
        let mut global_to_local = vec![u32::MAX; self.node_count()];
        for (i, &g) in locals.iter().enumerate() {
            global_to_local[g as usize] = i as u32;
        }
        let mut b = DigraphBuilder::with_nodes(locals.len());
        for (i, &g) in locals.iter().enumerate() {
            for &v in self.successors(g) {
                let lv = global_to_local[v as usize];
                if lv != u32::MAX {
                    b.add_edge(i as NodeId, lv);
                }
            }
        }
        (b.build(), locals)
    }

    /// Approximate in-memory footprint in bytes (CSR arrays only).
    pub fn size_bytes(&self) -> usize {
        4 * (self.fwd_off.len() + self.fwd.len() + self.rev_off.len() + self.rev.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_basic_shape() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(3), &[] as &[NodeId]);
        assert_eq!(g.predecessors(3), &[1, 2]);
        assert_eq!(g.predecessors(0), &[] as &[NodeId]);
    }

    #[test]
    fn duplicate_edges_and_self_loops_removed() {
        let g = Digraph::from_edges(3, [(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.successors(1), &[2]);
    }

    #[test]
    fn has_edge_uses_sorted_lists() {
        let g = diamond();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn reversed_graph_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.successors(3), &[1, 2]);
        assert_eq!(r.predecessors(1), &[3]);
        assert!(r.has_edge(1, 0));
        // double reversal is identity
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn degrees_and_edge_iter() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.node_count(), 3);
        // edges inside {0,1,3}: 0->1 and 1->3, remapped to 0->1, 1->2
        assert_eq!(sub.successors(0), &[1]);
        assert_eq!(sub.successors(1), &[2]);
        assert_eq!(sub.successors(2), &[] as &[NodeId]);
    }

    #[test]
    fn builder_grows_on_demand() {
        let mut b = DigraphBuilder::new();
        b.add_edge(5, 2);
        assert_eq!(b.node_count(), 6);
        let id = b.add_node();
        assert_eq!(id, 6);
        let g = b.build();
        assert_eq!(g.node_count(), 7);
        assert!(g.has_edge(5, 2));
    }

    #[test]
    fn empty_graph() {
        let g = DigraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
