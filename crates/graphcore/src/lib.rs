//! Directed-graph substrate used by every index in the FliX workspace.
//!
//! The crate provides:
//!
//! * a compact [`Digraph`] (CSR adjacency with forward and reverse edges),
//! * classic traversals ([`traversal`]): BFS layers, unit-weight shortest
//!   paths, multi-source searches, and a general Dijkstra,
//! * [`scc`]: Tarjan strongly-connected components and graph condensation,
//! * [`topo`]: topological ordering of DAGs,
//! * [`spanning`]: spanning forests, tree/forest detection, and the
//!   "almost a tree" edge-removal analysis used by FliX's *Maximal PPO*
//!   configuration,
//! * [`partition`]: the greedy size-capped edge-cut partitioner used by
//!   HOPI's divide-and-conquer index builder, plus a condensation-aware
//!   variant that never splits an SCC,
//! * [`pool`]: a scoped worker pool with deterministic job-ordered results,
//!   shared by every parallel build stage so one thread budget governs the
//!   whole build,
//! * [`closure`]: exact transitive closure and all-pairs distances, used as
//!   a correctness oracle by tests and by the error-rate experiment,
//! * [`bitset`]: a small fixed-size bitset backing the closure computation.
//!
//! Nodes are dense `u32` indices (see [`NodeId`]); all algorithms are
//! allocation-conscious and deterministic.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Fixed-size bitsets backing the closure computation.
pub mod bitset;
/// Exact transitive closure and all-pairs distance oracles.
pub mod closure;
/// The compact CSR digraph and its builder.
pub mod digraph;
/// Cheap estimators for closure size and descendant counts.
pub mod estimate;
/// Greedy size-capped edge-cut graph partitioning.
pub mod partition;
/// Scoped worker pool with deterministic, job-ordered results.
pub mod pool;
/// Tarjan strongly-connected components and condensation.
pub mod scc;
/// Spanning forests and "almost a tree" edge-removal analysis.
pub mod spanning;
/// Topological ordering of DAGs.
pub mod topo;
/// BFS/DFS traversals, shortest paths, and Dijkstra.
pub mod traversal;

pub use bitset::BitSet;
pub use closure::{DistanceOracle, TransitiveClosure};
pub use digraph::{Digraph, DigraphBuilder, NodeId};
pub use estimate::{estimate_ancestor_counts, estimate_closure_size, estimate_descendant_counts};
pub use partition::{partition_condensation, partition_greedy, Partitioning};
pub use scc::{condensation, tarjan_scc, Condensation};
pub use spanning::is_forest;
pub use spanning::{spanning_forest, tree_violations, ForestCheck};
pub use topo::topological_order;
pub use traversal::{
    bfs_distances, bfs_from, dfs_preorder, dijkstra, is_reachable, multi_source_bfs, Distance,
    INFINITE_DISTANCE,
};
