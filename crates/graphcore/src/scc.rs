//! Strongly-connected components (iterative Tarjan) and condensation.
//!
//! HOPI builds its two-hop cover over the condensation of the element graph:
//! all nodes of one SCC share reachability, so the cover only needs to be
//! computed on the (acyclic) component graph.

use crate::digraph::{Digraph, DigraphBuilder, NodeId};

/// Computes strongly connected components with an iterative Tarjan.
///
/// Returns `comp_of`, mapping each node to its component id. Component ids
/// are assigned in reverse topological order of the condensation (i.e. a
/// component's id is **greater** than the ids of components it can reach
/// through... actually: Tarjan emits sinks first, so `comp_of[u] <
/// comp_of[v]` whenever the component of `u` is reachable *from* the
/// component of `v` — callers should not rely on more than "sinks first").
pub fn tarjan_scc(g: &Digraph) -> Vec<u32> {
    let n = g.node_count();
    let mut index = vec![u32::MAX; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![u32::MAX; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS machine: (node, next-successor-position).
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != u32::MAX {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut pos)) = call.last_mut() {
            let succs = g.successors(u);
            if *pos < succs.len() {
                let v = succs[*pos];
                *pos += 1;
                if index[v as usize] == u32::MAX {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    call.push((v, 0));
                } else if on_stack[v as usize] {
                    low[u as usize] = low[u as usize].min(index[v as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                }
                if low[u as usize] == index[u as usize] {
                    // u is the root of an SCC; pop it off the stack.
                    // The root `u` is always on the stack, so the loop
                    // terminates before the stack can run dry.
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp_count;
                        if w == u {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    comp_of
}

/// The condensation of a digraph: one node per SCC, edges between distinct
/// components, plus the member lists.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component DAG.
    pub dag: Digraph,
    /// `comp_of[node] = component id`.
    pub comp_of: Vec<u32>,
    /// `members[comp] = nodes of that component` (ascending).
    pub members: Vec<Vec<NodeId>>,
}

impl Condensation {
    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }
}

/// Builds the condensation (component DAG) of `g`.
pub fn condensation(g: &Digraph) -> Condensation {
    let comp_of = tarjan_scc(g);
    let comp_count = comp_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut members = vec![Vec::new(); comp_count];
    for u in 0..g.node_count() {
        members[comp_of[u] as usize].push(u as NodeId);
    }
    let mut b = DigraphBuilder::with_nodes(comp_count);
    for (u, v) in g.edges() {
        let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
        if cu != cv {
            b.add_edge(cu, cv);
        }
    }
    Condensation {
        dag: b.build(),
        comp_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_reachable;

    #[test]
    fn single_cycle_is_one_component() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let c = tarjan_scc(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = tarjan_scc(&g);
        let mut ids = c.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn two_cycles_bridge() {
        // cycle {0,1}, cycle {2,3}, bridge 1 -> 2
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let cond = condensation(&g);
        assert_eq!(cond.component_count(), 2);
        assert_eq!(cond.dag.edge_count(), 1);
        let c01 = cond.comp_of[0];
        let c23 = cond.comp_of[2];
        assert_eq!(cond.comp_of[1], c01);
        assert_eq!(cond.comp_of[3], c23);
        assert!(cond.dag.has_edge(c01, c23));
        assert_eq!(cond.members[c01 as usize], vec![0, 1]);
    }

    #[test]
    fn condensation_is_acyclic() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let cond = condensation(&g);
        assert_eq!(cond.component_count(), 2);
        // No component can reach itself through the DAG edges.
        for c in cond.dag.nodes() {
            for &s in cond.dag.successors(c) {
                assert!(!is_reachable(&cond.dag, s, c));
            }
        }
    }

    #[test]
    fn mutual_reachability_iff_same_component() {
        let g = Digraph::from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (5, 6)]);
        let c = tarjan_scc(&g);
        for u in 0..7u32 {
            for v in 0..7u32 {
                let mutual = is_reachable(&g, u, v) && is_reachable(&g, v, u);
                assert_eq!(mutual, c[u as usize] == c[v as usize], "pair {u},{v}");
            }
        }
    }

    #[test]
    fn empty_graph_condensation() {
        let g = DigraphBuilder::new().build();
        let cond = condensation(&g);
        assert_eq!(cond.component_count(), 0);
    }
}
