//! Topological ordering (Kahn's algorithm).

use crate::digraph::{Digraph, NodeId};

/// Returns a topological order of `g`, or `None` if the graph has a cycle.
///
/// Ties are broken by ascending node id, making the order deterministic.
pub fn topological_order(g: &Digraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg: Vec<u32> = (0..n).map(|u| g.in_degree(u as NodeId) as u32).collect();
    // A binary heap keyed on Reverse(id) gives smallest-id-first pops.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(u, _)| std::cmp::Reverse(u as NodeId))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(u)) = ready.pop() {
        order.push(u);
        for &v in g.successors(u) {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                ready.push(std::cmp::Reverse(v));
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_a_dag() {
        let g = Digraph::from_edges(5, [(0, 2), (1, 2), (2, 3), (2, 4)]);
        let order = topological_order(&g).expect("dag");
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &u) in order.iter().enumerate() {
                p[u as usize] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u as usize] < pos[v as usize], "{u} before {v}");
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let g = Digraph::from_edges(4, [(0, 3), (1, 3), (2, 3)]);
        assert_eq!(topological_order(&g).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_returns_none() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn empty_graph_is_trivially_ordered() {
        let g = Digraph::from_edges(0, []);
        assert_eq!(topological_order(&g).unwrap(), Vec::<NodeId>::new());
    }
}
