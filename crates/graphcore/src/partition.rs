//! Greedy size-capped graph partitioning (HOPI's divide step).
//!
//! HOPI's divide-and-conquer index builder first splits the element graph
//! into partitions whose size does not exceed a configurable cap while
//! keeping the number of partition-crossing edges small (paper §4.3,
//! "Unconnected HOPI"). We grow partitions by undirected BFS region growing,
//! seeding each region at the unassigned node with the smallest total degree
//! (peripheral nodes first keeps dense cores together), and then run a
//! single boundary-refinement sweep that moves nodes to the neighbouring
//! partition holding the majority of their neighbours when that reduces the
//! cut and respects the size cap.

use crate::digraph::{Digraph, NodeId};
use crate::scc::Condensation;

/// A partitioning of a graph's nodes into size-capped blocks.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// `part_of[u]` = partition id of node `u`.
    pub part_of: Vec<u32>,
    /// `parts[p]` = nodes of partition `p`, ascending.
    pub parts: Vec<Vec<NodeId>>,
    /// Number of directed edges whose endpoints lie in different partitions.
    pub cut_edges: usize,
}

impl Partitioning {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no partitions (empty graph).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    fn recount_cut(&mut self, g: &Digraph) {
        self.cut_edges = g
            .edges()
            .filter(|&(u, v)| self.part_of[u as usize] != self.part_of[v as usize])
            .count();
    }
}

/// Partitions `g` into blocks of at most `max_size` nodes.
///
/// `max_size` must be at least 1. The result is deterministic.
pub fn partition_greedy(g: &Digraph, max_size: usize) -> Partitioning {
    assert!(max_size >= 1, "partition size cap must be positive");
    let n = g.node_count();
    let mut part_of = vec![u32::MAX; n];
    let mut parts: Vec<Vec<NodeId>> = Vec::new();

    // Seed order: ascending total degree, then id.
    let mut seeds: Vec<NodeId> = (0..n as NodeId).collect();
    seeds.sort_by_key(|&u| (g.out_degree(u) + g.in_degree(u), u));

    let mut queue = std::collections::VecDeque::new();
    for &seed in &seeds {
        if part_of[seed as usize] != u32::MAX {
            continue;
        }
        let pid = parts.len() as u32;
        let mut block = Vec::new();
        part_of[seed as usize] = pid;
        queue.clear();
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            block.push(u);
            if block.len() + queue.len() >= max_size {
                // Stop admitting once the block (plus already-claimed queue
                // entries) reaches the cap; drain the queue into the block.
                continue;
            }
            for &v in g.successors(u).iter().chain(g.predecessors(u)) {
                if part_of[v as usize] == u32::MAX && block.len() + queue.len() < max_size {
                    part_of[v as usize] = pid;
                    queue.push_back(v);
                }
            }
        }
        block.sort_unstable();
        parts.push(block);
    }

    let mut p = Partitioning {
        part_of,
        parts,
        cut_edges: 0,
    };
    consolidate_small_blocks(g, &mut p, max_size);
    refine_boundary(g, &mut p, max_size);
    p.recount_cut(g);
    p
}

/// Partitions `g` into blocks of at most `max_size` nodes that never split
/// a strongly connected component: blocks are unions of whole SCCs of the
/// supplied condensation, grown over the component DAG by weighted
/// undirected region growing (component weight = member count). HOPI's
/// staged cover builder relies on this so every cycle stays inside one
/// partition and only condensation (DAG) edges cross blocks.
///
/// The cap is respected except when a single SCC alone exceeds it — such a
/// component keeps its own oversized block rather than being torn apart.
/// Deterministic for a given graph.
pub fn partition_condensation(g: &Digraph, cond: &Condensation, max_size: usize) -> Partitioning {
    assert!(max_size >= 1, "partition size cap must be positive");
    let k = cond.component_count();
    let dag = &cond.dag;
    let weight: Vec<usize> = cond.members.iter().map(Vec::len).collect();
    let mut block_of = vec![u32::MAX; k];
    let mut comp_blocks: Vec<Vec<u32>> = Vec::new();
    let mut block_weight: Vec<usize> = Vec::new();

    // Seed order mirrors `partition_greedy`: peripheral components first.
    let mut seeds: Vec<u32> = (0..k as u32).collect();
    seeds.sort_by_key(|&c| (dag.out_degree(c) + dag.in_degree(c), c));

    let mut queue = std::collections::VecDeque::new();
    for &seed in &seeds {
        if block_of[seed as usize] != u32::MAX {
            continue;
        }
        let pid = comp_blocks.len() as u32;
        let mut w = weight[seed as usize];
        let mut block = Vec::new();
        block_of[seed as usize] = pid;
        queue.clear();
        queue.push_back(seed);
        while let Some(c) = queue.pop_front() {
            block.push(c);
            for &nb in dag.successors(c).iter().chain(dag.predecessors(c)) {
                if block_of[nb as usize] == u32::MAX && w + weight[nb as usize] <= max_size {
                    block_of[nb as usize] = pid;
                    w += weight[nb as usize];
                    queue.push_back(nb);
                }
            }
        }
        comp_blocks.push(block);
        block_weight.push(w);
    }

    // Fold small blocks into the neighbouring block with the most DAG
    // adjacencies that still has room (same policy as the element-level
    // consolidation above, but weighted by member counts).
    let small_bar = (max_size / 4).max(1);
    let mut order: Vec<usize> = (0..comp_blocks.len()).collect();
    order.sort_by_key(|&b| (block_weight[b], b));
    for &b in &order {
        let wb = block_weight[b];
        if wb == 0 || wb > small_bar {
            continue;
        }
        let mut tally: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &c in &comp_blocks[b] {
            for &nb in dag.successors(c).iter().chain(dag.predecessors(c)) {
                let t = block_of[nb as usize];
                if t as usize != b {
                    *tally.entry(t).or_insert(0) += 1;
                }
            }
        }
        let target = tally
            .iter()
            .filter(|&(&t, _)| block_weight[t as usize] + wb <= max_size)
            .max_by_key(|&(&t, &c)| (c, std::cmp::Reverse(t)))
            .map(|(&t, _)| t);
        if let Some(t) = target {
            let moved = std::mem::take(&mut comp_blocks[b]);
            block_weight[t as usize] += wb;
            block_weight[b] = 0;
            for &c in &moved {
                block_of[c as usize] = t;
            }
            comp_blocks[t as usize].extend(moved);
        }
    }

    // Expand component blocks to element-level partitions, dropping the
    // emptied ones and compacting partition ids.
    let mut part_of = vec![u32::MAX; g.node_count()];
    let mut parts: Vec<Vec<NodeId>> = Vec::new();
    for block in comp_blocks.iter().filter(|b| !b.is_empty()) {
        let pid = parts.len() as u32;
        let mut nodes: Vec<NodeId> = Vec::new();
        for &c in block {
            nodes.extend_from_slice(&cond.members[c as usize]);
        }
        nodes.sort_unstable();
        for &u in &nodes {
            part_of[u as usize] = pid;
        }
        parts.push(nodes);
    }
    let mut p = Partitioning {
        part_of,
        parts,
        cut_edges: 0,
    };
    p.recount_cut(g);
    p
}

/// Region growing leaves stragglers behind: once the early regions hit the
/// cap, nodes whose neighbours are all claimed end up as tiny blocks. Fold
/// each small block into the neighbouring partition with the most
/// connections that still has room; blocks with no such neighbour are
/// first-fit bin-packed together (they carry no internal edges worth
/// preserving).
fn consolidate_small_blocks(g: &Digraph, p: &mut Partitioning, max_size: usize) {
    let small_bar = (max_size / 4).max(1);
    let mut sizes: Vec<usize> = p.parts.iter().map(Vec::len).collect();
    // Process ascending by size so the smallest fragments merge first.
    let mut order: Vec<usize> = (0..p.parts.len()).collect();
    order.sort_by_key(|&b| sizes[b]);
    let mut orphans: Vec<usize> = Vec::new();
    for &b in &order {
        let size = p.parts[b].len();
        if size == 0 || size > small_bar || sizes[b] != size {
            continue; // grown since, emptied, or big enough
        }
        let mut tally: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &u in &p.parts[b] {
            for &v in g.successors(u).iter().chain(g.predecessors(u)) {
                let pv = p.part_of[v as usize];
                if pv as usize != b {
                    *tally.entry(pv).or_insert(0) += 1;
                }
            }
        }
        let target = tally
            .iter()
            .filter(|&(&t, _)| sizes[t as usize] + size <= max_size)
            .max_by_key(|&(&t, &c)| (c, std::cmp::Reverse(t)))
            .map(|(&t, _)| t);
        match target {
            Some(t) => {
                let moved = std::mem::take(&mut p.parts[b]);
                sizes[t as usize] += moved.len();
                sizes[b] = 0;
                for &u in &moved {
                    p.part_of[u as usize] = t;
                }
                p.parts[t as usize].extend(moved);
                p.parts[t as usize].sort_unstable();
            }
            None => orphans.push(b),
        }
    }
    // First-fit bin packing of the orphan blocks among themselves.
    let mut bins: Vec<(usize, usize)> = Vec::new(); // (target block, size)
    for b in orphans {
        let size = p.parts[b].len();
        if size == 0 {
            continue;
        }
        match bins
            .iter_mut()
            .find(|(t, s)| *t != b && s + size <= max_size)
        {
            Some((t, s)) => {
                let moved = std::mem::take(&mut p.parts[b]);
                for &u in &moved {
                    p.part_of[u as usize] = *t as u32;
                }
                let tb = *t;
                p.parts[tb].extend(moved);
                p.parts[tb].sort_unstable();
                *s += size;
            }
            None => bins.push((b, size)),
        }
    }
    // Drop emptied blocks and compact partition ids.
    let mut remap = vec![u32::MAX; p.parts.len()];
    let mut new_parts = Vec::new();
    for (old, block) in std::mem::take(&mut p.parts).into_iter().enumerate() {
        if !block.is_empty() {
            remap[old] = new_parts.len() as u32;
            new_parts.push(block);
        }
    }
    for pid in p.part_of.iter_mut() {
        *pid = remap[*pid as usize];
    }
    p.parts = new_parts;
}

/// One sweep of boundary refinement: move a node to the neighbouring
/// partition that holds strictly more of its neighbours, when the target has
/// room. This is a light-weight stand-in for the paper's (unspecified)
/// partition post-processing.
fn refine_boundary(g: &Digraph, p: &mut Partitioning, max_size: usize) {
    let n = g.node_count();
    let mut sizes: Vec<usize> = p.parts.iter().map(Vec::len).collect();
    let mut tally: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for u in 0..n as NodeId {
        let home = p.part_of[u as usize];
        if sizes[home as usize] <= 1 {
            continue; // never empty a partition
        }
        tally.clear();
        for &v in g.successors(u).iter().chain(g.predecessors(u)) {
            *tally.entry(p.part_of[v as usize]).or_insert(0) += 1;
        }
        let home_links = tally.get(&home).copied().unwrap_or(0);
        let best = tally
            .iter()
            .filter(|&(&pid, _)| pid != home && sizes[pid as usize] < max_size)
            .max_by_key(|&(&pid, &c)| (c, std::cmp::Reverse(pid)))
            .map(|(&pid, &c)| (pid, c));
        if let Some((target, c)) = best {
            if c > home_links {
                p.part_of[u as usize] = target;
                sizes[home as usize] -= 1;
                sizes[target as usize] += 1;
            }
        }
    }
    // Rebuild member lists from part_of, dropping empty blocks and
    // compacting ids.
    let mut remap = vec![u32::MAX; p.parts.len()];
    let mut new_parts: Vec<Vec<NodeId>> = Vec::new();
    for u in 0..n as NodeId {
        let old = p.part_of[u as usize];
        if remap[old as usize] == u32::MAX {
            remap[old as usize] = new_parts.len() as u32;
            new_parts.push(Vec::new());
        }
        let np = remap[old as usize];
        p.part_of[u as usize] = np;
        new_parts[np as usize].push(u);
    }
    p.parts = new_parts;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(g: &Digraph, p: &Partitioning, max_size: usize) {
        // every node assigned exactly once
        let mut seen = vec![false; g.node_count()];
        for (pid, block) in p.parts.iter().enumerate() {
            assert!(!block.is_empty(), "partition {pid} empty");
            assert!(block.len() <= max_size, "partition {pid} over cap");
            for &u in block {
                assert_eq!(p.part_of[u as usize], pid as u32);
                assert!(!seen[u as usize]);
                seen[u as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn respects_size_cap() {
        let g = Digraph::from_edges(10, (0..9).map(|i| (i, i + 1)));
        for cap in [1, 2, 3, 5, 10, 100] {
            let p = partition_greedy(&g, cap);
            assert_valid(&g, &p, cap);
        }
    }

    #[test]
    fn chain_partitions_are_contiguous_blocks() {
        let g = Digraph::from_edges(9, (0..8).map(|i| (i, i + 1)));
        let p = partition_greedy(&g, 3);
        assert_eq!(p.len(), 3);
        // a chain of 9 in caps of 3 cuts exactly 2 edges
        assert_eq!(p.cut_edges, 2);
    }

    #[test]
    fn disconnected_components_do_not_merge_edges() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let p = partition_greedy(&g, 3);
        assert_valid(&g, &p, 3);
        assert_eq!(p.cut_edges, 0);
    }

    #[test]
    fn dense_core_stays_together() {
        // A 4-clique (directed both ways) plus a pendant chain.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        edges.extend([(3, 4), (4, 5), (5, 6)]);
        let g = Digraph::from_edges(7, edges);
        let p = partition_greedy(&g, 4);
        assert_valid(&g, &p, 4);
        // the clique nodes must share one partition
        let pid = p.part_of[0];
        for u in 1..4 {
            assert_eq!(p.part_of[u], pid, "clique node {u} separated");
        }
    }

    #[test]
    fn single_partition_when_cap_exceeds_graph() {
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = partition_greedy(&g, 50);
        assert_eq!(p.len(), 1);
        assert_eq!(p.cut_edges, 0);
    }

    #[test]
    fn no_straggler_fragmentation() {
        // A dense-ish random-like graph: region growing leaves stragglers,
        // which consolidation must fold away. With n nodes and cap c the
        // partition count must stay near ceil(n/c).
        let n = 600u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| {
                [
                    (i, (i * 7 + 1) % n),
                    (i, (i * 13 + 5) % n),
                    ((i * 31 + 2) % n, i),
                ]
            })
            .collect();
        let g = Digraph::from_edges(n as usize, edges);
        let cap = 100;
        let p = partition_greedy(&g, cap);
        assert_valid(&g, &p, cap);
        assert!(
            p.len() <= n as usize / cap + 3,
            "fragmented into {} partitions",
            p.len()
        );
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::from_edges(0, []);
        let p = partition_greedy(&g, 4);
        assert!(p.is_empty());
        assert_eq!(p.cut_edges, 0);
    }

    mod condensation_blocks {
        use super::*;
        use crate::scc::condensation;

        fn assert_scc_intact(p: &Partitioning, comp_of: &[u32]) {
            // No SCC may be split across blocks.
            for (u, &cu) in comp_of.iter().enumerate() {
                for (v, &cv) in comp_of.iter().enumerate() {
                    if cu == cv {
                        assert_eq!(
                            p.part_of[u], p.part_of[v],
                            "SCC of {u},{v} split across partitions"
                        );
                    }
                }
            }
        }

        #[test]
        fn respects_cap_and_keeps_sccs_whole() {
            // Three 3-cycles chained by single edges, plus a tail.
            let mut edges = Vec::new();
            for base in [0u32, 3, 6] {
                edges.extend([(base, base + 1), (base + 1, base + 2), (base + 2, base)]);
            }
            edges.extend([(2, 3), (5, 6), (8, 9), (9, 10)]);
            let g = Digraph::from_edges(11, edges);
            let cond = condensation(&g);
            for cap in [3, 4, 6, 11] {
                let p = partition_condensation(&g, &cond, cap);
                assert_valid(&g, &p, cap.max(3));
                assert_scc_intact(&p, &cond.comp_of);
                for block in &p.parts {
                    assert!(block.len() <= cap, "cap {cap} violated: {}", block.len());
                }
            }
        }

        #[test]
        fn oversized_scc_gets_its_own_block() {
            // A 5-cycle cannot fit a cap of 3; it must stay whole anyway.
            let g =
                Digraph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (4, 5), (5, 6)]);
            let cond = condensation(&g);
            let p = partition_condensation(&g, &cond, 3);
            assert_scc_intact(&p, &cond.comp_of);
            let cycle_part = p.part_of[0];
            let cycle_block: usize = p.parts[cycle_part as usize].len();
            assert!(cycle_block >= 5, "cycle torn apart");
        }

        #[test]
        fn cut_counts_only_cross_block_edges() {
            let g =
                Digraph::from_edges(6, [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (1, 2), (3, 4)]);
            let cond = condensation(&g);
            let p = partition_condensation(&g, &cond, 2);
            let manual = g
                .edges()
                .filter(|&(u, v)| p.part_of[u as usize] != p.part_of[v as usize])
                .count();
            assert_eq!(p.cut_edges, manual);
        }

        #[test]
        fn deterministic_and_total() {
            let n = 120u32;
            let edges: Vec<(u32, u32)> = (0..n)
                .flat_map(|i| [(i, (i * 7 + 1) % n), ((i * 13 + 5) % n, i)])
                .collect();
            let g = Digraph::from_edges(n as usize, edges);
            let cond = condensation(&g);
            let a = partition_condensation(&g, &cond, 30);
            let b = partition_condensation(&g, &cond, 30);
            assert_eq!(a.part_of, b.part_of);
            assert_eq!(a.parts, b.parts);
            assert_eq!(a.cut_edges, b.cut_edges);
            let mut seen = vec![false; n as usize];
            for block in &a.parts {
                for &u in block {
                    assert!(!seen[u as usize]);
                    seen[u as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every node assigned");
        }

        #[test]
        fn empty_graph() {
            let g = Digraph::from_edges(0, []);
            let cond = condensation(&g);
            let p = partition_condensation(&g, &cond, 4);
            assert!(p.is_empty());
        }
    }
}
