//! HOPI — a two-hop-cover connection index with distance labels ([18] in
//! the FliX paper, building on Cohen et al.'s 2-hop labels [6]).
//!
//! Every node `v` carries two label sets `L_in(v)` and `L_out(v)` of
//! *(center, distance)* pairs such that there is a path `u -> v` iff
//! `L_out(u) ∩ L_in(v) ≠ ∅`, and the path length is the minimum of
//! `d(u,w) + d(w,v)` over the common centers `w`. Reachability and distance
//! queries are label-set merges; descendant enumerations use an inverted
//! center index.
//!
//! **Construction substitution (documented in DESIGN.md):** the original
//! HOPI computes an approximate minimum 2-hop cover with a set-cover greedy
//! over densest subgraphs of the transitive closure, made tractable by a
//! divide-and-conquer partitioning step. We build the same label structure
//! with pruned breadth-first searches from ranked centers (the technique
//! later formalised as pruned landmark labelling), staged over the SCC
//! condensation exactly as the paper's divide-and-conquer prescribes:
//! partition, cover each partition (in parallel), merge across
//! partition-crossing edges (see [`cover`]). The resulting index has
//! identical query semantics, *exact* distances, and the same asymptotic
//! size behaviour (small for tree-like data, growing with link density),
//! while being robustly fast to build — which is what the paper's
//! experiments need from the HOPI building block.
//!
//! * [`cover`] — the staged (rank / partition / merge / parallel cover)
//!   construction pipeline and its [`StageReport`].
//! * [`labels::HopiIndex`] — the index: build, query, enumerate, size.
//! * [`partitioned::UnconnectedHopi`] — the paper's §4.3 *Unconnected
//!   HOPI*: partition the graph, index each partition separately, and leave
//!   partition-crossing edges to the caller's run-time link chasing.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Staged divide-and-conquer construction of the 2-hop cover.
pub mod cover;
/// The 2-hop label index: construction, queries, enumeration.
pub mod labels;
/// Unconnected HOPI: independent per-partition 2-hop indexes.
pub mod partitioned;

pub use cover::{CoverOptions, StageReport};
pub use labels::{BuildStats, HopiIndex};
pub use partitioned::UnconnectedHopi;
