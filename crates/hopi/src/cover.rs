//! Staged construction of the 2-hop cover.
//!
//! HOPI (paper §2.2) builds its cover by divide and conquer: partition the
//! graph, compute covers per part, merge along partition-crossing edges.
//! This module is that pipeline, made explicit and parallel:
//!
//! 1. **Rank** — condense the graph (Tarjan SCC), estimate every node's
//!    reachable-set sizes with Cohen's randomised estimator, and order
//!    centers by the product of ancestor- and descendant-set estimates
//!    (a 2-hop center covers up to one pair per combination), with degree
//!    and a balanced bit-reversed id as tie-breaks.
//! 2. **Partition** — group whole SCCs along the condensation DAG into
//!    size-capped blocks ([`graphcore::partition_condensation`]); cycles
//!    never cross blocks, so only DAG edges do.
//! 3. **Merge** — a *sequential* pruned-BFS sweep over the border centers
//!    (targets of partition-crossing edges) in rank order, searching the
//!    full graph. Every connection whose shortest path crosses a partition
//!    boundary enters a partition through such a target, so this stage
//!    alone covers all cross-partition reachability at exact distances.
//! 4. **Cover** — per-partition pruned sweeps over the remaining centers,
//!    run **in parallel** on [`graphcore::pool`], each restricted to its
//!    partition's induced subgraph and pruned against the merge stage's
//!    entries.
//!
//! The merge stage must run *before* the per-partition stage: local sweeps
//! legitimately prune against full-graph border entries (they only make
//! local labels smaller), but a border sweep pruned against partition-local
//! entries would stop at nodes whose coverage does not extend to nodes
//! outside that partition, losing cross-partition pairs.
//!
//! **Determinism.** Stage order is fixed; the merge sweep is sequential;
//! the parallel stage's jobs are pure functions of (graph, partition,
//! merge-stage entries) over disjoint label slots, and the pool returns
//! them in partition order. The final index is therefore byte-identical
//! for every thread count — only wall clock changes.

use flixobs::Stopwatch;
use graphcore::{
    condensation, estimate_ancestor_counts, estimate_descendant_counts, partition_condensation,
    pool, Digraph, Distance, NodeId, INFINITE_DISTANCE,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Knobs for the staged cover construction.
#[derive(Debug, Clone)]
pub struct CoverOptions {
    /// Worker threads for the per-partition cover stage. `0` means one per
    /// available core; `1` (the default) runs every stage sequentially.
    /// The thread count never changes the produced index, only wall clock.
    pub threads: usize,
    /// Partition size cap for the cover stage, in nodes. `0` (the default)
    /// picks `clamp(n / 32, 1024, 32768)`: small graphs stay monolithic
    /// (one partition, no merge stage), large graphs split into a few
    /// dozen blocks. The cap is a function of the graph alone — never of
    /// the thread count — so the partitioning, and with it the index, is
    /// identical however many workers run.
    pub partition_cap: usize,
    /// Rounds for Cohen's reachable-set estimator in the ranking stage
    /// (values below 2 are clamped to 2; more rounds tighten the ranking).
    pub rank_rounds: usize,
    /// Seed for the ranking estimator. Fixed by default so builds are
    /// reproducible run to run.
    pub rank_seed: u64,
}

impl Default for CoverOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            partition_cap: 0,
            rank_rounds: 8,
            rank_seed: 0xF11C,
        }
    }
}

/// Out-of-band record of one staged build: per-stage wall clock plus the
/// shape of the pipeline.
///
/// Deliberately *not* stored inside [`crate::HopiIndex`]: wall-clock fields
/// differ run to run, and the persisted index image must stay byte-identical
/// across runs and thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReport {
    /// Microseconds spent condensing the graph, estimating reachable-set
    /// sizes, ranking centers, and planning partitions.
    pub rank_micros: u64,
    /// Microseconds of the sequential cross-partition merge sweep.
    pub merge_micros: u64,
    /// Microseconds of the (parallel) per-partition cover stage.
    pub cover_micros: u64,
    /// Partitions the cover stage ran over.
    pub partitions: usize,
    /// Centers the merge sweep processed (targets of partition-crossing
    /// edges).
    pub border_centers: usize,
    /// Worker threads the cover stage actually used.
    pub threads: usize,
}

impl StageReport {
    /// Accumulates another staged build's record (used when a framework
    /// build aggregates over several HOPI meta documents).
    pub fn absorb(&mut self, other: StageReport) {
        self.rank_micros += other.rank_micros;
        self.merge_micros += other.merge_micros;
        self.cover_micros += other.cover_micros;
        self.partitions += other.partitions;
        self.border_centers += other.border_centers;
        self.threads = self.threads.max(other.threads);
    }
}

/// Label sets produced by the staged pipeline, before `labels.rs` finishes
/// the index (sorting, inverted indexes, stats).
pub(crate) struct CoverLabels {
    /// `l_in[v]` entries `(center, d(center, v))`, in sweep order.
    pub l_in: Vec<Vec<(NodeId, Distance)>>,
    /// `l_out[u]` entries `(center, d(u, center))`, in sweep order.
    pub l_out: Vec<Vec<(NodeId, Distance)>>,
    /// BFS node visits across all sweeps (pruned visits included).
    pub visits: usize,
    /// Per-stage timings and pipeline shape.
    pub report: StageReport,
}

/// Runs the staged pipeline over `g` and returns the raw label sets.
pub(crate) fn build_cover(g: &Digraph, opts: &CoverOptions) -> CoverLabels {
    let n = g.node_count();
    let mut out = CoverLabels {
        l_in: vec![Vec::new(); n],
        l_out: vec![Vec::new(); n],
        visits: 0,
        report: StageReport::default(),
    };
    if n == 0 {
        return out;
    }
    let rev = g.reversed();

    // ---- Stage 1+2: rank centers, plan partitions. ----
    let started = Stopwatch::start();
    let cond = condensation(g);
    let rank_pos = rank_positions(g, opts);
    let cap = if opts.partition_cap > 0 {
        opts.partition_cap
    } else {
        (n / 32).clamp(1024, 32768)
    };
    let parts = partition_condensation(g, &cond, cap);
    // Border centers: targets of partition-crossing edges, in rank order.
    let mut is_border = vec![false; n];
    for (u, v) in g.edges() {
        if parts.part_of[u as usize] != parts.part_of[v as usize] {
            is_border[v as usize] = true;
        }
    }
    let mut borders: Vec<NodeId> = (0..n as NodeId)
        .filter(|&u| is_border[u as usize])
        .collect();
    borders.sort_unstable_by_key(|&u| rank_pos[u as usize]);
    out.report.rank_micros = started.elapsed_micros();
    out.report.partitions = parts.len();
    out.report.border_centers = borders.len();

    // ---- Stage 3: merge — sequential full-graph border sweeps. ----
    let started = Stopwatch::start();
    let mut scratch = SweepScratch::new(n, n);
    out.visits += pruned_sweep(
        g,
        &rev,
        &borders,
        None,
        &mut out.l_in,
        &mut out.l_out,
        &mut scratch,
    );
    out.report.merge_micros = started.elapsed_micros();

    // ---- Stage 4: cover — per-partition sweeps in parallel. ----
    let started = Stopwatch::start();
    let threads = pool::effective_threads(opts.threads, parts.len());
    out.report.threads = threads;
    // Largest partitions first keeps the pool busy to the end; results come
    // back in partition order regardless.
    let mut schedule: Vec<usize> = (0..parts.len()).collect();
    schedule.sort_by_key(|&p| (std::cmp::Reverse(parts.parts[p].len()), p));
    let (seed_in, seed_out) = (&out.l_in, &out.l_out);
    let locals = pool::run_scheduled(threads, &schedule, |p| {
        local_cover(g, &parts.parts[p], &is_border, &rank_pos, seed_in, seed_out)
    });
    for (p, local) in locals.into_iter().enumerate() {
        let LocalCover {
            l_in,
            l_out,
            visits,
        } = local;
        out.visits += visits;
        for ((&gu, list_in), list_out) in parts.parts[p].iter().zip(l_in).zip(l_out) {
            out.l_in[gu as usize] = list_in;
            out.l_out[gu as usize] = list_out;
        }
    }
    out.report.cover_micros = started.elapsed_micros();
    out
}

/// Position of every node in the global center-processing order.
///
/// Primary key: product of Cohen's descendant- and ancestor-set estimates,
/// descending (the number of (ancestor, descendant) pairs a node can serve
/// as 2-hop midpoint for). Ties break on total degree (descending), then
/// the bit-reversed id — which approximates the balanced middle-first order
/// on score-uniform regions such as long chains — then the id.
fn rank_positions(g: &Digraph, opts: &CoverOptions) -> Vec<u32> {
    let n = g.node_count();
    let rounds = opts.rank_rounds.max(2);
    let desc = estimate_descendant_counts(g, rounds, opts.rank_seed);
    let anc = estimate_ancestor_counts(g, rounds, opts.rank_seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_unstable_by(|&a, &b| {
        let sa = desc[a as usize] * anc[a as usize];
        let sb = desc[b as usize] * anc[b as usize];
        sb.total_cmp(&sa)
            .then_with(|| {
                (g.out_degree(b) + g.in_degree(b)).cmp(&(g.out_degree(a) + g.in_degree(a)))
            })
            .then_with(|| a.reverse_bits().cmp(&b.reverse_bits()))
            .then_with(|| a.cmp(&b))
    });
    let mut pos = vec![0u32; n];
    for (i, &u) in order.iter().enumerate() {
        pos[u as usize] = i as u32;
    }
    pos
}

/// Result of one partition's local cover job, in partition-local node order.
struct LocalCover {
    l_in: Vec<Vec<(NodeId, Distance)>>,
    l_out: Vec<Vec<(NodeId, Distance)>>,
    visits: usize,
}

/// Builds the partition-local share of the cover for `block`: every
/// non-border member becomes a center whose pruned BFS is restricted to the
/// partition's induced subgraph. Seeds its working label lists with the
/// merge stage's (border) entries so local sweeps prune against them, and
/// returns full replacement lists for the block's nodes.
///
/// Pure with respect to the shared state — reads only `g` and the seed
/// entries of its own (disjoint) block — so jobs commute: the caller can
/// run any number of them on any threads and splice results back in
/// partition order with identical output.
fn local_cover(
    g: &Digraph,
    block: &[NodeId],
    is_border: &[bool],
    rank_pos: &[u32],
    seed_in: &[Vec<(NodeId, Distance)>],
    seed_out: &[Vec<(NodeId, Distance)>],
) -> LocalCover {
    let (sub, mapping) = g.induced_subgraph(block);
    let sub_rev = sub.reversed();
    let mut l_in: Vec<Vec<(NodeId, Distance)>> = mapping
        .iter()
        .map(|&gu| seed_in[gu as usize].clone())
        .collect();
    let mut l_out: Vec<Vec<(NodeId, Distance)>> = mapping
        .iter()
        .map(|&gu| seed_out[gu as usize].clone())
        .collect();
    let mut centers: Vec<NodeId> = (0..mapping.len() as NodeId)
        .filter(|&lu| !is_border[mapping[lu as usize] as usize])
        .collect();
    centers.sort_unstable_by_key(|&lu| rank_pos[mapping[lu as usize] as usize]);
    let mut scratch = SweepScratch::new(mapping.len(), seed_in.len());
    let visits = pruned_sweep(
        &sub,
        &sub_rev,
        &centers,
        Some(&mapping),
        &mut l_in,
        &mut l_out,
        &mut scratch,
    );
    LocalCover {
        l_in,
        l_out,
        visits,
    }
}

/// Reusable scratch for [`pruned_sweep`]: BFS distances are indexed by the
/// swept graph's node ids, the pruning array by *global* center ids.
pub(crate) struct SweepScratch {
    dist: Vec<Distance>,
    center_dist: Vec<Distance>,
    queue: VecDeque<NodeId>,
    touched: Vec<NodeId>,
}

impl SweepScratch {
    pub(crate) fn new(nodes: usize, centers: usize) -> Self {
        Self {
            dist: vec![INFINITE_DISTANCE; nodes],
            center_dist: vec![INFINITE_DISTANCE; centers],
            queue: VecDeque::new(),
            touched: Vec::new(),
        }
    }
}

/// Runs the two-sided pruned BFS of classic 2-hop labelling for each center
/// in `centers` (in order) over `g`/`rev`, appending `(center, distance)`
/// entries to `l_in`/`l_out`.
///
/// Node ids index the supplied graph; label entries carry **global** center
/// ids via `to_global` (`None` = identity), which is what lets a partition-
/// restricted sweep prune against the full-graph entries of the merge
/// stage. Returns BFS node visits (pruned visits included).
pub(crate) fn pruned_sweep(
    g: &Digraph,
    rev: &Digraph,
    centers: &[NodeId],
    to_global: Option<&[NodeId]>,
    l_in: &mut [Vec<(NodeId, Distance)>],
    l_out: &mut [Vec<(NodeId, Distance)>],
    scratch: &mut SweepScratch,
) -> usize {
    let mut visits = 0usize;
    for &w in centers {
        let wg = to_global.map_or(w, |m| m[w as usize]);
        // Forward: L_in(v) gains (w, d(w, v)), pruned through L_out(w).
        visits += half_sweep(g, w, wg, l_out, l_in, scratch);
        // Backward: L_out(u) gains (w, d(u, w)), pruned through L_in(w).
        visits += half_sweep(rev, w, wg, l_in, l_out, scratch);
    }
    visits
}

/// One pruned BFS from `w` over `adj`: every node `u` not already covered
/// at its BFS distance gains the entry `(wg, d)` in `grow[u]`. `own` is
/// `w`'s opposite-side label list, loaded into the `center_dist` scratch so
/// each pruning test costs O(|grow[u]|) — the standard 2-hop trick.
fn half_sweep(
    adj: &Digraph,
    w: NodeId,
    wg: NodeId,
    own: &[Vec<(NodeId, Distance)>],
    grow: &mut [Vec<(NodeId, Distance)>],
    scratch: &mut SweepScratch,
) -> usize {
    let SweepScratch {
        dist,
        center_dist,
        queue,
        touched,
    } = scratch;
    for &(c, d) in &own[w as usize] {
        center_dist[c as usize] = d;
    }
    center_dist[wg as usize] = 0;
    dist[w as usize] = 0;
    touched.push(w);
    queue.push_back(w);
    let mut visits = 0usize;
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        visits += 1;
        // Prune if d(w, u) <= d is already answerable from the labels of
        // earlier (higher-ranked) centers.
        let covered = grow[u as usize].iter().any(|&(c, dc)| {
            center_dist[c as usize] != INFINITE_DISTANCE && center_dist[c as usize] + dc <= d
        });
        if covered {
            continue;
        }
        grow[u as usize].push((wg, d));
        for &v in adj.successors(u) {
            if dist[v as usize] == INFINITE_DISTANCE {
                dist[v as usize] = d + 1;
                touched.push(v);
                queue.push_back(v);
            }
        }
    }
    for &t in touched.iter() {
        dist[t as usize] = INFINITE_DISTANCE;
    }
    touched.clear();
    for &(c, _) in &own[w as usize] {
        center_dist[c as usize] = INFINITE_DISTANCE;
    }
    center_dist[wg as usize] = INFINITE_DISTANCE;
    visits
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{DistanceOracle, TransitiveClosure};

    /// Chained triangles with shortcut DAG edges: multi-SCC, multi-partition
    /// under a small cap, with real cross-partition shortest paths.
    fn chained_triangles() -> Digraph {
        let mut edges = Vec::new();
        for base in [0u32, 3, 6, 9] {
            edges.extend([(base, base + 1), (base + 1, base + 2), (base + 2, base)]);
        }
        edges.extend([(2, 3), (5, 6), (8, 9), (1, 6), (4, 11)]);
        Digraph::from_edges(12, edges)
    }

    fn exact(g: &Digraph, opts: &CoverOptions) {
        let cover = build_cover(g, opts);
        let mut l_in = cover.l_in;
        let mut l_out = cover.l_out;
        for list in l_in.iter_mut().chain(l_out.iter_mut()) {
            list.sort_unstable();
        }
        let tc = TransitiveClosure::build(g);
        let oracle = DistanceOracle::new(g);
        let n = g.node_count() as NodeId;
        for u in 0..n {
            for v in 0..n {
                let mut best = INFINITE_DISTANCE;
                for &(c, dc) in &l_out[u as usize] {
                    for &(c2, dc2) in &l_in[v as usize] {
                        if c == c2 {
                            best = best.min(dc + dc2);
                        }
                    }
                }
                assert_eq!(
                    best != INFINITE_DISTANCE,
                    tc.reaches(u, v),
                    "reach {u}->{v}"
                );
                if best != INFINITE_DISTANCE {
                    assert_eq!(best, oracle.distance(u, v), "dist {u}->{v}");
                }
            }
        }
    }

    #[test]
    fn staged_cover_exact_across_partitions() {
        let g = chained_triangles();
        for cap in [3, 4, 6] {
            for threads in [1, 2, 4] {
                exact(
                    &g,
                    &CoverOptions {
                        threads,
                        partition_cap: cap,
                        ..CoverOptions::default()
                    },
                );
            }
        }
    }

    #[test]
    fn single_partition_has_no_borders() {
        let g = chained_triangles();
        let cover = build_cover(&g, &CoverOptions::default());
        assert_eq!(cover.report.partitions, 1);
        assert_eq!(cover.report.border_centers, 0);
    }

    #[test]
    fn multi_partition_reports_shape() {
        let g = chained_triangles();
        let cover = build_cover(
            &g,
            &CoverOptions {
                partition_cap: 3,
                ..CoverOptions::default()
            },
        );
        assert!(cover.report.partitions > 1);
        assert!(cover.report.border_centers > 0);
        assert!(cover.visits > 0);
    }

    #[test]
    fn thread_count_does_not_change_labels() {
        let g = chained_triangles();
        let opts = |threads| CoverOptions {
            threads,
            partition_cap: 3,
            ..CoverOptions::default()
        };
        let base = build_cover(&g, &opts(1));
        for threads in [2, 8] {
            let other = build_cover(&g, &opts(threads));
            assert_eq!(base.l_in, other.l_in, "{threads} threads");
            assert_eq!(base.l_out, other.l_out, "{threads} threads");
            assert_eq!(base.visits, other.visits, "{threads} threads");
        }
    }

    #[test]
    fn report_absorb_sums_and_maxes() {
        let mut a = StageReport {
            rank_micros: 1,
            merge_micros: 2,
            cover_micros: 3,
            partitions: 2,
            border_centers: 5,
            threads: 2,
        };
        a.absorb(StageReport {
            rank_micros: 10,
            merge_micros: 20,
            cover_micros: 30,
            partitions: 1,
            border_centers: 0,
            threads: 8,
        });
        assert_eq!(a.rank_micros, 11);
        assert_eq!(a.merge_micros, 22);
        assert_eq!(a.cover_micros, 33);
        assert_eq!(a.partitions, 3);
        assert_eq!(a.border_centers, 5);
        assert_eq!(a.threads, 8);
    }
}
