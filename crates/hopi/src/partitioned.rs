//! Unconnected HOPI (paper §4.3): per-partition 2-hop indexes.
//!
//! The divide-and-conquer HOPI builder first partitions the element graph
//! into size-capped blocks with few crossing edges, then builds a 2-hop
//! index per block, and finally joins the sub-indexes. *Unconnected HOPI*
//! stops after the second step: each partition keeps its own index and the
//! partition-crossing edges are left to the query evaluator, exactly like
//! FliX's cross-meta-document links. This type packages steps one and two.

use crate::labels::{BuildStats, HopiIndex};
use graphcore::{partition_greedy, Digraph, Distance, NodeId, Partitioning};

/// Per-partition HOPI indexes plus the crossing edges.
#[derive(Debug)]
pub struct UnconnectedHopi {
    partitioning: Partitioning,
    /// One index per partition, over partition-local node ids.
    indexes: Vec<HopiIndex>,
    /// `local_of[u]` = u's id inside its partition.
    local_of: Vec<u32>,
    /// Partition-crossing edges in global ids, sorted by source.
    crossing: Vec<(NodeId, NodeId)>,
    /// Construction statistics summed over the per-partition builds.
    stats: BuildStats,
}

impl UnconnectedHopi {
    /// Partitions `g` into blocks of at most `max_size` nodes and indexes
    /// each block.
    pub fn build(g: &Digraph, node_labels: &[u32], max_size: usize) -> Self {
        let partitioning = partition_greedy(g, max_size);
        let mut local_of = vec![0u32; g.node_count()];
        let mut indexes = Vec::with_capacity(partitioning.len());
        let mut stats = BuildStats::default();
        for block in &partitioning.parts {
            let (sub, mapping) = g.induced_subgraph(block);
            for (local, &global) in mapping.iter().enumerate() {
                local_of[global as usize] = local as u32;
            }
            let labels: Vec<u32> = mapping.iter().map(|&gl| node_labels[gl as usize]).collect();
            let index = HopiIndex::build(&sub, &labels);
            stats.absorb(index.stats());
            indexes.push(index);
        }
        let mut crossing: Vec<(NodeId, NodeId)> = g
            .edges()
            .filter(|&(u, v)| partitioning.part_of[u as usize] != partitioning.part_of[v as usize])
            .collect();
        crossing.sort_unstable();
        Self {
            partitioning,
            indexes,
            local_of,
            crossing,
            stats,
        }
    }

    /// Construction statistics aggregated across every partition's build
    /// (entry counts and BFS visits summed in partition order).
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// The partitioning used.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Partition id of a node.
    pub fn partition_of(&self, u: NodeId) -> u32 {
        self.partitioning.part_of[u as usize]
    }

    /// The index of one partition.
    pub fn index_of_partition(&self, p: u32) -> &HopiIndex {
        &self.indexes[p as usize]
    }

    /// Partition-local id of a node.
    pub fn local_id(&self, u: NodeId) -> u32 {
        self.local_of[u as usize]
    }

    /// Global id of a partition-local node.
    pub fn global_id(&self, p: u32, local: u32) -> NodeId {
        self.partitioning.parts[p as usize][local as usize]
    }

    /// Crossing edges out of `u` (global ids).
    pub fn crossing_out_of(&self, u: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.crossing.partition_point(|&(s, _)| s < u);
        let end = self.crossing.partition_point(|&(s, _)| s <= u);
        &self.crossing[start..end]
    }

    /// All crossing edges.
    pub fn crossing_edges(&self) -> &[(NodeId, NodeId)] {
        &self.crossing
    }

    /// Within-partition distance between two *global* nodes, if they share
    /// a partition and are connected inside it.
    pub fn local_distance(&self, u: NodeId, v: NodeId) -> Option<Distance> {
        let p = self.partition_of(u);
        if p != self.partition_of(v) {
            return None;
        }
        self.indexes[p as usize].distance(self.local_id(u), self.local_id(v))
    }

    /// Within-partition descendants of a global node, returned as global
    /// `(node, distance)` pairs ascending by distance.
    pub fn local_descendants(&self, u: NodeId, include_self: bool) -> Vec<(NodeId, Distance)> {
        let p = self.partition_of(u);
        self.indexes[p as usize]
            .descendants(self.local_id(u), include_self)
            .into_iter()
            .map(|(l, d)| (self.global_id(p, l), d))
            .collect()
    }

    /// Total label entries across all partitions.
    pub fn label_entries(&self) -> usize {
        self.indexes.iter().map(HopiIndex::label_entries).sum()
    }

    /// Approximate in-memory footprint: per-partition indexes plus the
    /// crossing-edge table.
    pub fn size_bytes(&self) -> usize {
        self.indexes
            .iter()
            .map(HopiIndex::size_bytes)
            .sum::<usize>()
            + self.crossing.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::DistanceOracle;

    /// Two triangles bridged by one edge.
    fn bridged() -> Digraph {
        Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn partitions_respect_cap() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        assert!(uh.partitioning().parts.iter().all(|p| p.len() <= 3));
        assert_eq!(uh.partitioning().len(), 2);
        assert_eq!(uh.crossing_edges(), &[(2, 3)]);
    }

    #[test]
    fn local_queries_exact_within_partition() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        let oracle = DistanceOracle::new(&g);
        for u in 0..6u32 {
            for v in 0..6u32 {
                if uh.partition_of(u) == uh.partition_of(v) {
                    assert_eq!(
                        uh.local_distance(u, v),
                        Some(oracle.distance(u, v)).filter(|&d| d != u32::MAX),
                        "pair {u},{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_partition_distance_is_none_locally() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        assert_eq!(uh.local_distance(0, 4), None);
    }

    #[test]
    fn local_descendants_in_global_ids() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        let d = uh.local_descendants(0, false);
        let mut nodes: Vec<NodeId> = d.iter().map(|&(v, _)| v).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2]);
        assert!(d.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn crossing_lookup_by_source() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        assert_eq!(uh.crossing_out_of(2), &[(2, 3)]);
        assert!(uh.crossing_out_of(0).is_empty());
    }

    #[test]
    fn round_trip_ids() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        for u in 0..6u32 {
            let p = uh.partition_of(u);
            assert_eq!(uh.global_id(p, uh.local_id(u)), u);
        }
    }

    #[test]
    fn stats_aggregate_across_partitions() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 3);
        let summed = (0..uh.partitioning().len() as u32)
            .map(|p| uh.index_of_partition(p).stats())
            .fold(BuildStats::default(), |mut acc, s| {
                acc.absorb(s);
                acc
            });
        assert_eq!(uh.stats(), summed);
        assert_eq!(uh.stats().total_entries(), uh.label_entries());
        assert!(uh.stats().visits > 0);
    }

    #[test]
    fn single_partition_degenerates_to_plain_hopi() {
        let g = bridged();
        let uh = UnconnectedHopi::build(&g, &[0; 6], 100);
        assert_eq!(uh.partitioning().len(), 1);
        assert!(uh.crossing_edges().is_empty());
        let oracle = DistanceOracle::new(&g);
        assert_eq!(uh.local_distance(0, 5), {
            let d = oracle.distance(0, 5);
            (d != u32::MAX).then_some(d)
        });
    }
}
