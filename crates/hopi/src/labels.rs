//! The 2-hop label index: construction, queries, enumeration.
//!
//! Construction runs the staged pipeline in [`crate::cover`] (rank →
//! partition → merge → parallel per-partition cover) and finishes the raw
//! label sets into a queryable index here: sorting by center id, building
//! the inverted center indexes, and computing [`BuildStats`].

use crate::cover::{self, CoverOptions, StageReport};
use graphcore::{Digraph, Distance, NodeId, INFINITE_DISTANCE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Construction statistics (reported by the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Total `(center, distance)` entries across all `L_in` sets.
    pub in_entries: usize,
    /// Total entries across all `L_out` sets.
    pub out_entries: usize,
    /// BFS node visits performed during construction (pruned included).
    pub visits: usize,
}

impl BuildStats {
    /// Total label entries.
    pub fn total_entries(&self) -> usize {
        self.in_entries + self.out_entries
    }

    /// Accumulates another build's statistics (used by the partitioned
    /// builder to aggregate over its per-partition indexes).
    pub fn absorb(&mut self, other: BuildStats) {
        self.in_entries += other.in_entries;
        self.out_entries += other.out_entries;
        self.visits += other.visits;
    }
}

/// A distance-augmented 2-hop connection index.
///
/// `labels[u]` (passed at build time) is an opaque per-node label (FliX
/// passes interned tag ids); per-label candidate lists accelerate
/// `descendants_by_label`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopiIndex {
    /// `l_in[v]` = (center, d(center, v)), sorted by center id.
    l_in: Vec<Vec<(NodeId, Distance)>>,
    /// `l_out[u]` = (center, d(u, center)), sorted by center id.
    l_out: Vec<Vec<(NodeId, Distance)>>,
    /// Inverted: `in_index[w]` = nodes v with w ∈ L_in(v), as (v, d(w,v)).
    in_index: Vec<Vec<(NodeId, Distance)>>,
    /// Inverted: `out_index[w]` = nodes u with w ∈ L_out(u), as (u, d(u,w)).
    out_index: Vec<Vec<(NodeId, Distance)>>,
    /// Per-node opaque label.
    node_labels: Vec<u32>,
    stats: BuildStats,
}

impl HopiIndex {
    /// Builds the index over `g` with one opaque label per node, using the
    /// default (sequential, auto-partitioned) staged pipeline.
    pub fn build(g: &Digraph, node_labels: &[u32]) -> Self {
        Self::build_staged(g, node_labels, &CoverOptions::default()).0
    }

    /// [`Self::build`] with explicit pipeline options (thread count,
    /// partition cap, ranking rounds). The produced index is identical for
    /// every `threads` value — see the determinism notes on [`crate::cover`].
    pub fn build_with(g: &Digraph, node_labels: &[u32], opts: &CoverOptions) -> Self {
        Self::build_staged(g, node_labels, opts).0
    }

    /// Runs the staged pipeline and additionally returns its out-of-band
    /// [`StageReport`] (per-stage timings, partition/border counts). The
    /// report is *not* part of the index, so serialized indexes stay
    /// byte-identical across runs and thread counts.
    pub fn build_staged(
        g: &Digraph,
        node_labels: &[u32],
        opts: &CoverOptions,
    ) -> (Self, StageReport) {
        assert_eq!(node_labels.len(), g.node_count(), "one label per node");
        let n = g.node_count();
        let cover = cover::build_cover(g, opts);
        let report = cover.report;
        let (mut l_in, mut l_out, visits) = (cover.l_in, cover.l_out, cover.visits);

        // Label lists were appended in center-rank order; queries need them
        // sorted by center id for the merge intersection.
        for list in l_in.iter_mut().chain(l_out.iter_mut()) {
            list.sort_unstable();
        }

        let mut in_index: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
        let mut out_index: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
        for v in 0..n {
            for &(w, d) in &l_in[v] {
                in_index[w as usize].push((v as NodeId, d));
            }
            for &(w, d) in &l_out[v] {
                out_index[w as usize].push((v as NodeId, d));
            }
        }

        let stats = BuildStats {
            in_entries: l_in.iter().map(Vec::len).sum(),
            out_entries: l_out.iter().map(Vec::len).sum(),
            visits,
        };
        let index = Self {
            l_in,
            l_out,
            in_index,
            out_index,
            node_labels: node_labels.to_vec(),
            stats,
        };
        (index, report)
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.l_in.len()
    }

    /// Construction statistics.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Exact hop distance from `u` to `v`, or `None` if unreachable.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Distance> {
        let (a, b) = (&self.l_out[u as usize], &self.l_in[v as usize]);
        let (mut i, mut j) = (0, 0);
        let mut best = INFINITE_DISTANCE;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        (best != INFINITE_DISTANCE).then_some(best)
    }

    /// Reachability test `u -> v` (descendant-or-self: true for `u == v`).
    pub fn is_reachable(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }

    /// All descendants of `u` with exact distances, ascending by distance.
    ///
    /// `include_self` selects descendant-or-self vs. strict semantics.
    pub fn descendants(&self, u: NodeId, include_self: bool) -> Vec<(NodeId, Distance)> {
        self.collect_closure(&self.l_out[u as usize], &self.in_index, u, include_self)
            .0
    }

    /// All ancestors of `u` with exact distances, ascending by distance.
    pub fn ancestors(&self, u: NodeId, include_self: bool) -> Vec<(NodeId, Distance)> {
        self.collect_closure(&self.l_in[u as usize], &self.out_index, u, include_self)
            .0
    }

    fn collect_closure(
        &self,
        own: &[(NodeId, Distance)],
        inverted: &[Vec<(NodeId, Distance)>],
        u: NodeId,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        let mut best: HashMap<NodeId, Distance> = HashMap::new();
        let mut work = 0usize;
        for &(w, d1) in own {
            work += inverted[w as usize].len();
            for &(v, d2) in &inverted[w as usize] {
                let d = d1 + d2;
                best.entry(v)
                    .and_modify(|cur| *cur = (*cur).min(d))
                    .or_insert(d);
            }
        }
        if !include_self {
            best.remove(&u);
        }
        let mut out: Vec<(NodeId, Distance)> = best.into_iter().collect();
        out.sort_unstable_by_key(|&(v, d)| (d, v));
        (out, work)
    }

    /// Descendants of `u` carrying `label`, ascending by distance.
    pub fn descendants_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.descendants_by_label_counted(u, label, include_self).0
    }

    /// [`Self::descendants_by_label`] plus the label-table rows merged to
    /// answer it — the joins a database-backed HOPI pays per query.
    pub fn descendants_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        let (mut out, work) =
            self.collect_closure(&self.l_out[u as usize], &self.in_index, u, include_self);
        out.retain(|&(v, _)| self.node_labels[v as usize] == label);
        (out, work)
    }

    /// Ancestors of `u` carrying `label`, ascending by distance.
    pub fn ancestors_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.ancestors_by_label_counted(u, label, include_self).0
    }

    /// [`Self::ancestors_by_label`] plus the label-table rows merged to
    /// answer it — the ancestors mirror of
    /// [`Self::descendants_by_label_counted`].
    pub fn ancestors_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        let (mut out, work) =
            self.collect_closure(&self.l_in[u as usize], &self.out_index, u, include_self);
        out.retain(|&(v, _)| self.node_labels[v as usize] == label);
        (out, work)
    }

    /// Descendants of `u` that satisfy `keep`, ascending by distance (used
    /// by FliX for "reachable elements with outgoing links").
    pub fn descendants_filtered(
        &self,
        u: NodeId,
        include_self: bool,
        mut keep: impl FnMut(NodeId) -> bool,
    ) -> Vec<(NodeId, Distance)> {
        let mut out = self.descendants(u, include_self);
        out.retain(|&(v, _)| keep(v));
        out
    }

    /// Total label entries (the paper's size measure for HOPI).
    pub fn label_entries(&self) -> usize {
        self.stats.total_entries()
    }

    /// Verifies the 2-hop cover against the graph it was built over, by
    /// exact BFS from a deterministic sample of `samples` source nodes.
    ///
    /// For every sampled source `u` and every node `v`, the label-derived
    /// [`HopiIndex::distance`] must equal the BFS distance (soundness: no
    /// phantom connections; completeness: the cover admits every real
    /// connection at its exact distance).
    ///
    /// # Errors
    /// A description of the first disagreement found.
    pub fn verify_against_graph(&self, g: &Digraph, samples: usize) -> Result<(), String> {
        let n = self.node_count();
        if g.node_count() != n {
            return Err(format!(
                "graph has {} nodes, index covers {n}",
                g.node_count()
            ));
        }
        if n == 0 {
            return Ok(());
        }
        let step = (n / samples.max(1)).max(1);
        for u in (0..n).step_by(step) {
            let u = u as NodeId;
            let dist = graphcore::bfs_distances(g, u);
            for v in 0..n as NodeId {
                let oracle = dist[v as usize];
                let oracle = (oracle != graphcore::INFINITE_DISTANCE).then_some(oracle);
                let indexed = self.distance(u, v);
                if indexed != oracle {
                    return Err(format!(
                        "d({u}, {v}): index says {indexed:?}, BFS says {oracle:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Approximate in-memory footprint in bytes: label sets plus the
    /// inverted center indexes (both are materialised in the database in
    /// the paper's implementation).
    pub fn size_bytes(&self) -> usize {
        // every entry appears once in l_in/l_out and once inverted
        2 * self.stats.total_entries() * 8 + self.node_labels.len() * 4
    }
}

impl flixcheck::IntegrityCheck for HopiIndex {
    /// Audits the 2-hop cover's internal shape: every node carries its
    /// zero-distance self-entry in both label sets, center lists are
    /// strictly sorted, the inverted indexes mirror the label sets exactly,
    /// and the build statistics match the stored entry counts.
    ///
    /// Soundness/completeness against the indexed graph needs the graph
    /// itself (not stored here) — see [`HopiIndex::verify_against_graph`].
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("HopiIndex");
        let n = self.l_in.len();
        audit.check(
            "parallel arrays same length",
            self.l_out.len() == n
                && self.in_index.len() == n
                && self.out_index.len() == n
                && self.node_labels.len() == n,
            || {
                format!(
                    "l_in={n} l_out={} in_index={} out_index={} node_labels={}",
                    self.l_out.len(),
                    self.in_index.len(),
                    self.out_index.len(),
                    self.node_labels.len()
                )
            },
        );
        if audit.violation_count() > 0 {
            return audit.finish();
        }

        let mut first = None;
        for w in 0..n as NodeId {
            let self_in = self.l_in[w as usize].iter().any(|&(c, d)| c == w && d == 0);
            let self_out = self.l_out[w as usize]
                .iter()
                .any(|&(c, d)| c == w && d == 0);
            if !(self_in && self_out) {
                first = Some(format!("node {w} lacks its (w, 0) self-entry"));
                break;
            }
        }
        audit.check(
            "every node holds its zero-distance self-entry",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let mut first = None;
        'sorted: for (side, sets) in [("L_in", &self.l_in), ("L_out", &self.l_out)] {
            for (u, set) in sets.iter().enumerate() {
                for w in set.windows(2) {
                    if w[0].0 >= w[1].0 {
                        first = Some(format!(
                            "{side}[{u}] not strictly sorted by center at {}",
                            w[1].0
                        ));
                        break 'sorted;
                    }
                }
            }
        }
        audit.check(
            "center lists strictly sorted (no duplicates)",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        // The inverted indexes must be an exact mirror of the label sets.
        let mut want_in: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
        let mut want_out: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
        for v in 0..n {
            for &(c, d) in &self.l_in[v] {
                want_in[c as usize].push((v as NodeId, d));
            }
            for &(c, d) in &self.l_out[v] {
                want_out[c as usize].push((v as NodeId, d));
            }
        }
        let mut first = None;
        for (w, (want_in, want_out)) in want_in.iter_mut().zip(&mut want_out).enumerate() {
            let mut got_in = self.in_index[w].clone();
            got_in.sort_unstable();
            let mut got_out = self.out_index[w].clone();
            got_out.sort_unstable();
            want_in.sort_unstable();
            want_out.sort_unstable();
            if got_in != *want_in || got_out != *want_out {
                first = Some(format!(
                    "inverted index of center {w} disagrees with the label sets"
                ));
                break;
            }
        }
        audit.check(
            "inverted indexes mirror the label sets",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let in_total: usize = self.l_in.iter().map(Vec::len).sum();
        let out_total: usize = self.l_out.iter().map(Vec::len).sum();
        audit.check(
            "build stats match stored entry counts",
            self.stats.in_entries == in_total && self.stats.out_entries == out_total,
            || {
                format!(
                    "stats say {}+{}, stored {in_total}+{out_total}",
                    self.stats.in_entries, self.stats.out_entries
                )
            },
        );

        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{DistanceOracle, TransitiveClosure};

    fn check_exact(g: &Digraph, labels: &[u32]) {
        let idx = HopiIndex::build(g, labels);
        let tc = TransitiveClosure::build(g);
        let oracle = DistanceOracle::new(g);
        let n = g.node_count() as NodeId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(idx.is_reachable(u, v), tc.reaches(u, v), "reach {u}->{v}");
                let d = oracle.distance(u, v);
                let got = idx.distance(u, v).unwrap_or(INFINITE_DISTANCE);
                assert_eq!(got, d, "dist {u}->{v}");
            }
        }
    }

    #[test]
    fn exact_on_tree() {
        let g = Digraph::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (4, 6), (2, 5)]);
        check_exact(&g, &[0; 7]);
    }

    #[test]
    fn exact_on_dag_with_shortcuts() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 3), (1, 5), (5, 4)]);
        check_exact(&g, &[0; 6]);
    }

    #[test]
    fn exact_on_cyclic_graph() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        check_exact(&g, &[0; 6]);
    }

    #[test]
    fn exact_on_disconnected() {
        let g = Digraph::from_edges(5, [(0, 1), (3, 4)]);
        check_exact(&g, &[0; 5]);
    }

    #[test]
    fn descendants_sorted_and_complete() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]);
        let idx = HopiIndex::build(&g, &[0; 6]);
        let d = idx.descendants(0, false);
        let nodes: Vec<NodeId> = d.iter().map(|&(v, _)| v).collect();
        let mut sorted_nodes = nodes.clone();
        sorted_nodes.sort_unstable();
        assert_eq!(sorted_nodes, vec![1, 2, 3, 4]);
        assert!(d.windows(2).all(|w| w[0].1 <= w[1].1), "ascending distance");
        // shortcut 0->3 gives distance 1, then 4 at 2
        assert!(d.contains(&(3, 1)));
        assert!(d.contains(&(4, 2)));
        // include_self
        let ds = idx.descendants(0, true);
        assert_eq!(ds[0], (0, 0));
    }

    #[test]
    fn ancestors_mirror_descendants() {
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (3, 2), (2, 4)]);
        let idx = HopiIndex::build(&g, &[0; 5]);
        let a = idx.ancestors(4, false);
        let nodes: Vec<NodeId> = a.iter().map(|&(v, _)| v).collect();
        let mut s = nodes.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
        assert!(a.contains(&(2, 1)));
        assert!(a.contains(&(0, 3)));
    }

    #[test]
    fn label_filtering() {
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let labels = [9, 7, 9, 7, 7];
        let idx = HopiIndex::build(&g, &labels);
        let r = idx.descendants_by_label(0, 7, false);
        assert_eq!(r, vec![(1, 1), (3, 3), (4, 4)]);
        let r = idx.ancestors_by_label(4, 9, false);
        assert_eq!(r, vec![(2, 2), (0, 4)]);
        // include_self respects the node's own label
        let r = idx.descendants_by_label(0, 9, true);
        assert_eq!(r[0], (0, 0));
    }

    #[test]
    fn filtered_enumeration() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let idx = HopiIndex::build(&g, &[0; 4]);
        let r = idx.descendants_filtered(0, false, |v| v % 2 == 1);
        assert_eq!(r, vec![(1, 1), (3, 3)]);
    }

    #[test]
    fn pruning_keeps_labels_small_on_chain() {
        // On a chain, the first center (an endpoint or middle hub) covers
        // everything; labels should stay near-linear, far below n^2.
        let n = 200u32;
        let g = Digraph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1)));
        let idx = HopiIndex::build(&g, &vec![0; n as usize]);
        // Naive (unpruned or badly ordered) labelling would cost ~n²/2 =
        // 20 000 entries; the pruned, balanced order stays near n·log n.
        assert!(
            idx.label_entries() < 8_000,
            "labels blew up: {}",
            idx.label_entries()
        );
        assert_eq!(idx.distance(0, n - 1), Some(n - 1));
    }

    #[test]
    fn size_accounting() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let idx = HopiIndex::build(&g, &[0; 3]);
        assert!(idx.size_bytes() > 0);
        assert!(idx.stats().visits > 0);
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idx = HopiIndex::build(&g, &[0; 4]);
        idx.integrity_check().unwrap();
        idx.verify_against_graph(&g, 4).unwrap();
        // dropping a self-entry breaks cover admissibility
        let mut bad = idx.clone();
        bad.l_out[0].retain(|&(c, _)| c != 0);
        assert!(bad.integrity_check().is_err());
        // an entry missing from the inverted index breaks the mirror
        let mut bad = idx.clone();
        for w in 0..bad.in_index.len() {
            if !bad.in_index[w].is_empty() {
                bad.in_index[w].pop();
                break;
            }
        }
        assert!(bad.integrity_check().is_err());
        // wrong stats are caught
        let mut bad = idx.clone();
        bad.stats.in_entries += 1;
        assert!(bad.integrity_check().is_err());
        // a corrupted distance passes the shape checks but fails the oracle
        let mut bad = idx;
        let mut bumped = false;
        'bump: for set in bad.l_out.iter_mut().chain(bad.l_in.iter_mut()) {
            for e in set.iter_mut() {
                if e.1 > 0 {
                    e.1 += 1;
                    bumped = true;
                    break 'bump;
                }
            }
        }
        assert!(bumped, "cover has at least one non-self entry");
        assert!(bad.verify_against_graph(&g, 4).is_err());
    }
}
