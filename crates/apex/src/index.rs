//! The queryable APEX index.

use crate::summary::StructuralSummary;
use graphcore::{BitSet, Digraph, Distance, NodeId, TransitiveClosure};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// APEX index: a structural summary over a retained element graph.
///
/// Label-path queries (`/a/b`) run on the summary alone. Descendants-or-
/// self queries traverse the element graph, pruned by summary-level
/// reachability — correct, but per-element work, which is what makes APEX
/// the slow baseline in the paper's experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApexIndex {
    graph: Digraph,
    labels: Vec<u32>,
    summary: StructuralSummary,
    /// Summary-level transitive closure (small).
    summary_closure: TransitiveClosure,
    /// `label_reach[c]` = labels reachable from summary class `c`
    /// (including its own), as a bitset over label ids.
    label_reach: Vec<BitSet>,
    max_label: u32,
}

impl ApexIndex {
    /// Builds APEX-0 refined `k` rounds over `g`.
    pub fn build(g: &Digraph, labels: &[u32], refine_rounds: usize) -> Self {
        let summary = StructuralSummary::apex0(g, labels).refine(g, labels, refine_rounds);
        Self::from_summary(g.clone(), labels.to_vec(), summary)
    }

    /// Builds APEX-0 refined adaptively for a workload of frequent paths.
    pub fn build_adaptive(g: &Digraph, labels: &[u32], paths: &[Vec<u32>]) -> Self {
        let summary = StructuralSummary::apex0(g, labels).refine_for_paths(g, labels, paths);
        Self::from_summary(g.clone(), labels.to_vec(), summary)
    }

    fn from_summary(graph: Digraph, labels: Vec<u32>, summary: StructuralSummary) -> Self {
        let summary_closure = TransitiveClosure::build(&summary.graph);
        let max_label = labels.iter().copied().max().unwrap_or(0);
        let mut label_reach = Vec::with_capacity(summary.class_count());
        for c in 0..summary.class_count() as u32 {
            let mut set = BitSet::new(max_label as usize + 1);
            for rc in summary_closure.descendants(c) {
                set.insert(summary.class_label[rc as usize] as usize);
            }
            label_reach.push(set);
        }
        Self {
            graph,
            labels,
            summary,
            summary_closure,
            label_reach,
            max_label,
        }
    }

    /// The structural summary.
    pub fn summary(&self) -> &StructuralSummary {
        &self.summary
    }

    /// Elements matched by an absolute child-axis label path `/p0/p1/.../pk`
    /// (p0 must label a root-class element). Runs on the summary, then
    /// verifies each extent element against the element graph, so refined
    /// and coarse summaries answer identically.
    pub fn elements_with_path(&self, path: &[u32]) -> Vec<NodeId> {
        if path.is_empty() {
            return Vec::new();
        }
        // Candidate classes per step through the summary graph.
        let mut classes: Vec<u32> = self
            .summary
            .classes_with_label(path[0])
            .into_iter()
            .filter(|&c| {
                self.summary.extents[c as usize]
                    .iter()
                    .any(|&u| self.graph.in_degree(u) == 0)
            })
            .collect();
        for &label in &path[1..] {
            let mut next: Vec<u32> = Vec::new();
            for &c in &classes {
                for &s in self.summary.graph.successors(c) {
                    if self.summary.class_label[s as usize] == label {
                        next.push(s);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            classes = next;
        }
        // Verify elements: walk the concrete parent chain backwards.
        let mut out: Vec<NodeId> = Vec::new();
        for &c in &classes {
            'candidate: for &u in &self.summary.extents[c as usize] {
                // match path suffix-first from u upwards
                let mut frontier = vec![u];
                for step in (0..path.len() - 1).rev() {
                    let mut parents = Vec::new();
                    for &f in &frontier {
                        for &p in self.graph.predecessors(f) {
                            if self.labels[p as usize] == path[step] {
                                parents.push(p);
                            }
                        }
                    }
                    if parents.is_empty() {
                        continue 'candidate;
                    }
                    frontier = parents;
                }
                if frontier.iter().any(|&r| self.graph.in_degree(r) == 0) {
                    out.push(u);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Descendants of `u` carrying `label`, ascending by distance.
    ///
    /// Summary-pruned BFS over the element graph: a branch is only expanded
    /// while its summary class can still reach the target label.
    pub fn descendants_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.descendants_by_label_counted(u, label, include_self).0
    }

    /// [`Self::descendants_by_label`] plus the number of elements visited
    /// by the traversal — the per-element table accesses a database-backed
    /// APEX pays, and the reason it loses Figure 5 in the paper.
    pub fn descendants_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        if label > self.max_label {
            return (Vec::new(), 0);
        }
        let mut out = Vec::new();
        let mut visited = 0usize;
        let mut seen = vec![false; self.graph.node_count()];
        let mut queue = VecDeque::new();
        seen[u as usize] = true;
        queue.push_back((u, 0 as Distance));
        while let Some((x, d)) = queue.pop_front() {
            visited += 1;
            if self.labels[x as usize] == label && (include_self || x != u) {
                out.push((x, d));
            }
            for &v in self.graph.successors(x) {
                if seen[v as usize] {
                    continue;
                }
                let class = self.summary.class_of[v as usize];
                if !self.label_reach[class as usize].contains(label as usize) {
                    continue; // prune: nothing with this label down there
                }
                seen[v as usize] = true;
                queue.push_back((v, d + 1));
            }
        }
        (out, visited)
    }

    /// All descendants of `u`, ascending by distance (plain BFS).
    pub fn descendants(&self, u: NodeId, include_self: bool) -> Vec<(NodeId, Distance)> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.graph.node_count()];
        let mut queue = VecDeque::new();
        seen[u as usize] = true;
        queue.push_back((u, 0 as Distance));
        while let Some((x, d)) = queue.pop_front() {
            if include_self || x != u {
                out.push((x, d));
            }
            for &v in self.graph.successors(x) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back((v, d + 1));
                }
            }
        }
        out
    }

    /// Reachability with summary pruning. Distances come from the traversal
    /// (exact, but paid per query).
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Distance> {
        let target_class = self.summary.class_of[v as usize];
        let mut seen = vec![false; self.graph.node_count()];
        let mut queue = VecDeque::new();
        seen[u as usize] = true;
        queue.push_back((u, 0 as Distance));
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                return Some(d);
            }
            for &w in self.graph.successors(x) {
                if seen[w as usize] {
                    continue;
                }
                let c = self.summary.class_of[w as usize];
                if !self.summary_closure.reaches(c, target_class) {
                    continue;
                }
                seen[w as usize] = true;
                queue.push_back((w, d + 1));
            }
        }
        None
    }

    /// Reachability test.
    pub fn is_reachable(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }

    /// All ancestors of `u`, ascending by distance (reverse BFS).
    pub fn ancestors_all(&self, u: NodeId, include_self: bool) -> Vec<(NodeId, Distance)> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.graph.node_count()];
        let mut queue = VecDeque::new();
        seen[u as usize] = true;
        queue.push_back((u, 0 as Distance));
        while let Some((x, d)) = queue.pop_front() {
            if include_self || x != u {
                out.push((x, d));
            }
            for &v in self.graph.predecessors(x) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back((v, d + 1));
                }
            }
        }
        out
    }

    /// Ancestors of `u` carrying `label` (reverse BFS), ascending distance.
    pub fn ancestors_by_label(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> Vec<(NodeId, Distance)> {
        self.ancestors_by_label_counted(u, label, include_self).0
    }

    /// [`Self::ancestors_by_label`] plus the number of elements the reverse
    /// BFS visited — the ancestors mirror of
    /// [`Self::descendants_by_label_counted`].
    pub fn ancestors_by_label_counted(
        &self,
        u: NodeId,
        label: u32,
        include_self: bool,
    ) -> (Vec<(NodeId, Distance)>, usize) {
        let mut out = Vec::new();
        let mut visited = 0usize;
        let mut seen = vec![false; self.graph.node_count()];
        let mut queue = VecDeque::new();
        seen[u as usize] = true;
        queue.push_back((u, 0 as Distance));
        while let Some((x, d)) = queue.pop_front() {
            visited += 1;
            if self.labels[x as usize] == label && (include_self || x != u) {
                out.push((x, d));
            }
            for &v in self.graph.predecessors(x) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back((v, d + 1));
                }
            }
        }
        (out, visited)
    }

    /// Approximate in-memory footprint: extents, summary edges, the
    /// summary closure, and the element-graph adjacency the traversals
    /// need (all stored as database tables in the paper's implementation).
    pub fn size_bytes(&self) -> usize {
        let extents: usize = self.summary.extents.iter().map(Vec::len).sum();
        extents * 4
            + self.summary.graph.size_bytes()
            + self.summary.class_count() * (self.max_label as usize + 1) / 8
            + self.graph.size_bytes()
    }
}

impl flixcheck::IntegrityCheck for ApexIndex {
    /// Audits the summary against the stored element graph: extents must
    /// partition the node set in agreement with `class_of`, every class
    /// must be label-homogeneous, the quotient graph must simulate the
    /// element graph (every inter-class element edge has a summary edge
    /// and every summary edge a witness), and `label_reach` must equal the labels of
    /// the closure-reachable classes.
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("ApexIndex");
        let n = self.graph.node_count();
        let classes = self.summary.extents.len();
        audit.check(
            "summary shape matches element graph",
            self.labels.len() == n
                && self.summary.class_of.len() == n
                && self.summary.class_label.len() == classes
                && self.summary.graph.node_count() == classes
                && self.label_reach.len() == classes,
            || {
                format!(
                    "n={n} labels={} class_of={} classes={classes} class_label={} \
                     summary graph={} label_reach={}",
                    self.labels.len(),
                    self.summary.class_of.len(),
                    self.summary.class_label.len(),
                    self.summary.graph.node_count(),
                    self.label_reach.len()
                )
            },
        );
        if audit.violation_count() > 0 {
            return audit.finish();
        }

        let mut seen = vec![false; n];
        let mut first = None;
        'extents: for (c, extent) in self.summary.extents.iter().enumerate() {
            let mut prev = None;
            for &u in extent {
                let uu = u as usize;
                if uu >= n || seen[uu] {
                    first = Some(format!("extent {c}: element {u} out of range or repeated"));
                    break 'extents;
                }
                if prev.is_some_and(|p| p >= u) {
                    first = Some(format!("extent {c} not ascending at element {u}"));
                    break 'extents;
                }
                prev = Some(u);
                seen[uu] = true;
                if self.summary.class_of[uu] != c as u32 {
                    first = Some(format!(
                        "element {u} in extent {c} but class_of says {}",
                        self.summary.class_of[uu]
                    ));
                    break 'extents;
                }
                if self.labels[uu] != self.summary.class_label[c] {
                    first = Some(format!(
                        "extent {c} has label {} but element {u} carries {}",
                        self.summary.class_label[c], self.labels[uu]
                    ));
                    break 'extents;
                }
            }
        }
        if first.is_none() {
            if let Some(u) = seen.iter().position(|&s| !s) {
                first = Some(format!("element {u} belongs to no extent"));
            }
        }
        audit.check(
            "extents partition the elements, label-homogeneously",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        // Within-class edges are exempt: `DigraphBuilder::build` drops self
        // loops, and reachability stays sound because the summary closure is
        // reflexive (the pruning BFS runs on the element graph anyway).
        let mut first = None;
        for (u, v) in self.graph.edges() {
            let (cu, cv) = (
                self.summary.class_of[u as usize],
                self.summary.class_of[v as usize],
            );
            if cu != cv && !self.summary.graph.has_edge(cu, cv) {
                first = Some(format!(
                    "element edge ({u}, {v}) has no summary edge ({cu}, {cv})"
                ));
                break;
            }
        }
        audit.check(
            "summary simulates every inter-class element edge",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let mut first = None;
        'witness: for (cu, cv) in self.summary.graph.edges() {
            for &u in &self.summary.extents[cu as usize] {
                for &v in self.graph.successors(u) {
                    if self.summary.class_of[v as usize] == cv {
                        continue 'witness;
                    }
                }
            }
            first = Some(format!("summary edge ({cu}, {cv}) has no element witness"));
            break;
        }
        audit.check(
            "every summary edge is witnessed by an element edge",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        let mut first = None;
        'reach: for c in 0..classes as u32 {
            let mut want = graphcore::BitSet::new(self.max_label as usize + 1);
            for d in 0..classes as u32 {
                if self.summary_closure.reaches(c, d) {
                    want.insert(self.summary.class_label[d as usize] as usize);
                }
            }
            for l in 0..=self.max_label as usize {
                if want.contains(l) != self.label_reach[c as usize].contains(l) {
                    first = Some(format!(
                        "class {c}: label {l} reachability disagrees with the closure"
                    ));
                    break 'reach;
                }
            }
        }
        audit.check(
            "label_reach matches closure-reachable class labels",
            first.is_none(),
            || first.unwrap_or_default(),
        );

        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::DistanceOracle;

    /// article(0) -> title(1), article(0) -> sec(2) -> cite(3),
    /// cite(3) -> article(4) [link], article(4) -> title(5)
    fn sample() -> (Digraph, Vec<u32>) {
        let g = Digraph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (4, 5)]);
        (g, vec![0, 1, 2, 3, 0, 1]) // article=0 title=1 sec=2 cite=3
    }

    #[test]
    fn path_lookup_on_summary() {
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 2);
        assert_eq!(idx.elements_with_path(&[0, 1]), vec![1]);
        assert_eq!(idx.elements_with_path(&[0, 2, 3]), vec![3]);
        assert!(idx.elements_with_path(&[1, 0]).is_empty());
        assert!(idx.elements_with_path(&[]).is_empty());
    }

    #[test]
    fn path_lookup_same_on_coarse_summary() {
        let (g, labels) = sample();
        let coarse = ApexIndex::build(&g, &labels, 0);
        let fine = ApexIndex::build(&g, &labels, 8);
        for path in [vec![0, 1], vec![0, 2], vec![0, 2, 3], vec![2, 3]] {
            assert_eq!(
                coarse.elements_with_path(&path),
                fine.elements_with_path(&path),
                "path {path:?}"
            );
        }
    }

    #[test]
    fn descendants_by_label_matches_oracle() {
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 1);
        let oracle = DistanceOracle::new(&g);
        for u in 0..6u32 {
            for label in 0..4u32 {
                let got = idx.descendants_by_label(u, label, true);
                let mut want: Vec<(NodeId, Distance)> = (0..6u32)
                    .filter(|&v| labels[v as usize] == label)
                    .filter_map(|v| {
                        let d = oracle.distance(u, v);
                        (d != u32::MAX).then_some((v, d))
                    })
                    .collect();
                want.sort_by_key(|&(v, d)| (d, v));
                let mut got_sorted = got.clone();
                got_sorted.sort_by_key(|&(v, d)| (d, v));
                assert_eq!(got_sorted, want, "u={u} label={label}");
                // ascending distance guaranteed by BFS
                assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
            }
        }
    }

    #[test]
    fn distance_and_reachability() {
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 1);
        let oracle = DistanceOracle::new(&g);
        for u in 0..6u32 {
            for v in 0..6u32 {
                let want = oracle.distance(u, v);
                assert_eq!(
                    idx.distance(u, v),
                    (want != u32::MAX).then_some(want),
                    "{u}->{v}"
                );
            }
        }
    }

    #[test]
    fn ancestors_by_label() {
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 1);
        let a = idx.ancestors_by_label(5, 0, false);
        assert_eq!(a, vec![(4, 1), (0, 4)]);
    }

    #[test]
    fn unknown_label_is_empty() {
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 1);
        assert!(idx.descendants_by_label(0, 99, true).is_empty());
    }

    #[test]
    fn adaptive_build_answers_same_queries() {
        let (g, labels) = sample();
        let idx = ApexIndex::build_adaptive(&g, &labels, &[vec![0, 2, 3]]);
        assert_eq!(idx.elements_with_path(&[0, 2, 3]), vec![3]);
        assert_eq!(idx.descendants_by_label(0, 1, false).len(), 2);
    }

    #[test]
    fn size_positive_and_dominated_by_graph() {
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 1);
        assert!(idx.size_bytes() >= g.size_bytes());
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let (g, labels) = sample();
        let idx = ApexIndex::build(&g, &labels, 2);
        idx.integrity_check().unwrap();
        // moving an element to the wrong extent breaks the partition
        let mut bad = idx.clone();
        let moved = bad.summary.extents[0].pop().unwrap();
        bad.summary.extents[1].push(moved);
        bad.summary.extents[1].sort_unstable();
        assert!(bad.integrity_check().is_err());
        // relabelling a class breaks label homogeneity
        let mut bad = idx.clone();
        bad.summary.class_label[0] = bad.summary.class_label[0].wrapping_add(1);
        assert!(bad.integrity_check().is_err());
        // clearing a reach bitset breaks the closure agreement
        let mut bad = idx;
        bad.label_reach[0] = graphcore::BitSet::new(bad.max_label as usize + 1);
        assert!(bad.integrity_check().is_err());
    }
}
