//! Structural summaries via backward partition refinement.

use graphcore::{Digraph, DigraphBuilder, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A structural summary: a partition of the element nodes plus the quotient
/// graph over the partition classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructuralSummary {
    /// `class_of[u]` = summary class of element `u`.
    pub class_of: Vec<u32>,
    /// `extents[c]` = elements of class `c`, ascending.
    pub extents: Vec<Vec<NodeId>>,
    /// `class_label[c]` = the common element label of class `c`.
    pub class_label: Vec<u32>,
    /// Quotient graph over classes.
    pub graph: Digraph,
}

impl StructuralSummary {
    /// Builds the APEX-0 summary: one class per element label.
    pub fn apex0(g: &Digraph, labels: &[u32]) -> Self {
        assert_eq!(labels.len(), g.node_count(), "one label per node");
        // Dense class ids in order of first appearance of each label.
        let mut label_to_class: HashMap<u32, u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(labels.len());
        let mut class_label = Vec::new();
        for &l in labels {
            let next = label_to_class.len() as u32;
            let c = *label_to_class.entry(l).or_insert(next);
            if c as usize == class_label.len() {
                class_label.push(l);
            }
            class_of.push(c);
        }
        Self::finish(g, class_of, class_label)
    }

    /// Refines `self` by one backward-bisimulation round: two elements stay
    /// in the same class only if they agree on the *set of classes of their
    /// parents*. Returns the refined summary and whether anything split.
    pub fn refine_step(&self, g: &Digraph, labels: &[u32]) -> (Self, bool) {
        let mut key_to_class: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(labels.len());
        let mut class_label = Vec::new();
        for (u, &label) in labels.iter().enumerate() {
            let mut parents: Vec<u32> = g
                .predecessors(u as NodeId)
                .iter()
                .map(|&p| self.class_of[p as usize])
                .collect();
            parents.sort_unstable();
            parents.dedup();
            let key = (self.class_of[u], parents);
            let next = key_to_class.len() as u32;
            let c = *key_to_class.entry(key).or_insert(next);
            if c as usize == class_label.len() {
                class_label.push(label);
            }
            class_of.push(c);
        }
        let changed = class_label.len() != self.extents.len();
        (Self::finish(g, class_of, class_label), changed)
    }

    /// Refines up to `k` rounds (or to the fixpoint, whichever is first).
    /// `k = 0` leaves APEX-0 untouched; large `k` converges towards the
    /// 1-index (full backward bisimulation).
    pub fn refine(self, g: &Digraph, labels: &[u32], k: usize) -> Self {
        let mut cur = self;
        for _ in 0..k {
            let (next, changed) = cur.refine_step(g, labels);
            cur = next;
            if !changed {
                break;
            }
        }
        cur
    }

    /// Refines only the classes touched by `paths` (label paths, root-ward).
    /// This is APEX's adaptive step: classes on a frequent path are split by
    /// parent classes; everything else stays coarse.
    pub fn refine_for_paths(self, g: &Digraph, labels: &[u32], paths: &[Vec<u32>]) -> Self {
        // Collect the labels that occur in any frequent path.
        let hot: std::collections::HashSet<u32> =
            paths.iter().flat_map(|p| p.iter().copied()).collect();
        let mut cur = self;
        // Refine up to the longest path; only hot-labelled classes split.
        let rounds = paths.iter().map(Vec::len).max().unwrap_or(0);
        for _ in 0..rounds.saturating_sub(1) {
            let mut key_to_class: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut class_of = Vec::with_capacity(labels.len());
            let mut class_label = Vec::new();
            for (u, &label) in labels.iter().enumerate() {
                let key = if hot.contains(&label) {
                    let mut parents: Vec<u32> = g
                        .predecessors(u as NodeId)
                        .iter()
                        .map(|&p| cur.class_of[p as usize])
                        .collect();
                    parents.sort_unstable();
                    parents.dedup();
                    (cur.class_of[u], parents)
                } else {
                    (cur.class_of[u], Vec::new())
                };
                let next = key_to_class.len() as u32;
                let c = *key_to_class.entry(key).or_insert(next);
                if c as usize == class_label.len() {
                    class_label.push(label);
                }
                class_of.push(c);
            }
            let changed = class_label.len() != cur.extents.len();
            cur = Self::finish(g, class_of, class_label);
            if !changed {
                break;
            }
        }
        cur
    }

    fn finish(g: &Digraph, class_of: Vec<u32>, class_label: Vec<u32>) -> Self {
        let count = class_label.len();
        let mut extents = vec![Vec::new(); count];
        for (u, &c) in class_of.iter().enumerate() {
            extents[c as usize].push(u as NodeId);
        }
        let mut b = DigraphBuilder::with_nodes(count);
        for (u, v) in g.edges() {
            let (cu, cv) = (class_of[u as usize], class_of[v as usize]);
            if cu != cv || g.has_edge(u, v) {
                b.add_edge(cu, cv);
            }
        }
        Self {
            class_of,
            extents,
            class_label,
            graph: b.build(),
        }
    }

    /// Number of summary classes.
    pub fn class_count(&self) -> usize {
        self.extents.len()
    }

    /// Classes whose elements carry `label`.
    pub fn classes_with_label(&self, label: u32) -> Vec<u32> {
        (0..self.class_count() as u32)
            .filter(|&c| self.class_label[c as usize] == label)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two `b` elements with different parents:
    /// a(0) -> b(1), a(0) -> c(2), c(2) -> b(3)
    fn sample() -> (Digraph, Vec<u32>) {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (2, 3)]);
        (g, vec![10, 20, 30, 20])
    }

    #[test]
    fn apex0_groups_by_label() {
        let (g, labels) = sample();
        let s = StructuralSummary::apex0(&g, &labels);
        assert_eq!(s.class_count(), 3);
        assert_eq!(s.class_of[1], s.class_of[3]); // both label 20
        let b_class = s.class_of[1] as usize;
        assert_eq!(s.extents[b_class], vec![1, 3]);
        assert_eq!(s.class_label[b_class], 20);
    }

    #[test]
    fn summary_graph_mirrors_element_edges() {
        let (g, labels) = sample();
        let s = StructuralSummary::apex0(&g, &labels);
        let (a, b, c) = (s.class_of[0], s.class_of[1], s.class_of[2]);
        assert!(s.graph.has_edge(a, b));
        assert!(s.graph.has_edge(a, c));
        assert!(s.graph.has_edge(c, b));
    }

    #[test]
    fn refinement_splits_by_parent_class() {
        let (g, labels) = sample();
        let s = StructuralSummary::apex0(&g, &labels);
        let (s, changed) = s.refine_step(&g, &labels);
        assert!(changed);
        // the two b elements now differ: parents {a} vs {c}
        assert_ne!(s.class_of[1], s.class_of[3]);
        assert_eq!(s.class_count(), 4);
    }

    #[test]
    fn refinement_reaches_fixpoint() {
        let (g, labels) = sample();
        let s = StructuralSummary::apex0(&g, &labels).refine(&g, &labels, 10);
        let (_, changed) = s.refine_step(&g, &labels);
        assert!(!changed);
    }

    #[test]
    fn adaptive_refinement_only_splits_hot_labels() {
        let (g, labels) = sample();
        // frequent path c/b -> only label-20 and label-30 classes may split
        let s =
            StructuralSummary::apex0(&g, &labels).refine_for_paths(&g, &labels, &[vec![30, 20]]);
        assert_ne!(s.class_of[1], s.class_of[3]);
    }

    #[test]
    fn classes_with_label_lookup() {
        let (g, labels) = sample();
        let s = StructuralSummary::apex0(&g, &labels).refine(&g, &labels, 10);
        let classes = s.classes_with_label(20);
        assert_eq!(classes.len(), 2);
        for c in classes {
            assert_eq!(s.class_label[c as usize], 20);
        }
    }

    #[test]
    fn extents_partition_nodes() {
        let (g, labels) = sample();
        for k in [0, 1, 5] {
            let s = StructuralSummary::apex0(&g, &labels).refine(&g, &labels, k);
            let mut all: Vec<NodeId> = s.extents.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "k={k}");
        }
    }
}
