//! APEX-style adaptive path index ([4] in the FliX paper).
//!
//! APEX maintains a *structural summary*: elements are grouped into summary
//! nodes by their incoming label paths, each summary node stores its extent
//! (the element set), and summary edges mirror element edges. The base
//! summary (APEX-0) groups by tag alone; refinement splits summary nodes by
//! the summary classes of their parents, either uniformly to depth `k`
//! (A(k)-style backward bisimulation) or adaptively along the label paths a
//! query workload actually uses — that is the "adaptive" in APEX.
//!
//! Simple label-path lookups (`/a/b/c`) run entirely on the summary. The
//! descendants-or-self axis, which FliX cares about, has no direct support:
//! it falls back to a summary-pruned traversal of the element graph. That
//! asymmetry is exactly why APEX loses against the connection indexes in
//! the paper's Figure 5.
//!
//! * [`summary`]: partition refinement and the summary graph.
//! * [`index::ApexIndex`]: the queryable index.
//! * [`dataguide::DataGuide`]: the strong-DataGuide summary the paper
//!   reviews alongside APEX ([9]) — linear on trees, exact label-path
//!   lookups, included to demonstrate that FliX's strategy set extends
//!   beyond the three built-in indexes.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Strong DataGuides: deterministic path summaries of a document graph.
pub mod dataguide;
/// The queryable APEX index built over a structural summary.
pub mod index;
/// Structural summaries via backward partition refinement.
pub mod summary;

pub use dataguide::DataGuide;
pub use index::ApexIndex;
pub use summary::StructuralSummary;
