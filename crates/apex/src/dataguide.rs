//! Strong DataGuides (Goldman & Widom, VLDB 1997 — [9] in the FliX paper).
//!
//! A DataGuide is the deterministic automaton of all label paths of a
//! collection: every root-to-element label path occurs exactly once, and
//! each guide node stores the extent of elements reachable over its path.
//! On tree-shaped data the strong DataGuide is linear in the data and
//! answers label-path lookups in one automaton walk; on graphs it can blow
//! up exponentially, which is why FliX would only select it for tree meta
//! documents. The paper reviews DataGuides among the existing path indexes
//! (§2.2); this implementation doubles as a demonstration that the
//! framework's strategy set is extensible.

use graphcore::{Digraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A strong DataGuide over a forest (or graph, with the usual blow-up
/// caveat — construction is target-set determinised, so it terminates on
/// any input).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataGuide {
    /// `label[g]` = edge label leading into guide node `g` (the root guide
    /// node has label `u32::MAX` and an empty extent path).
    labels: Vec<u32>,
    /// Child guide nodes per guide node, as `(label, guide)` sorted.
    children: Vec<Vec<(u32, u32)>>,
    /// Extent: data elements reachable over this guide node's path.
    extents: Vec<Vec<NodeId>>,
}

impl DataGuide {
    /// Builds the strong DataGuide of `g` (labels per node, roots =
    /// in-degree-0 nodes).
    pub fn build(g: &Digraph, node_labels: &[u32]) -> Self {
        assert_eq!(node_labels.len(), g.node_count(), "one label per node");
        let mut labels = vec![u32::MAX];
        let mut children: Vec<Vec<(u32, u32)>> = vec![Vec::new()];
        let mut extents: Vec<Vec<NodeId>> = vec![Vec::new()];
        // Determinisation over target sets: guide node <-> set of data
        // nodes (sorted). Classic subset construction seeded by roots
        // grouped by label.
        let mut memo: HashMap<Vec<NodeId>, u32> = HashMap::new();
        let roots: Vec<NodeId> = g.nodes().filter(|&u| g.in_degree(u) == 0).collect();
        let mut work: Vec<(u32, Vec<NodeId>)> = Vec::new();
        let mut by_label: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &r in &roots {
            by_label.entry(node_labels[r as usize]).or_default().push(r);
        }
        let mut sorted: Vec<(u32, Vec<NodeId>)> = by_label.drain().collect();
        sorted.sort_unstable();
        for (label, mut set) in sorted {
            set.sort_unstable();
            let gid = labels.len() as u32;
            labels.push(label);
            children.push(Vec::new());
            extents.push(set.clone());
            children[0].push((label, gid));
            memo.insert(set.clone(), gid);
            work.push((gid, set));
        }
        while let Some((gid, set)) = work.pop() {
            let mut next: HashMap<u32, Vec<NodeId>> = HashMap::new();
            for &u in &set {
                for &v in g.successors(u) {
                    next.entry(node_labels[v as usize]).or_default().push(v);
                }
            }
            let mut sorted: Vec<(u32, Vec<NodeId>)> = next.drain().collect();
            sorted.sort_unstable();
            for (label, mut target) in sorted {
                target.sort_unstable();
                target.dedup();
                let child_gid = match memo.get(&target) {
                    Some(&existing) => existing,
                    None => {
                        let new_gid = labels.len() as u32;
                        labels.push(label);
                        children.push(Vec::new());
                        extents.push(target.clone());
                        memo.insert(target.clone(), new_gid);
                        work.push((new_gid, target));
                        new_gid
                    }
                };
                children[gid as usize].push((label, child_gid));
            }
            children[gid as usize].sort_unstable();
            children[gid as usize].dedup();
        }
        Self {
            labels,
            children,
            extents,
        }
    }

    /// Number of guide nodes (including the synthetic root).
    pub fn guide_size(&self) -> usize {
        self.labels.len()
    }

    /// Elements reached by the absolute label path `path`, or an empty
    /// slice if the path does not occur in the collection.
    pub fn elements_with_path(&self, path: &[u32]) -> &[NodeId] {
        let mut g = 0u32; // synthetic root
        for &label in path {
            match self.children[g as usize].binary_search_by_key(&label, |&(l, _)| l) {
                Ok(i) => g = self.children[g as usize][i].1,
                Err(_) => return &[],
            }
        }
        &self.extents[g as usize]
    }

    /// All label paths of the collection, depth-first, as `(path, extent
    /// size)` pairs — the "query formulation" use DataGuides were invented
    /// for (a schema summary users can browse).
    pub fn enumerate_paths(&self, max_depth: usize) -> Vec<(Vec<u32>, usize)> {
        let mut out = Vec::new();
        let mut stack: Vec<(u32, Vec<u32>)> = vec![(0, Vec::new())];
        while let Some((g, path)) = stack.pop() {
            if g != 0 {
                out.push((path.clone(), self.extents[g as usize].len()));
            }
            if path.len() >= max_depth {
                continue;
            }
            for &(label, child) in self.children[g as usize].iter().rev() {
                let mut p = path.clone();
                p.push(label);
                stack.push((child, p));
            }
        }
        out
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let edges: usize = self.children.iter().map(Vec::len).sum();
        let extent_entries: usize = self.extents.iter().map(Vec::len).sum();
        self.labels.len() * 4 + edges * 8 + extent_entries * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two documents with overlapping structure:
    /// doc1: a(0) -> b(1) -> c(2), a(0) -> b(3)
    /// doc2: a(4) -> b(5) -> d(6)
    fn sample() -> (Digraph, Vec<u32>) {
        let g = Digraph::from_edges(7, [(0, 1), (1, 2), (0, 3), (4, 5), (5, 6)]);
        // labels: a=0 b=1 c=2 d=3
        (g, vec![0, 1, 2, 1, 0, 1, 3])
    }

    #[test]
    fn path_lookup_merges_documents() {
        let (g, labels) = sample();
        let dg = DataGuide::build(&g, &labels);
        assert_eq!(dg.elements_with_path(&[0]), &[0, 4]);
        assert_eq!(dg.elements_with_path(&[0, 1]), &[1, 3, 5]);
        assert_eq!(dg.elements_with_path(&[0, 1, 2]), &[2]);
        assert_eq!(dg.elements_with_path(&[0, 1, 3]), &[6]);
        assert!(dg.elements_with_path(&[1]).is_empty());
        assert!(dg.elements_with_path(&[0, 1, 2, 3]).is_empty());
    }

    #[test]
    fn empty_path_is_synthetic_root() {
        let (g, labels) = sample();
        let dg = DataGuide::build(&g, &labels);
        assert!(dg.elements_with_path(&[]).is_empty());
    }

    #[test]
    fn guide_is_linear_on_trees() {
        // a deep comb tree: guide nodes = distinct label paths
        let n = 60u32;
        let g = Digraph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1)));
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let dg = DataGuide::build(&g, &labels);
        assert_eq!(dg.guide_size() as u32, n + 1, "one guide node per path");
    }

    #[test]
    fn dag_determinisation_groups_target_sets() {
        // diamond: a -> b, a -> c, b -> d, c -> d with labels a,b,b,d:
        // path a/b leads to {1,2}; a/b/d to {3}
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dg = DataGuide::build(&g, &[0, 1, 1, 2]);
        assert_eq!(dg.elements_with_path(&[0, 1]), &[1, 2]);
        assert_eq!(dg.elements_with_path(&[0, 1, 2]), &[3]);
    }

    #[test]
    fn enumerate_paths_lists_schema() {
        let (g, labels) = sample();
        let dg = DataGuide::build(&g, &labels);
        let mut paths = dg.enumerate_paths(5);
        paths.sort();
        assert_eq!(
            paths,
            vec![
                (vec![0], 2),
                (vec![0, 1], 3),
                (vec![0, 1, 2], 1),
                (vec![0, 1, 3], 1),
            ]
        );
        // depth cap respected
        assert_eq!(dg.enumerate_paths(1).len(), 1);
    }

    #[test]
    fn agrees_with_apex_path_lookup() {
        let (g, labels) = sample();
        let dg = DataGuide::build(&g, &labels);
        let apex = crate::ApexIndex::build(&g, &labels, 2);
        for path in [vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 1, 3], vec![2]] {
            assert_eq!(
                dg.elements_with_path(&path),
                apex.elements_with_path(&path),
                "path {path:?}"
            );
        }
    }

    #[test]
    fn size_accounting() {
        let (g, labels) = sample();
        let dg = DataGuide::build(&g, &labels);
        assert!(dg.size_bytes() > 0);
    }
}
