//! Synthetic DBLP-like publication corpus.
//!
//! One XML document per publication (the paper generated "one XML document
//! for each 2nd-level element of DBLP"), with the record fields real DBLP
//! uses (`author`, `title`, `year`, `pages`, `ee`, ...) and `cite` elements
//! carrying `xlink:href` links to other publication documents. Citations
//! point backwards in publication order with a preferential-attachment
//! bias, which reproduces DBLP's skewed in-link distribution.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{Collection, Document, LinkSpec};

/// Configuration for the synthetic DBLP corpus.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publication documents.
    pub documents: usize,
    /// Fraction of publications that carry citation records at all. The
    /// paper notes that in DBLP "most documents are isolated" (§4.3):
    /// citation records are concentrated in a minority of entries.
    pub citing_fraction: f64,
    /// Mean citations per *citing* publication (Poisson-ish).
    pub mean_citations: f64,
    /// Maximum authors per publication.
    pub max_authors: usize,
    /// Citation window: how far back (in publication order) citations may
    /// reach. Real bibliographies cite mostly recent work; the window keeps
    /// citation chains temporally local like in the real DBLP.
    pub citation_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            documents: 500,
            citing_fraction: 0.25,
            mean_citations: 16.4,
            max_authors: 4,
            citation_window: 600,
            seed: 42,
        }
    }
}

impl DblpConfig {
    /// The paper's corpus scale: 6,210 documents, ~169k elements, ~25k
    /// inter-document links.
    pub fn paper_scale() -> Self {
        // 6,210 × 0.25 × 16.4 ≈ 25.4k links, matching the paper's 25,368.
        Self {
            documents: 6210,
            citing_fraction: 0.25,
            mean_citations: 16.4,
            max_authors: 4,
            citation_window: 600,
            seed: 2004,
        }
    }

    /// A small corpus for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            documents: 60,
            citing_fraction: 0.5,
            mean_citations: 6.0,
            max_authors: 3,
            citation_window: 30,
            seed,
        }
    }
}

const VENUES: [(&str, &str, bool); 6] = [
    ("conf/edbt", "EDBT", true),
    ("conf/icde", "ICDE", true),
    ("conf/sigmod", "SIGMOD", true),
    ("conf/vldb", "VLDB", true),
    ("journals/tods", "TODS", false),
    ("journals/vldbj", "VLDB Journal", false),
];

const TITLE_WORDS: [&str; 24] = [
    "Efficient",
    "Indexing",
    "XML",
    "Queries",
    "Graph",
    "Reachability",
    "Distributed",
    "Joins",
    "Streams",
    "Adaptive",
    "Structures",
    "Views",
    "Semistructured",
    "Data",
    "Optimization",
    "Caching",
    "Recovery",
    "Transactions",
    "Mining",
    "Ranking",
    "Retrieval",
    "Ontologies",
    "Compression",
    "Partitioning",
];

const SURNAMES: [&str; 16] = [
    "Mohan",
    "Schenkel",
    "Theobald",
    "Weikum",
    "Grust",
    "Cohen",
    "Chung",
    "Widom",
    "Goldman",
    "Fagin",
    "Shasha",
    "Ley",
    "Kaushik",
    "Cooper",
    "Sayed",
    "Amer-Yahia",
];

/// Generates the corpus.
///
/// The returned collection is fully wired: each document has extracted
/// anchors and links (citations are real `xlink:href` attributes, so the
/// same code path as parsed XML is exercised). Call `.seal()` to get the
/// queryable [`xmlgraph::CollectionGraph`].
pub fn generate_dblp(cfg: &DblpConfig) -> Collection {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut c = Collection::new();
    let spec = LinkSpec::default();

    // Pre-pick venue + name per publication so citations can reference
    // documents not yet materialised.
    let names: Vec<(usize, String)> = (0..cfg.documents)
        .map(|i| {
            let v = rng.gen_range(0..VENUES.len());
            (v, format!("{}/p{}.xml", VENUES[v].0, i))
        })
        .collect();

    for i in 0..cfg.documents {
        let (venue, name) = &names[i];
        let (_, venue_label, is_conf) = VENUES[*venue];
        let root_tag = if is_conf { "inproceedings" } else { "article" };
        let mut d = Document::new(name.clone());

        let t_root = c.tags.intern(root_tag);
        let root = d.add_element(t_root, None);
        d.set_attr(root, "id", format!("p{i}"));
        d.set_attr(root, "key", name.trim_end_matches(".xml"));

        let n_authors = rng.gen_range(1..=cfg.max_authors);
        for _ in 0..n_authors {
            let t = c.tags.intern("author");
            let a = d.add_element(t, Some(root));
            let sur = SURNAMES[rng.gen_range(0..SURNAMES.len())];
            let ini = (b'A' + rng.gen_range(0..26u8)) as char;
            d.append_text(a, &format!("{ini}. {sur}"));
        }

        let t_title = c.tags.intern("title");
        let title = d.add_element(t_title, Some(root));
        let words: Vec<&str> = (0..rng.gen_range(3..7))
            .map(|_| TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())])
            .collect();
        d.append_text(title, &words.join(" "));

        let t_year = c.tags.intern("year");
        let year = d.add_element(t_year, Some(root));
        d.append_text(year, &format!("{}", 1988 + (i * 15 / cfg.documents.max(1))));

        let t_pages = c.tags.intern("pages");
        let pages = d.add_element(t_pages, Some(root));
        let p0 = rng.gen_range(1..800);
        d.append_text(pages, &format!("{}-{}", p0, p0 + rng.gen_range(8..25)));

        if is_conf {
            let t = c.tags.intern("booktitle");
            let bt = d.add_element(t, Some(root));
            d.append_text(bt, venue_label);
        } else {
            let t = c.tags.intern("journal");
            let j = d.add_element(t, Some(root));
            d.append_text(j, venue_label);
            let t = c.tags.intern("volume");
            let v = d.add_element(t, Some(root));
            d.append_text(v, &format!("{}", rng.gen_range(1..30)));
            let t = c.tags.intern("number");
            let nr = d.add_element(t, Some(root));
            d.append_text(nr, &format!("{}", rng.gen_range(1..5)));
        }

        let t_ee = c.tags.intern("ee");
        let ee = d.add_element(t_ee, Some(root));
        d.append_text(
            ee,
            &format!(
                "https://doi.example/10.1145/{}.{}",
                100000 + i,
                rng.gen_range(1000..9999)
            ),
        );
        let t_url = c.tags.intern("url");
        let url = d.add_element(t_url, Some(root));
        d.append_text(url, &format!("https://dblp.example/{}", name));
        let t_month = c.tags.intern("month");
        let month = d.add_element(t_month, Some(root));
        d.append_text(
            month,
            ["January", "March", "June", "September"][rng.gen_range(0..4usize)],
        );
        let t_note = c.tags.intern("note");
        let note = d.add_element(t_note, Some(root));
        d.append_text(note, "Peer reviewed; camera-ready version of record.");
        let t_kw = c.tags.intern("keywords");
        let kws = d.add_element(t_kw, Some(root));
        for _ in 0..rng.gen_range(2..5) {
            let t_k = c.tags.intern("keyword");
            let k = d.add_element(t_k, Some(kws));
            d.append_text(k, TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]);
        }
        if rng.gen_bool(0.4) {
            let t_cr = c.tags.intern("crossref");
            let cr = d.add_element(t_cr, Some(root));
            d.append_text(
                cr,
                &format!(
                    "{}/{}",
                    VENUES[*venue].0,
                    1988 + (i * 15 / cfg.documents.max(1))
                ),
            );
        }

        // Citations: only a minority of records carries them ("most
        // documents are isolated"), backwards in publication order within
        // the citation window.
        if i > 0 && rng.gen_bool(cfg.citing_fraction.clamp(0.0, 1.0)) {
            let n_cites = sample_poisson(&mut rng, cfg.mean_citations);
            let t_cite = c.tags.intern("cite");
            let t_label = c.tags.intern("label");
            let mut cited = std::collections::HashSet::new();
            for _ in 0..n_cites {
                // lag ~ u² over the citation window: most citations go to
                // recent papers, a long tail reaches back further
                let u: f64 = rng.gen::<f64>();
                let window = cfg.citation_window.min(i).max(1);
                let lag = 1 + ((u * u) * window as f64) as usize;
                let Some(target) = i.checked_sub(lag) else {
                    continue;
                };
                if !cited.insert(target) {
                    continue;
                }
                let cite = d.add_element(t_cite, Some(root));
                d.set_attr(
                    cite,
                    "xlink:href",
                    format!("{}#p{}", names[target].1, target),
                );
                let lab = d.add_element(t_label, Some(cite));
                d.append_text(lab, &format!("[{}]", cited.len()));
            }
        }

        d.extract_links(&spec);
        c.add_document(d).expect("unique generated names");
    }
    c
}

/// Knuth's Poisson sampler (fine for small means).
fn sample_poisson(rng: &mut SmallRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // safety net for absurd means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = generate_dblp(&DblpConfig::tiny(7)).seal();
        let b = generate_dblp(&DblpConfig::tiny(7)).seal();
        assert_eq!(a.stats(), b.stats());
        let c = generate_dblp(&DblpConfig::tiny(8)).seal();
        assert_ne!(a.stats(), c.stats());
    }

    #[test]
    fn scale_matches_paper_shape() {
        let cfg = DblpConfig {
            documents: 600,
            ..DblpConfig::default()
        };
        let cg = generate_dblp(&cfg).seal();
        let s = cg.stats();
        assert_eq!(s.documents, 600);
        let per_doc = s.elements as f64 / s.documents as f64;
        // paper: 168,991 / 6,210 ≈ 27.2 elements per document
        assert!(
            (15.0..35.0).contains(&per_doc),
            "elements per doc {per_doc}"
        );
        let links_per_doc = s.links as f64 / s.documents as f64;
        // paper: 25,368 / 6,210 ≈ 4.1 links per document
        assert!(
            (2.0..6.0).contains(&links_per_doc),
            "links per doc {links_per_doc}"
        );
        assert_eq!(s.dangling_links, 0);
    }

    #[test]
    fn citations_point_backwards() {
        let cg = generate_dblp(&DblpConfig::tiny(3)).seal();
        for &(u, v) in &cg.link_edges {
            assert!(cg.doc_of(u) > cg.doc_of(v), "cite goes to earlier paper");
        }
    }

    #[test]
    fn documents_are_trees_with_real_attrs() {
        let c = generate_dblp(&DblpConfig::tiny(5));
        for (_, d) in c.docs() {
            // every non-root has exactly one parent by construction; check
            // anchors and hrefs were extracted from attributes
            assert!(
                d.anchor(&format!(
                    "p{}",
                    d.name
                        .split('p')
                        .next_back()
                        .unwrap()
                        .trim_end_matches(".xml")
                ))
                .is_some()
                    || !d.is_empty()
            );
            for (src, target) in d.links() {
                assert!(d.element(*src).attr("xlink:href").is_some());
                assert!(target.document.is_some());
            }
        }
    }

    #[test]
    fn roots_have_publication_tags() {
        let cg = generate_dblp(&DblpConfig::tiny(1)).seal();
        let art = cg.collection.tags.get("article");
        let inp = cg.collection.tags.get("inproceedings");
        for (doc, _) in cg.collection.docs() {
            let root = cg.doc_root(doc);
            let t = Some(cg.tag_of(root));
            assert!(t == art || t == inp);
        }
    }

    #[test]
    fn poisson_mean_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 5000;
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, 4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((3.6..4.4).contains(&mean), "mean {mean}");
    }
}
