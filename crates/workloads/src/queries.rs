//! Query workload generators: descendants queries (`a//B`) and connection
//! tests (`a//b`), the two query families of the paper's §5 and §6.

use graphcore::{bfs_from, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{CollectionGraph, TagId};

/// One `a//B` query: a start element and a target tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescendantQuery {
    /// The start element (the `a`).
    pub start: NodeId,
    /// The target tag (the `B`).
    pub target_tag: TagId,
}

/// One connection-test pair `a//b`, with the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionPair {
    /// Source element.
    pub from: NodeId,
    /// Target element.
    pub to: NodeId,
    /// Whether `to` is reachable from `from` in the full graph.
    pub reachable: bool,
}

/// Samples `count` descendants queries.
///
/// Start elements are sampled uniformly from elements that have at least
/// one outgoing edge (queries from leaves are trivial); target tags are
/// sampled from the tags of the start element's reachable set when
/// possible, so most queries have non-empty answers — mirroring the paper's
/// "all article descendants of Mohan's VLDB 99 paper" style of query.
pub fn descendant_queries(cg: &CollectionGraph, count: usize, seed: u64) -> Vec<DescendantQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = cg.node_count();
    let mut out = Vec::with_capacity(count);
    if n == 0 {
        return out;
    }
    let candidates: Vec<NodeId> = cg
        .graph
        .nodes()
        .filter(|&u| cg.graph.out_degree(u) > 0)
        .collect();
    if candidates.is_empty() {
        return out;
    }
    let mut attempts = 0;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let start = candidates[rng.gen_range(0..candidates.len())];
        // probe a shallow sample of the reachable set for a plausible tag
        let reach = bfs_from(&cg.graph, start);
        let probe = &reach[1..reach.len().min(50)];
        if probe.is_empty() {
            continue;
        }
        let target_tag = cg.tag_of(probe[rng.gen_range(0..probe.len())]);
        out.push(DescendantQuery { start, target_tag });
    }
    out
}

/// Samples `count` connection pairs, roughly half reachable.
pub fn connection_pairs(cg: &CollectionGraph, count: usize, seed: u64) -> Vec<ConnectionPair> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = cg.node_count() as u32;
    let mut out = Vec::with_capacity(count);
    if n < 2 {
        return out;
    }
    // Alternate between biased-reachable sampling (walk from a random node)
    // and uniform pairs (usually unreachable in a sparse graph).
    while out.len() < count {
        let from = rng.gen_range(0..n);
        let want_reachable = out.len() % 2 == 0;
        let to = if want_reachable {
            let reach = bfs_from(&cg.graph, from);
            reach[rng.gen_range(0..reach.len())]
        } else {
            rng.gen_range(0..n)
        };
        let reachable = graphcore::is_reachable(&cg.graph, from, to);
        out.push(ConnectionPair {
            from,
            to,
            reachable,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{generate_dblp, DblpConfig};

    #[test]
    fn descendant_queries_mostly_nonempty() {
        let cg = generate_dblp(&DblpConfig::tiny(11)).seal();
        let qs = descendant_queries(&cg, 20, 1);
        assert_eq!(qs.len(), 20);
        let nonempty = qs
            .iter()
            .filter(|q| {
                bfs_from(&cg.graph, q.start)
                    .iter()
                    .skip(1)
                    .any(|&v| cg.tag_of(v) == q.target_tag)
            })
            .count();
        assert!(nonempty >= 15, "only {nonempty}/20 nonempty");
    }

    #[test]
    fn connection_pairs_have_truth_and_mix() {
        let cg = generate_dblp(&DblpConfig::tiny(13)).seal();
        let pairs = connection_pairs(&cg, 30, 2);
        assert_eq!(pairs.len(), 30);
        for p in &pairs {
            assert_eq!(
                p.reachable,
                graphcore::is_reachable(&cg.graph, p.from, p.to)
            );
        }
        let reachable = pairs.iter().filter(|p| p.reachable).count();
        assert!(reachable >= 10, "too few reachable: {reachable}");
    }

    #[test]
    fn deterministic_workloads() {
        let cg = generate_dblp(&DblpConfig::tiny(17)).seal();
        assert_eq!(
            descendant_queries(&cg, 10, 5),
            descendant_queries(&cg, 10, 5)
        );
        assert_eq!(connection_pairs(&cg, 10, 5), connection_pairs(&cg, 10, 5));
    }
}
