//! Mixed collections: a tree-like region and a densely linked region, with
//! a few bridges — the paper's Figure 1 scenario and the Hybrid
//! configuration's home turf.

use crate::trees::{generate_trees, TreeConfig};
use crate::web::{generate_web, WebConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{Collection, LinkTarget};

/// Configuration for mixed collections.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// The tree-like region.
    pub trees: TreeConfig,
    /// The densely linked region.
    pub web: WebConfig,
    /// Bridge links from tree documents into the web region and back.
    pub bridge_links: usize,
    /// RNG seed for the bridges.
    pub seed: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        Self {
            trees: TreeConfig::default(),
            web: WebConfig::default(),
            bridge_links: 6,
            seed: 42,
        }
    }
}

/// Generates the mixed collection: all tree documents, all web documents,
/// plus `bridge_links` links in each direction between the regions.
pub fn generate_mixed(cfg: &MixedConfig) -> Collection {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let tree_part = generate_trees(&cfg.trees);
    let web_part = generate_web(&cfg.web);

    let mut c = Collection::new();
    // Re-intern into the merged collection, rebuilding each document.
    let merge = |c: &mut Collection, src: &Collection| {
        for (_, d) in src.docs() {
            let mut nd = xmlgraph::Document::new(d.name.clone());
            for (local, el) in d.elements() {
                let tag = c.tags.intern(src.tags.name(el.tag));
                let id = nd.add_element(tag, el.parent);
                debug_assert_eq!(id, local);
                for (k, v) in &el.attrs {
                    nd.set_attr(id, k.clone(), v.clone());
                }
                if !el.text.is_empty() {
                    nd.append_text(id, &el.text);
                }
            }
            for (src_el, target) in d.links() {
                nd.add_link(*src_el, target.clone());
            }
            for (frag, el) in d.anchors() {
                nd.add_anchor(frag, el);
            }
            // tree documents register no anchors; bridges target "top"
            if !d.is_empty() && d.anchor("top").is_none() {
                nd.add_anchor("top", d.root());
            }
            c.add_document(nd).expect("unique names across regions");
        }
    };
    merge(&mut c, &tree_part);
    merge(&mut c, &web_part);

    let tree_docs = cfg.trees.documents;
    let web_docs = cfg.web.documents;
    if tree_docs > 0 && web_docs > 0 {
        for _ in 0..cfg.bridge_links {
            // tree -> web
            let td = rng.gen_range(0..tree_docs) as u32;
            let wd = rng.gen_range(0..web_docs);
            let src = rng.gen_range(0..c.doc(td).len()) as u32;
            c.doc_mut(td).add_link(
                src,
                LinkTarget {
                    document: Some(format!("web/page{wd}.xml")),
                    fragment: Some("top".into()),
                },
            );
            // web -> tree
            let wd = (tree_docs + rng.gen_range(0..web_docs)) as u32;
            let td = rng.gen_range(0..tree_docs);
            let src = rng.gen_range(0..c.doc(wd).len()) as u32;
            c.doc_mut(wd).add_link(
                src,
                LinkTarget {
                    document: Some(format!("trees/doc{td}.xml")),
                    fragment: Some("top".into()),
                },
            );
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_regions_present_and_bridged() {
        let cfg = MixedConfig::default();
        let cg = generate_mixed(&cfg).seal();
        let s = cg.stats();
        assert_eq!(s.documents, cfg.trees.documents + cfg.web.documents);
        // bridges resolve: "top" anchors exist in every document
        assert_eq!(s.dangling_links, 0, "dangling: {}", s.dangling_links);
        // doc graph connects the two regions
        let tree_docs = cfg.trees.documents as u32;
        let has_bridge = cg
            .doc_graph
            .edges()
            .any(|(a, b)| (a < tree_docs) != (b < tree_docs));
        assert!(has_bridge);
    }

    #[test]
    fn tree_region_stays_tree_shaped_internally() {
        let cfg = MixedConfig {
            bridge_links: 0,
            ..MixedConfig::default()
        };
        let cg = generate_mixed(&cfg).seal();
        // Documents from the tree region have no intra-document links.
        for d in 0..cfg.trees.documents as u32 {
            assert!(cg.collection.doc(d).links().is_empty());
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_mixed(&MixedConfig::default()).seal();
        let b = generate_mixed(&MixedConfig::default()).seal();
        assert_eq!(a.stats(), b.stats());
    }
}
