//! Link-free tree collections: the regime where plain PPO wins.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{Collection, Document};

/// Configuration for random tree documents.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Number of documents.
    pub documents: usize,
    /// Elements per document (exact).
    pub elements_per_doc: usize,
    /// Maximum children per element.
    pub max_fanout: usize,
    /// Number of distinct tag names.
    pub tag_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            documents: 50,
            elements_per_doc: 100,
            max_fanout: 5,
            tag_count: 12,
            seed: 42,
        }
    }
}

/// Generates `cfg.documents` random tree documents with no links at all.
///
/// Each document is built by attaching every new element to a uniformly
/// random existing element with spare fan-out capacity, giving natural
/// depth/width variation.
pub fn generate_trees(cfg: &TreeConfig) -> Collection {
    assert!(cfg.elements_per_doc >= 1);
    assert!(cfg.max_fanout >= 1);
    assert!(cfg.tag_count >= 1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut c = Collection::new();
    let tags: Vec<u32> = (0..cfg.tag_count)
        .map(|i| c.tags.intern(&format!("t{i}")))
        .collect();
    for doc_i in 0..cfg.documents {
        let mut d = Document::new(format!("trees/doc{doc_i}.xml"));
        let root = d.add_element(tags[rng.gen_range(0..tags.len())], None);
        let mut open = vec![root];
        let mut child_count = vec![0usize];
        for _ in 1..cfg.elements_per_doc {
            let slot = rng.gen_range(0..open.len());
            let parent = open[slot];
            let el = d.add_element(tags[rng.gen_range(0..tags.len())], Some(parent));
            child_count[parent as usize] += 1;
            if child_count[parent as usize] >= cfg.max_fanout {
                open.swap_remove(slot);
            }
            open.push(el);
            child_count.push(0);
        }
        c.add_document(d).expect("unique names");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_element_counts_and_no_links() {
        let cfg = TreeConfig {
            documents: 10,
            elements_per_doc: 64,
            ..TreeConfig::default()
        };
        let cg = generate_trees(&cfg).seal();
        let s = cg.stats();
        assert_eq!(s.documents, 10);
        assert_eq!(s.elements, 640);
        assert_eq!(s.links, 0);
        // a forest: edges = elements - documents
        assert_eq!(s.edges, 640 - 10);
        assert!(graphcore::is_forest(&cg.graph));
    }

    #[test]
    fn fanout_respected() {
        let cfg = TreeConfig {
            documents: 3,
            elements_per_doc: 200,
            max_fanout: 3,
            ..TreeConfig::default()
        };
        let cg = generate_trees(&cfg).seal();
        for u in cg.graph.nodes() {
            assert!(cg.graph.out_degree(u) <= 3);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_trees(&TreeConfig::default()).seal();
        let b = generate_trees(&TreeConfig::default()).seal();
        assert_eq!(a.stats(), b.stats());
    }
}
