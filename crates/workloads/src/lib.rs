//! Synthetic XML collection and query workload generators.
//!
//! The paper's experiments run on an extract of the real DBLP corpus
//! (6,210 documents / 168,991 elements / 25,368 inter-document links /
//! 27 MB — one document per publication, linked by citations). That extract
//! is not redistributable, so [`dblp`] generates a seeded synthetic corpus
//! with the same document shape and the same structural scale knobs; the
//! substitution is documented in DESIGN.md.
//!
//! The other generators cover the structural regimes FliX's configurations
//! are designed for (paper §4.3):
//!
//! * [`trees`] — link-free tree collections (the PPO-naive sweet spot),
//! * [`web`] — densely interlinked collections (the Unconnected-HOPI
//!   regime),
//! * [`mixed`] — a tree-ish region plus a dense region, like the paper's
//!   Figure 1 (the Hybrid regime),
//! * [`queries`] — descendants and connection-test query workloads.
//!
//! All generators are deterministic for a given seed.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod dblp;
pub mod mixed;
pub mod queries;
pub mod trees;
pub mod web;

pub use dblp::{generate_dblp, DblpConfig};
pub use mixed::{generate_mixed, MixedConfig};
pub use queries::{connection_pairs, descendant_queries, ConnectionPair, DescendantQuery};
pub use trees::{generate_trees, TreeConfig};
pub use web::{generate_web, WebConfig};
