//! Densely interlinked collections: the Unconnected-HOPI regime.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{Collection, Document, LinkTarget};

/// Configuration for web-like, heavily linked collections.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Number of documents.
    pub documents: usize,
    /// Elements per document (exact).
    pub elements_per_doc: usize,
    /// Intra-document links per document (idref-style, may form cycles).
    pub intra_links_per_doc: usize,
    /// Outgoing inter-document links per document.
    pub inter_links_per_doc: usize,
    /// Number of distinct tag names.
    pub tag_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        Self {
            documents: 40,
            elements_per_doc: 50,
            intra_links_per_doc: 4,
            inter_links_per_doc: 6,
            tag_count: 10,
            seed: 42,
        }
    }
}

/// Generates a web-like collection.
///
/// Documents are shallow trees; intra-document links connect arbitrary
/// element pairs (including back links, so cycles occur); inter-document
/// links target random anchors in random documents, in both directions of
/// document order.
pub fn generate_web(cfg: &WebConfig) -> Collection {
    assert!(cfg.elements_per_doc >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut c = Collection::new();
    let tags: Vec<u32> = (0..cfg.tag_count.max(1))
        .map(|i| c.tags.intern(&format!("w{i}")))
        .collect();
    let doc_name = |i: usize| format!("web/page{i}.xml");

    for doc_i in 0..cfg.documents {
        let mut d = Document::new(doc_name(doc_i));
        let root = d.add_element(tags[rng.gen_range(0..tags.len())], None);
        d.add_anchor("top", root);
        for el_i in 1..cfg.elements_per_doc {
            let parent = rng.gen_range(0..el_i) as u32;
            let el = d.add_element(tags[rng.gen_range(0..tags.len())], Some(parent));
            d.add_anchor(format!("e{el_i}"), el);
        }
        for _ in 0..cfg.intra_links_per_doc {
            let src = rng.gen_range(0..cfg.elements_per_doc) as u32;
            let dst = rng.gen_range(0..cfg.elements_per_doc);
            let fragment = if dst == 0 {
                "top".to_string()
            } else {
                format!("e{dst}")
            };
            d.add_link(
                src,
                LinkTarget {
                    document: None,
                    fragment: Some(fragment),
                },
            );
        }
        for _ in 0..cfg.inter_links_per_doc {
            let target_doc = rng.gen_range(0..cfg.documents);
            if target_doc == doc_i {
                continue;
            }
            let src = rng.gen_range(0..cfg.elements_per_doc) as u32;
            let dst = rng.gen_range(0..cfg.elements_per_doc);
            let fragment = if dst == 0 {
                "top".to_string()
            } else {
                format!("e{dst}")
            };
            d.add_link(
                src,
                LinkTarget {
                    document: Some(doc_name(target_doc)),
                    fragment: Some(fragment),
                },
            );
        }
        c.add_document(d).expect("unique names");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_linking() {
        let cfg = WebConfig::default();
        let cg = generate_web(&cfg).seal();
        let s = cg.stats();
        assert_eq!(s.documents, 40);
        assert_eq!(s.elements, 40 * 50);
        // links per doc ≈ intra + inter (minus self-target skips and dedups)
        assert!(
            s.links as f64 >= 0.7 * (40 * 10) as f64,
            "links {}",
            s.links
        );
        assert_eq!(s.dangling_links, 0);
        assert!(!graphcore::is_forest(&cg.graph));
    }

    #[test]
    fn contains_cycles_usually() {
        let cg = generate_web(&WebConfig::default()).seal();
        let cond = graphcore::condensation(&cg.graph);
        assert!(
            cond.component_count() < cg.node_count(),
            "expected at least one nontrivial SCC"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_web(&WebConfig::default()).seal();
        let b = generate_web(&WebConfig::default()).seal();
        assert_eq!(a.stats(), b.stats());
    }
}
