//! Cross-file concurrency model extraction.
//!
//! This pass builds a workspace-wide model of lock usage:
//!
//! 1. **Lock classes.** Every `Mutex`/`RwLock` struct field or static in
//!    the workspace becomes a class, named `Struct::field` (or
//!    `file::NAME` for statics). Classes are discovered by the parser
//!    ([`crate::parse`]), so a lock declared in `pagestore` and used from
//!    `flix` still resolves to one class.
//! 2. **Acquisition sites.** Calls shaped `recv.field.lock()` /
//!    `.read()` / `.write()` (argument-free, so `io::Read::read(&mut buf)`
//!    never matches) are resolved to classes: `self.field` through the
//!    enclosing `impl` block, any other receiver through the field name
//!    when it is unambiguous workspace-wide. Unresolvable receivers are
//!    skipped — the model is deliberately an under-approximation rather
//!    than a source of false positives.
//! 3. **Guard live ranges.** A guard bound by `let g = ...lock();` lives
//!    to the end of its scope or an explicit `drop(g)`; a guard used as a
//!    temporary (`self.m.lock().get(k)`) lives to the end of its
//!    statement; a guard in an `if let`/`while let`/`match` scrutinee
//!    lives through the attached block, mirroring Rust's
//!    temporary-lifetime rules.
//! 4. **Lock-order graph.** Acquiring class B while class A's guard is
//!    live adds the edge A → B. Cycles in the graph (including the
//!    self-edge A → A, a same-thread re-entrancy deadlock) are reported
//!    under the `lock-order` rule.
//! 5. **Blocking-while-locked.** A blocking operation — bounded-channel
//!    `.send(..)`, `.recv()`, `JoinHandle::join()`, `Condvar::wait(..)`,
//!    or the acquisition of a *different* lock class — executed while any
//!    guard is live is reported under `blocking-while-locked`.
//!
//! The analysis is intra-procedural over fn bodies (closures are treated
//! as same-thread straight-line code, a conservative over-approximation)
//! and test code is exempt, consistent with the other lint rules.

use crate::lex::Token;
use crate::lint::{Diagnostic, Rule};
use crate::parse::{LockKind, ParsedFile};
use crate::scanner::line_of;
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed source file, as fed to [`analyze`].
pub struct SourceUnit<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Raw source text.
    pub src: &'a str,
    /// The file's token stream.
    pub tokens: &'a [Token],
    /// The file's parse.
    pub parsed: &'a ParsedFile,
}

/// One directed edge of the lock-order graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Class whose guard was live.
    pub from: String,
    /// Class acquired while `from` was held.
    pub to: String,
    /// File of the inner acquisition.
    pub path: String,
    /// 1-indexed line of the inner acquisition.
    pub line: usize,
    /// Line where the outer guard was acquired.
    pub held_line: usize,
}

/// The extracted concurrency model plus its diagnostics.
#[derive(Debug, Clone, Default)]
pub struct ConcReport {
    /// Every lock class discovered, sorted.
    pub classes: Vec<String>,
    /// Deduplicated lock-order edges (first site wins), sorted by class pair.
    pub edges: Vec<LockEdge>,
    /// `lock-order` and `blocking-while-locked` findings.
    pub diagnostics: Vec<Diagnostic>,
    /// True if the lock-order graph contains a cycle.
    pub cyclic: bool,
}

/// Runs the concurrency pass over all files of the workspace.
pub fn analyze(units: &[SourceUnit<'_>]) -> ConcReport {
    // Phase 1: lock classes across every file.
    let mut field_classes: BTreeMap<String, Vec<(String, LockKind)>> = BTreeMap::new();
    let mut static_classes: BTreeMap<String, (String, LockKind)> = BTreeMap::new();
    let mut struct_fields: BTreeMap<(String, String), (String, LockKind)> = BTreeMap::new();
    let mut classes: BTreeSet<String> = BTreeSet::new();
    for unit in units {
        for f in &unit.parsed.lock_fields {
            let class = format!("{}::{}", f.struct_name, f.field);
            classes.insert(class.clone());
            field_classes
                .entry(f.field.clone())
                .or_default()
                .push((class.clone(), f.kind));
            struct_fields.insert(
                (f.struct_name.clone(), f.field.clone()),
                (class.clone(), f.kind),
            );
        }
        for s in &unit.parsed.lock_statics {
            let file_stem = unit
                .path
                .rsplit('/')
                .next()
                .unwrap_or(unit.path)
                .trim_end_matches(".rs");
            let class = format!("{}::{}", file_stem, s.name);
            classes.insert(class.clone());
            static_classes.insert(s.name.clone(), (class, s.kind));
        }
    }

    // Phase 2: walk every non-test fn body.
    let resolver = Resolver {
        field_classes,
        static_classes,
        struct_fields,
    };
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut diagnostics = Vec::new();
    for unit in units {
        for f in &unit.parsed.fns {
            if f.in_test {
                continue;
            }
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            walk_body(
                unit,
                &resolver,
                f.impl_type.as_deref(),
                body_start,
                body_end,
                &mut edges,
                &mut diagnostics,
            );
        }
    }

    // Phase 3: cycle detection on the deduplicated edge set.
    let edges: Vec<LockEdge> = edges.into_values().collect();
    let cyclic_classes = cyclic_strongly_connected(&edges);
    let cyclic = !cyclic_classes.is_empty();
    for edge in &edges {
        let Some(scc) = cyclic_classes
            .iter()
            .find(|scc| scc.contains(&edge.from) && scc.contains(&edge.to))
        else {
            continue;
        };
        let members: Vec<&str> = scc.iter().map(String::as_str).collect();
        diagnostics.push(Diagnostic {
            path: edge.path.clone(),
            line: edge.line,
            rule: Rule::LockOrder,
            message: format!(
                "potential deadlock: lock classes {{{}}} form a cycle in the \
                 lock-order graph; this edge acquires `{}` while `{}` is held \
                 (guard from line {})",
                members.join(", "),
                edge.to,
                edge.from,
                edge.held_line
            ),
        });
    }

    ConcReport {
        classes: classes.into_iter().collect(),
        edges,
        diagnostics,
        cyclic,
    }
}

/// Lock-class resolution tables.
struct Resolver {
    /// field name -> every `(class, kind)` declaring that field name.
    field_classes: BTreeMap<String, Vec<(String, LockKind)>>,
    /// static name -> `(class, kind)`.
    static_classes: BTreeMap<String, (String, LockKind)>,
    /// (struct, field) -> `(class, kind)`.
    struct_fields: BTreeMap<(String, String), (String, LockKind)>,
}

impl Resolver {
    /// Resolves an acquisition of `field` (receiver base `base`, inside an
    /// impl of `impl_type`) to a lock class, or `None` when ambiguous.
    fn resolve(
        &self,
        base: Option<&str>,
        field: &str,
        impl_type: Option<&str>,
    ) -> Option<(String, LockKind)> {
        if base == Some("self") {
            if let Some(ty) = impl_type {
                if let Some(found) = self.struct_fields.get(&(ty.to_string(), field.to_string())) {
                    return Some(found.clone());
                }
            }
        }
        if base.is_none() {
            // Bare `NAME.lock()`: a static, or nothing (locals are opaque).
            return self.static_classes.get(field).cloned();
        }
        match self.field_classes.get(field) {
            Some(cands) if cands.len() == 1 => Some(cands[0].clone()),
            _ => None,
        }
    }
}

/// A guard currently live during the body walk.
struct LiveGuard {
    class: String,
    /// Binding name for `let g = ...` guards; `None` for temporaries.
    name: Option<String>,
    /// Brace depth at which a named guard dies (scope exit).
    scope_depth: Option<usize>,
    /// Significant-token index at which a temporary dies.
    until_tok: Option<usize>,
    /// Acquisition line, for diagnostics.
    line: usize,
    /// True if acquired via `.read()` (shared access).
    acquired_read: bool,
}

/// Statement shape, tracked to give temporaries the right live range.
#[derive(Clone, Copy, PartialEq)]
enum StmtShape {
    /// `let [mut] name = ...;`
    LetBinding,
    /// `if let` / `while let` / `match ...`: scrutinee temps live through
    /// the attached block.
    ScrutineeHead,
    /// Plain `if` / `while`: condition temps die at the `{`.
    CondHead,
    Other,
}

#[allow(clippy::too_many_arguments)]
fn walk_body(
    unit: &SourceUnit<'_>,
    resolver: &Resolver,
    impl_type: Option<&str>,
    body_start: usize,
    body_end: usize,
    edges: &mut BTreeMap<(String, String), LockEdge>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // Significant tokens of the body.
    let upper = body_end.min(unit.tokens.len().saturating_sub(1));
    let sig: Vec<usize> = (body_start..=upper)
        .filter(|&i| !unit.tokens[i].is_trivia())
        .collect();
    if sig.is_empty() {
        return;
    }
    let text = |si: usize| unit.tokens[sig[si]].text(unit.src);
    let line_at = |si: usize| line_of(unit.src, unit.tokens[sig[si]].start);

    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    // Per-statement state.
    let mut stmt_shape = StmtShape::Other;
    let mut let_name: Option<String> = None;
    let mut stmt_start = true;

    let mut si = 0usize;
    while si < sig.len() {
        // Expire temporaries whose statement ended before this token.
        guards.retain(|g| g.until_tok.map_or(true, |u| si <= u));
        let t = text(si);
        match t {
            "{" => {
                depth += 1;
                stmt_start = true;
                stmt_shape = StmtShape::Other;
                let_name = None;
                si += 1;
                continue;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.scope_depth.map_or(true, |d| d <= depth));
                stmt_start = true;
                stmt_shape = StmtShape::Other;
                let_name = None;
                si += 1;
                continue;
            }
            ";" => {
                stmt_start = true;
                stmt_shape = StmtShape::Other;
                let_name = None;
                si += 1;
                continue;
            }
            _ => {}
        }

        if stmt_start {
            stmt_start = false;
            stmt_shape = match t {
                "let" => StmtShape::LetBinding,
                "if" | "while" => StmtShape::CondHead,
                "match" => StmtShape::ScrutineeHead,
                _ => StmtShape::Other,
            };
            let_name = None;
            if stmt_shape == StmtShape::LetBinding {
                // Extract a single-ident binding name: let [mut] name [:|=]
                let mut j = si + 1;
                while j < sig.len() && matches!(text(j), "mut" | "ref") {
                    j += 1;
                }
                if j + 1 < sig.len() && is_ident_tok(text(j)) && matches!(text(j + 1), ":" | "=") {
                    let_name = Some(text(j).to_string());
                }
            }
        }
        if t == "let" && stmt_shape == StmtShape::CondHead {
            // `if let` / `while let`: promote to scrutinee semantics.
            stmt_shape = StmtShape::ScrutineeHead;
        }

        // `drop(name)` kills a named guard.
        if t == "drop"
            && si + 3 < sig.len()
            && text(si + 1) == "("
            && is_ident_tok(text(si + 2))
            && text(si + 3) == ")"
        {
            let victim = text(si + 2);
            guards.retain(|g| g.name.as_deref() != Some(victim));
        }

        // Acquisition: ident in {lock, read, write} with `.` before and
        // `( )` after.
        if matches!(t, "lock" | "read" | "write")
            && si >= 1
            && text(si - 1) == "."
            && si + 2 < sig.len()
            && text(si + 1) == "("
            && text(si + 2) == ")"
        {
            // Receiver chain: [base .] field . lock
            let field = si.checked_sub(2).map(text).filter(|f| is_ident_tok(f));
            if let Some(field) = field {
                let base = si
                    .checked_sub(4)
                    .filter(|&b| text(b + 1) == ".")
                    .map(text)
                    .filter(|b| is_ident_tok(b));
                if let Some((class, kind)) = resolver.resolve(base, field, impl_type) {
                    let line = line_at(si);
                    let acquiring_read = kind == LockKind::RwLock && t == "read";
                    for g in &guards {
                        let same_class = g.class == class;
                        if same_class && acquiring_read && g.acquired_read {
                            // Shared read-read re-entry: no conflict.
                            continue;
                        }
                        edges
                            .entry((g.class.clone(), class.clone()))
                            .or_insert_with(|| LockEdge {
                                from: g.class.clone(),
                                to: class.clone(),
                                path: unit.path.to_string(),
                                line,
                                held_line: g.line,
                            });
                        if !same_class {
                            diagnostics.push(Diagnostic {
                                path: unit.path.to_string(),
                                line,
                                rule: Rule::BlockingWhileLocked,
                                message: format!(
                                    "acquires lock `{class}` while guard of `{}` \
                                     (line {}) is live; blocking here can deadlock",
                                    g.class, g.line
                                ),
                            });
                        }
                    }
                    // Register the new guard.
                    let named = let_name.is_some()
                        && stmt_shape == StmtShape::LetBinding
                        && si + 3 < sig.len()
                        && text(si + 3) == ";";
                    let (name, scope_depth, until_tok) = if named {
                        (let_name.clone(), Some(depth), None)
                    } else {
                        (None, None, Some(temp_end(&sig, unit, si, stmt_shape)))
                    };
                    guards.push(LiveGuard {
                        class,
                        name,
                        scope_depth,
                        until_tok,
                        line,
                        acquired_read: acquiring_read,
                    });
                    si += 3; // past `( )`
                    continue;
                }
            }
        }

        // Blocking operations while any guard is live.
        if !guards.is_empty() {
            if let Some(op) = blocking_op(&sig, unit, si) {
                if let Some(g) = guards.last() {
                    diagnostics.push(Diagnostic {
                        path: unit.path.to_string(),
                        line: line_at(si),
                        rule: Rule::BlockingWhileLocked,
                        message: format!(
                            "blocking `{op}` while guard of `{}` (line {}) \
                             is live; release the lock before blocking",
                            g.class, g.line
                        ),
                    });
                }
            }
        }

        si += 1;
    }
}

/// End-of-life token for a temporary guard acquired at `si`.
fn temp_end(sig: &[usize], unit: &SourceUnit<'_>, si: usize, shape: StmtShape) -> usize {
    let text = |i: usize| unit.tokens[sig[i]].text(unit.src);
    let mut depth = 0i32;
    let mut j = si + 1;
    while j < sig.len() {
        match text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    // Closing a paren the acquisition was nested in: the
                    // temporary dies with the enclosing expression.
                    return j;
                }
                depth -= 1;
            }
            ";" if depth <= 0 => return j,
            "{" if depth <= 0 => {
                return match shape {
                    // Scrutinee temporaries live through the whole block.
                    StmtShape::ScrutineeHead => matching_brace_sig(sig, unit, j),
                    _ => j,
                };
            }
            _ => {}
        }
        j += 1;
    }
    sig.len() - 1
}

/// Significant-token index of the `}` matching the `{` at `open`.
fn matching_brace_sig(sig: &[usize], unit: &SourceUnit<'_>, open: usize) -> usize {
    let text = |i: usize| unit.tokens[sig[i]].text(unit.src);
    let mut depth = 0i32;
    let mut i = open;
    while i < sig.len() {
        match text(i) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    sig.len() - 1
}

/// If the token at `si` begins a blocking call, returns its display name.
fn blocking_op(sig: &[usize], unit: &SourceUnit<'_>, si: usize) -> Option<&'static str> {
    let text = |i: usize| unit.tokens[sig[i]].text(unit.src);
    if si == 0 || text(si - 1) != "." {
        return None;
    }
    let next_is = |off: usize, t: &str| si + off < sig.len() && text(si + off) == t;
    match text(si) {
        // Bounded-channel send blocks when the queue is full. `try_send`
        // is its own token and never matches.
        "send" if next_is(1, "(") => Some(".send(..)"),
        "recv" if next_is(1, "(") && next_is(2, ")") => Some(".recv()"),
        "join" if next_is(1, "(") && next_is(2, ")") => Some(".join()"),
        "wait" | "wait_while" | "wait_timeout" if next_is(1, "(") => Some("Condvar wait"),
        _ => None,
    }
}

/// True if `t` looks like an identifier token.
fn is_ident_tok(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Strongly connected components of the lock-order graph that contain a
/// cycle (size > 1, or a self-edge).
fn cyclic_strongly_connected(edges: &[LockEdge]) -> Vec<BTreeSet<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let nodes: Vec<&str> = nodes.into_iter().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut self_loop = vec![false; nodes.len()];
    for e in edges {
        let (f, t) = (index_of[e.from.as_str()], index_of[e.to.as_str()]);
        if f == t {
            self_loop[f] = true;
        }
        adj[f].push(t);
    }

    // Iterative Tarjan SCC.
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    sccs.into_iter()
        .filter(|c| c.len() > 1 || (c.len() == 1 && self_loop[c[0]]))
        .map(|c| c.into_iter().map(|i| nodes[i].to_string()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn run_on(sources: &[(&str, &str)]) -> ConcReport {
        let lexed: Vec<_> = sources
            .iter()
            .map(|(path, src)| {
                let (tokens, parsed) = parse_source(src);
                (*path, *src, tokens, parsed)
            })
            .collect();
        let units: Vec<SourceUnit<'_>> = lexed
            .iter()
            .map(|(path, src, tokens, parsed)| SourceUnit {
                path,
                src,
                tokens,
                parsed,
            })
            .collect();
        analyze(&units)
    }

    const TWO_LOCKS: &str = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
";

    #[test]
    fn ab_ba_cycle_is_reported() {
        let fwd = "\
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
";
        let bwd = "\
impl S {
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
";
        let report = run_on(&[
            ("crates/x/src/lib.rs", TWO_LOCKS),
            ("crates/x/src/fwd.rs", fwd),
            ("crates/x/src/bwd.rs", bwd),
        ]);
        assert!(report.cyclic, "{report:?}");
        assert_eq!(report.classes, vec!["S::a", "S::b"]);
        let cycle_diags: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::LockOrder)
            .collect();
        assert_eq!(cycle_diags.len(), 2, "{cycle_diags:?}");
        assert!(cycle_diags[0].message.contains("S::a"));
        assert!(cycle_diags[0].message.contains("S::b"));
    }

    #[test]
    fn consistent_order_is_acyclic_but_flags_nesting() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn also_ab(&self) {
        let ga = self.a.lock();
        self.b.lock().checked_add(1);
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(!report.cyclic, "{report:?}");
        assert_eq!(report.edges.len(), 1);
        assert_eq!(report.edges[0].from, "S::a");
        assert_eq!(report.edges[0].to, "S::b");
        // Nested acquisition is still a blocking-while-locked finding.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::BlockingWhileLocked));
        assert!(report.diagnostics.iter().all(|d| d.rule != Rule::LockOrder));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ok(&self) {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        drop(gb);
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(report.edges.is_empty(), "{:?}", report.edges);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "\
pub struct S { a: Mutex<Map>, tx: Sender<u32> }
impl S {
    fn ok(&self) {
        let waiters = self.a.lock().remove(&key).unwrap_or_default();
        self.tx.send(waiters);
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(
            report.diagnostics.is_empty(),
            "send after the temporary died must be clean: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn send_while_named_guard_live_is_flagged() {
        let src = "\
pub struct S { a: Mutex<Map>, tx: Sender<u32> }
impl S {
    fn bad(&self) {
        let g = self.a.lock();
        self.tx.send(1);
        drop(g);
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        let hits: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::BlockingWhileLocked)
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
        assert!(hits[0].message.contains(".send(..)"));
        assert!(hits[0].message.contains("S::a"));
    }

    #[test]
    fn try_send_and_recv_timeout_do_not_block() {
        let src = "\
pub struct S { a: Mutex<Map>, tx: Sender<u32> }
impl S {
    fn ok(&self) {
        let g = self.a.lock();
        self.tx.try_send(1);
        self.rx.recv_timeout(d);
        drop(g);
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn join_while_scope_guard_live_is_flagged() {
        let src = "\
pub struct S { handles: Mutex<Vec<JoinHandle<()>>> }
impl S {
    fn bad(&self) {
        let hs = self.handles.lock();
        for h in hs.iter() {
            h.join();
        }
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::BlockingWhileLocked && d.message.contains(".join()")));
    }

    #[test]
    fn mem_take_pattern_is_clean() {
        // The flixserve shutdown idiom: take the handles out under a
        // temporary guard, then join after it died.
        let src = "\
pub struct S { handles: Mutex<Vec<JoinHandle<()>>> }
impl S {
    fn ok(&self) {
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            h.join();
        }
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn rwlock_read_read_same_class_is_clean_but_write_conflicts() {
        let src = "\
pub struct S { map: RwLock<u32> }
impl S {
    fn reads(&self) {
        let g = self.map.read();
        let h = self.map.read();
        drop(h);
        drop(g);
    }
    fn upgrade_deadlock(&self) {
        let g = self.map.read();
        let w = self.map.write();
        drop(w);
        drop(g);
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        // read-read: no self edge. read-then-write: self edge -> cycle.
        assert!(report.cyclic, "{report:?}");
        let cycle: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::LockOrder)
            .collect();
        assert_eq!(cycle.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(cycle[0].line, 11);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
#[cfg(test)]
mod tests {
    fn nested() {
        let ga = s.a.lock();
        let gb = s.b.lock();
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(report.edges.is_empty());
    }

    #[test]
    fn ambiguous_field_names_resolve_through_impl_context() {
        let src_a = "\
pub struct A { inner: Mutex<u32> }
impl A { fn f(&self) { let g = self.inner.lock(); drop(g); } }
";
        let src_b = "\
pub struct B { inner: Mutex<u32> }
impl B {
    fn g(&self) {
        let g = self.inner.lock();
        let h = self.inner.lock();
    }
}
";
        let report = run_on(&[
            ("crates/a/src/lib.rs", src_a),
            ("crates/b/src/lib.rs", src_b),
        ]);
        // Same-class re-acquisition in B: self-edge, reported as a cycle.
        assert!(report.cyclic);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::LockOrder && d.message.contains("B::inner")));
        assert!(report
            .diagnostics
            .iter()
            .all(|d| !d.message.contains("A::inner")));
    }

    #[test]
    fn if_let_scrutinee_guard_lives_through_block() {
        let src = "\
pub struct S { a: Mutex<Map>, tx: Sender<u32> }
impl S {
    fn bad(&self) {
        if let Some(v) = self.a.lock().get(&k) {
            self.tx.send(v);
        }
    }
    fn ok(&self) {
        let v = self.a.lock().get(&k);
        if let Some(v) = v {
            self.tx.send(v);
        }
    }
}
";
        let report = run_on(&[("crates/x/src/lib.rs", src)]);
        let hits: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::BlockingWhileLocked)
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn statics_are_classes_too() {
        let src = "\
static REGISTRY: Mutex<Vec<u8>> = Mutex::new(Vec::new());
fn f() {
    let g = REGISTRY.lock();
    let h = REGISTRY.lock();
}
";
        let report = run_on(&[("crates/x/src/metrics.rs", src)]);
        assert_eq!(report.classes, vec!["metrics::REGISTRY"]);
        assert!(report.cyclic);
    }
}
