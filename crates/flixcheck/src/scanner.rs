//! Lexical source preparation for the lint rules.
//!
//! The rules work on a *stripped* view of each file: comments and the
//! contents of string/char literals are blanked out (replaced by spaces,
//! newlines preserved) so `.unwrap()` inside a doc comment or a string
//! cannot trip a rule. On top of the stripped text, [`excluded_regions`]
//! marks `#[cfg(test)]` items so test-only code is exempt from the
//! production rules.

/// Replaces comments and string/char-literal contents with spaces.
///
/// The output has exactly the same length and line structure as the input,
/// so byte offsets and line numbers computed on it map 1:1 back to the
/// original source.
pub fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    // Preserve line structure.
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out[i] = b'\n';
        }
    }
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments); blanked to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if !glued_to_ident(bytes, i) && is_raw_string_start(bytes, i) => {
                i = skip_raw_string(bytes, i);
            }
            b'b' if !glued_to_ident(bytes, i) && bytes.get(i + 1) == Some(&b'"') => {
                i = skip_plain_string(bytes, i + 1);
            }
            b'b' if !glued_to_ident(bytes, i) && bytes.get(i + 1) == Some(&b'\'') => {
                // Byte-char literal `b'x'`: blanked including the prefix.
                i = skip_char_body(bytes, i + 1);
            }
            b'"' => {
                i = skip_plain_string(bytes, i);
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    i = end;
                } else {
                    // A lifetime (`'a`, `'de`): copy through.
                    out[i] = b'\'';
                    i += 1;
                }
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    // The blanking above only copies code bytes; everything consumed by the
    // skip helpers stays as spaces/newlines.
    String::from_utf8(out).unwrap_or_default()
}

/// True if the byte at `i` continues an identifier started earlier, which
/// rules out a literal prefix: the `b` in `my_b"x"` belongs to the
/// identifier `my_b`, not to a byte string.
fn glued_to_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && {
        let p = bytes[i - 1];
        p.is_ascii_alphanumeric() || p == b'_' || p >= 0x80
    }
}

/// True if `bytes[i..]` starts a raw (byte) string: `r"`, `r#`, `br"`, `br#`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Skips a raw string starting at `i`, returning the index after it.
fn skip_raw_string(bytes: &[u8], mut i: usize) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skips a plain `"..."` string with `\` escapes, starting at the quote.
fn skip_plain_string(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// If a char literal starts at `i` (a `'`), returns the index after its
/// closing quote; `None` if this is a lifetime (or a lone quote) instead.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => Some(skip_char_body(bytes, i)),
        &b => {
            // `'x'` holds exactly one (possibly multi-byte) char between the
            // quotes; anything else is a lifetime or a lone quote.
            let ch_len = utf8_len(b);
            (bytes.get(i + 1 + ch_len) == Some(&b'\'')).then(|| i + 2 + ch_len)
        }
    }
}

/// Skips a char/byte-literal body starting at the opening quote at `i`,
/// returning the index just past the closing quote. Handles `'\''`, `'\\'`
/// and multi-char escapes like `'\u{1F600}'`; an unterminated literal ends
/// at the newline (escapes never cross lines).
fn skip_char_body(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        // The byte after the backslash is part of the escape; consume both,
        // then scan for the closing quote (covers \x41 and \u{...} tails).
        i += 2;
        while i < bytes.len() {
            match bytes[i] {
                b'\'' => return i + 1,
                b'\\' => i += 2,
                b'\n' => return i,
                _ => i += 1,
            }
        }
        i
    } else {
        // One (possibly multi-byte) char, then the closing quote.
        if i < bytes.len() {
            i += utf8_len(bytes[i]);
        }
        if bytes.get(i) == Some(&b'\'') {
            i + 1
        } else {
            i
        }
    }
}

/// Byte length of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ if b >= 0xf0 => 4,
        // Continuation byte on its own (invalid UTF-8): consume one.
        _ => 1,
    }
}

/// A byte range of the stripped source that is exempt from production
/// rules (a `#[cfg(test)]` item, usually the test module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive start byte.
    pub start: usize,
    /// Exclusive end byte.
    pub end: usize,
}

impl Region {
    /// True if `pos` falls inside the region.
    pub fn contains(&self, pos: usize) -> bool {
        pos >= self.start && pos < self.end
    }
}

/// Finds the byte ranges of all `#[cfg(test)]` items in stripped source.
///
/// After the attribute (and any further attributes), the item extends to
/// its matching closing brace, or to the first `;` for brace-less items.
pub fn excluded_regions(stripped: &str) -> Vec<Region> {
    let bytes = stripped.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0;
    while let Some(found) = stripped[search..].find("#[cfg(test)]") {
        let start = search + found;
        let mut i = start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
                let mut depth = 0;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // The item body: to the matching `}` of its first `{`, or to `;`.
        let mut depth = 0i32;
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = i + 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        regions.push(Region { start, end });
        search = end.max(start + 1);
    }
    regions
}

/// 1-indexed line number of byte offset `pos`.
pub fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let src = "let x = 1; // .unwrap() here\n/// docs .expect(\nlet y = 2;\n";
        let s = strip_source(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("expect"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.len(), src.len());
    }

    #[test]
    fn strips_nested_block_comments() {
        let src = "a /* outer /* inner panic! */ still */ b";
        let s = strip_source(src);
        assert!(!s.contains("panic"));
        assert!(s.starts_with('a'));
        assert!(s.ends_with('b'));
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        let src = r##"let a = ".unwrap()"; let b = r#"panic!"#; let c = b"todo!";"##;
        let s = strip_source(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(!s.contains("todo"));
        assert!(s.contains("let a"));
        assert!(s.contains("let c"));
    }

    #[test]
    fn string_escapes_do_not_unbalance() {
        let src = r#"let a = "\" .unwrap() \""; let b = 1;"#;
        let s = strip_source(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let b = 1;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'de>(c: char) { if c == '\"' || c == '\\'' { } let _x: &'de str; }";
        let s = strip_source(src);
        assert!(s.contains("fn f<'de>"));
        assert!(s.contains("&'de str"));
        // the quote chars inside the literals are blanked
        assert!(!s.contains('"'));
    }

    #[test]
    fn test_region_covers_module() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let stripped = strip_source(src);
        let regions = excluded_regions(&stripped);
        assert_eq!(regions.len(), 1);
        let pos = stripped.find(".unwrap()").expect("kept in stripped text");
        assert!(regions[0].contains(pos));
        let tail = stripped.find("fn tail").expect("present");
        assert!(!regions[0].contains(tail));
    }

    #[test]
    fn test_region_skips_following_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn a() {} }\nfn real() {}\n";
        let stripped = strip_source(src);
        let regions = excluded_regions(&stripped);
        assert_eq!(regions.len(), 1);
        let real = stripped.find("fn real").expect("present");
        assert!(!regions[0].contains(real));
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\nc\n";
        assert_eq!(line_of(src, 0), 1);
        assert_eq!(line_of(src, 2), 2);
        assert_eq!(line_of(src, 4), 3);
    }
}
